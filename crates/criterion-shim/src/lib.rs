//! Offline shim for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment cannot fetch crates.io dependencies, so this
//! workspace-local package provides the subset of the criterion API the
//! `fedwcm-bench` targets use: `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It is a real (if simple) benchmark runner: each benchmark is
//! calibrated to a minimum batch duration, timed for `sample_size`
//! samples, and the median per-iteration time is printed. There is no
//! statistical analysis, HTML report, or baseline comparison.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` id (criterion's grouped form).
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Id from a bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration nanoseconds of the last `iter` call.
    last_median_ns: f64,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fill ~2ms?
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size.max(1) {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            samples_ns.push(t0.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.last_median_ns = samples_ns[samples_ns.len() / 2];
    }
}

fn run_one(
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        sample_size,
        last_median_ns: 0.0,
    };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    println!(
        "bench: {full:<48} {:>14.1} ns/iter (median of {sample_size})",
        b.last_median_ns
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(None, &id.into(), self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, f);
        self
    }

    /// Run one parameterised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.into(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Define a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("mul", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 3)
        });
        group.finish();
    }

    criterion_group!(
        name = shim_group;
        config = Criterion::default().sample_size(3);
        targets = target
    );

    #[test]
    fn group_runs() {
        shim_group();
    }

    #[test]
    fn bench_function_on_criterion() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("plain", |b| b.iter(|| black_box(5u32).wrapping_mul(3)));
    }
}
