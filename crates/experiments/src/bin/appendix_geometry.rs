//! Appendix-B companion: classifier-geometry evidence for minority
//! collapse. For FedAvg / FedCM / FedWCM at β = 0.6, IF = 0.05, report
//! per-class classifier-row norms, the head/tail norm ratio, the mean
//! pairwise cosine within the tail classes, and within-class feature
//! variability — the quantities the neural-collapse analysis predicts
//! momentum distorts.

use fedwcm_analysis::geometry::{classifier_geometry, within_class_variability};
use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::methods::build_method;
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let mut exp = ExpConfig::new(DatasetPreset::Cifar10, 0.05, 0.6, cli.scale, cli.seed);
    if let Some(r) = cli.rounds {
        exp.rounds = r;
    }
    let task = exp.prepare();
    let counts = task.global_counts();
    let classes = task.test.classes();
    let tail: Vec<usize> = {
        let mut order: Vec<usize> = (0..classes).collect();
        order.sort_by(|&a, &b| counts[b].cmp(&counts[a]));
        order[classes / 2..].to_vec()
    };

    println!("# Appendix-B geometry (beta=0.6, IF=0.05); tail classes {tail:?}");
    for method in [Method::FedAvg, Method::FedCm, Method::FedWcm] {
        let sim = task.simulation();
        let mut algo = build_method(method, &task);
        let (h, mut model) = sim.run_returning_model(algo.as_mut());
        let geom = classifier_geometry(&model);
        let variability = within_class_variability(&mut model, &task.test, 400);
        let mean_var: f64 = variability.iter().sum::<f64>() / variability.len() as f64;
        println!(
            "\n## {} (final acc {:.4})",
            method.label(),
            h.final_accuracy(3)
        );
        println!(
            "row norms: {:?}",
            geom.row_norms
                .iter()
                .map(|v| (v * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );
        println!(
            "head/tail norm ratio: {:.3}",
            geom.head_tail_norm_ratio(&counts)
        );
        println!(
            "mean tail-pair cosine: {:.3}",
            geom.mean_cosine_within(&tail)
        );
        println!("mean within-class variability: {:.4}", mean_var);
        console.info(format!("[geometry] {} done", method.label()));
    }
    println!(
        "\nReading: momentum bias inflates the head/tail norm ratio and\n\
         pushes tail classifier rows together (higher tail cosine); FedWCM\n\
         should sit closer to FedAvg than to FedCM."
    );
}
