//! Chaos smoke probe for CI.
//!
//! Runs a short federated simulation under an aggressive fault plan —
//! 30% dropout, 15% stragglers, 5% corruption, 5% replay — and prints the
//! resilience report. CI runs this in release *and* with
//! `--features debug_invariants`: the latter must not panic, because
//! injected faults model transport damage applied *after* the
//! client-emission invariant boundary (see `fedwcm_fl::engine`), and the
//! containment filter absorbs the corrupted uploads before aggregation.
//!
//! Pass a file path as the first argument to additionally write a JSONL
//! trace of the run (spans + structured fault events under a
//! `LogicalClock`); CI uploads it as a build artifact. Use `-` to skip
//! the trace. A second argument is parsed as a network-plan spec (e.g.
//! `drop:0.1,corrupt:0.05,delay:2`) and routes client uploads through
//! the lossy wire transport on top of the fault plan.

use fedwcm_suite::faults::FaultConfig;
use fedwcm_suite::prelude::*;
use fedwcm_suite::trace::{JsonlSink, LogicalClock, Tracer};
use std::sync::Arc;

fn main() {
    let spec = DatasetPreset::Cifar10.spec();
    let counts = longtail_counts(10, 50, 0.1);
    let train = spec.generate_train(&counts, 47);
    let test = spec.generate_test(47);

    let mut cfg = FlConfig::default_sim();
    cfg.clients = 6;
    cfg.participation = 0.5;
    cfg.rounds = 8;
    cfg.local_epochs = 1;
    cfg.batch_size = 20;
    cfg.eval_every = 4;
    cfg.seed = 47;
    cfg.threads = 0; // defer to FEDWCM_THREADS

    let plan = FaultPlan::new(FaultConfig {
        dropout: 0.3,
        straggler: 0.15,
        max_delay: 3,
        corruption: 0.15,
        replay: 0.05,
        ..FaultConfig::zero(0xC405)
    });

    let views = paper_partition(&train, cfg.clients, 0.3, cfg.seed).views(&train);
    let mut sim = Simulation::new(
        cfg,
        &train,
        &test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(31);
            fedwcm_suite::nn::models::mlp(192, &[24], 10, &mut rng)
        }),
    )
    .with_fault_plan(plan);

    // Optional JSONL trace artifact: `chaos_probe <path>` stamps every
    // span and injected fault with a LogicalClock, so the file is
    // identical across thread counts and CI can diff or archive it.
    // `-` skips the trace (placeholder when only a net spec is wanted).
    let mut tracer = Tracer::disabled();
    if let Some(path) = std::env::args().nth(1).filter(|p| p != "-") {
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
        tracer = Tracer::new(
            Box::new(LogicalClock::new()),
            Arc::new(JsonlSink::new(file)),
        );
        sim = sim.with_tracer(tracer.clone());
    }

    // Optional lossy wire transport: `chaos_probe - drop:0.1,delay:2`
    // stacks frame-level network faults on top of the fault plan.
    let net_active = if let Some(spec) = std::env::args().nth(2) {
        let cfg = NetConfig::parse(&spec).unwrap_or_else(|e| panic!("bad net spec {spec}: {e}"));
        sim = sim.with_net_plan(NetPlan::new(cfg));
        true
    } else {
        false
    };

    let history = sim.run(&mut FedWcm::new());
    tracer.flush();
    println!("{}", history.resilience_report(None));
    let injected: u32 = history.records.iter().map(|r| r.faults.injected()).sum();
    let corruptions: u32 = history.records.iter().map(|r| r.faults.corruptions).sum();
    assert!(injected > 0, "chaos probe injected no faults");
    assert!(
        corruptions > 0,
        "chaos probe never exercised the corruption/containment path"
    );
    if net_active {
        let net = history.net_totals();
        assert!(net.frames_sent > 0, "net plan active but no frames sent");
        println!(
            "net: {} frames, {} retries, {} rejected, {} delayed, {} degraded",
            net.frames_sent, net.retries, net.rejected_frames, net.delayed, net.degraded
        );
    }
    println!("chaos probe ok: {injected} faults injected, run completed");
}
