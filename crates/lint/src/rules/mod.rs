//! The rule families.
//!
//! The v1 families walk a [`FileCtx`](crate::engine::FileCtx) token
//! stream — **token sequences over non-comment tokens**, so nothing
//! ever fires inside a comment, string, or char literal (the lexer
//! guarantees it). The v2 families ([`float_order`], [`rng_hygiene`],
//! [`lock_order`], [`cast_soundness`]) walk the parsed syntax tree
//! instead, and the first three run as a single workspace pass over
//! every file at once so they can follow calls across crates.

use crate::engine::{Diagnostic, FileCtx, LintConfig};

mod cast_soundness;
mod determinism;
mod doc_coverage;
mod float_order;
mod lock_order;
mod panic_freedom;
mod rng_hygiene;
mod unsafe_safety;

pub use cast_soundness::check_cast_soundness;
pub use determinism::check_determinism;
pub use doc_coverage::check_doc_coverage;
pub use float_order::check_float_order;
pub use lock_order::check_lock_order;
pub use panic_freedom::check_panic_freedom;
pub use rng_hygiene::check_rng_hygiene;
pub use unsafe_safety::check_unsafe_safety;

/// Run every enabled per-file rule family over one file.
pub fn run_all(ctx: &FileCtx, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    if cfg.is_enabled("unsafe-safety") {
        check_unsafe_safety(ctx, diags);
    }
    check_determinism(ctx, cfg, diags);
    if cfg.is_enabled("panic-freedom") {
        check_panic_freedom(ctx, diags);
    }
    if cfg.is_enabled("doc-coverage") {
        check_doc_coverage(ctx, diags);
    }
    if cfg.is_enabled("cast-soundness") {
        check_cast_soundness(ctx, diags);
    }
}

/// Run the cross-file rule families over the whole file set at once.
/// The call graph is built once and shared.
pub fn run_workspace(files: &[FileCtx], cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let float = cfg.is_enabled("float-reduction-order");
    let rng = cfg.is_enabled("rng-stream-hygiene");
    let lock = cfg.is_enabled("lock-order");
    if !(float || rng || lock) {
        return;
    }
    let cg = crate::callgraph::CallGraph::build(files);
    if float {
        check_float_order(files, &cg, diags);
    }
    if rng {
        check_rng_hygiene(files, &cg, diags);
    }
    if lock {
        check_lock_order(files, &cg, diags);
    }
}
