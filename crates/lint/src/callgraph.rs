//! Cross-file call resolution over the parsed workspace.
//!
//! The graph is **name-based and conservative**: a call edge exists
//! only when the callee resolves unambiguously — an explicit
//! `Type::method` path, a method on `self`, a function defined in the
//! same file, or a name with exactly one definition in the caller's
//! crate (falling back to exactly one in the workspace). Ambiguous
//! names produce *no* edge, so analyses built on the graph
//! under-approximate rather than invent flows.

use crate::ast::{Expr, FnDef};
use crate::engine::FileCtx;
use std::collections::BTreeMap;

/// Identifier of a function in the graph: index into [`CallGraph::fns`].
pub type FnId = usize;

/// The workspace call graph: every parsed function plus resolution
/// indexes. Built once per lint run by the workspace pass.
pub struct CallGraph<'a> {
    /// All functions: `(file index, fn)` in file-then-declaration order.
    pub fns: Vec<(usize, &'a FnDef)>,
    by_name: BTreeMap<&'a str, Vec<FnId>>,
    by_ty_name: BTreeMap<(&'a str, &'a str), Vec<FnId>>,
}

impl<'a> CallGraph<'a> {
    /// Index every function of every file.
    pub fn build(files: &'a [FileCtx]) -> Self {
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_ty_name: BTreeMap<(&str, &str), Vec<FnId>> = BTreeMap::new();
        for (fi, ctx) in files.iter().enumerate() {
            for f in &ctx.ast.fns {
                let id = fns.len();
                fns.push((fi, f));
                by_name.entry(f.name.as_str()).or_default().push(id);
                if let Some(ty) = f.self_ty.as_deref() {
                    by_ty_name
                        .entry((ty, f.name.as_str()))
                        .or_default()
                        .push(id);
                }
            }
        }
        CallGraph {
            fns,
            by_name,
            by_ty_name,
        }
    }

    /// The `crates/<name>` directory of the file defining `id`.
    pub fn crate_of(&self, id: FnId, files: &[FileCtx]) -> Option<String> {
        files[self.fns[id].0].crate_name.clone()
    }

    /// Resolve a [`Expr::Call`] / [`Expr::MethodCall`] node appearing in
    /// the body of `caller`. Returns `None` when the callee is not a
    /// workspace function or the name is ambiguous.
    pub fn resolve(&self, caller: FnId, call: &Expr) -> Option<FnId> {
        match call {
            Expr::Call { callee, .. } => {
                let Expr::Path { segs, .. } = &**callee else {
                    return None;
                };
                let name = segs.last()?;
                if segs.len() >= 2 {
                    // `Type::assoc(…)` — an exact impl match wins.
                    let qual = &segs[segs.len() - 2];
                    if let Some(ids) = self.by_ty_name.get(&(qual.as_str(), name.as_str())) {
                        if ids.len() == 1 {
                            return Some(ids[0]);
                        }
                    }
                }
                self.resolve_name(caller, name)
            }
            Expr::MethodCall { recv, method, .. } => {
                if recv.base_ident() == Some("self") {
                    if let Some(ty) = self.fns[caller].1.self_ty.as_deref() {
                        if let Some(ids) = self.by_ty_name.get(&(ty, method.as_str())) {
                            if ids.len() == 1 {
                                return Some(ids[0]);
                            }
                        }
                    }
                }
                // A method name defined exactly once in the workspace
                // resolves even without receiver types.
                let ids = self.by_name.get(method.as_str())?;
                let methods: Vec<FnId> = ids
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].1.self_ty.is_some())
                    .collect();
                if methods.len() == 1 {
                    Some(methods[0])
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Resolve a bare function name from `caller`'s context: same file
    /// first, then unique-in-crate, then unique-in-workspace.
    fn resolve_name(&self, caller: FnId, name: &str) -> Option<FnId> {
        let ids = self.by_name.get(name)?;
        let caller_file = self.fns[caller].0;
        let same_file: Vec<FnId> = ids
            .iter()
            .copied()
            .filter(|&id| self.fns[id].0 == caller_file)
            .collect();
        if same_file.len() == 1 {
            return Some(same_file[0]);
        }
        if same_file.len() > 1 {
            return None;
        }
        if ids.len() == 1 {
            return Some(ids[0]);
        }
        None
    }

    /// All `(call expression, resolved callee)` pairs in `caller`'s
    /// body, in source order. Unresolved calls are omitted.
    pub fn calls_of(&self, caller: FnId) -> Vec<(&'a Expr, FnId)> {
        let mut out = Vec::new();
        self.fns[caller].1.body.walk(&mut |e| {
            if matches!(e, Expr::Call { .. } | Expr::MethodCall { .. }) {
                if let Some(target) = self.resolve(caller, e) {
                    out.push((e, target));
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctxs(files: &[(&str, &str)]) -> Vec<FileCtx> {
        files.iter().map(|(p, s)| FileCtx::new(p, s)).collect()
    }

    #[test]
    fn resolves_same_file_then_unique() {
        let files = ctxs(&[
            (
                "crates/fl/src/a.rs",
                "fn helper() {}\nfn caller() { helper(); remote(); }\n",
            ),
            ("crates/he/src/b.rs", "pub fn remote() {}\n"),
        ]);
        let cg = CallGraph::build(&files);
        let caller = cg
            .fns
            .iter()
            .position(|(_, f)| f.name == "caller")
            .expect("caller indexed");
        let targets: Vec<&str> = cg
            .calls_of(caller)
            .iter()
            .map(|&(_, id)| cg.fns[id].1.name.as_str())
            .collect();
        assert_eq!(targets, ["helper", "remote"]);
        assert_eq!(
            cg.crate_of(cg.calls_of(caller)[1].1, &files).as_deref(),
            Some("he")
        );
    }

    #[test]
    fn ambiguous_names_produce_no_edge() {
        let files = ctxs(&[
            ("crates/fl/src/a.rs", "fn f() {}\n"),
            ("crates/he/src/b.rs", "fn f() {}\n"),
            ("crates/nn/src/c.rs", "fn caller() { f(); }\n"),
        ]);
        let cg = CallGraph::build(&files);
        let caller = cg
            .fns
            .iter()
            .position(|(_, f)| f.name == "caller")
            .expect("caller indexed");
        assert!(cg.calls_of(caller).is_empty());
    }

    #[test]
    fn self_method_and_qualified_path_resolve() {
        let files = ctxs(&[(
            "crates/fl/src/a.rs",
            "impl Pool {\n  fn inner(&self) {}\n  fn outer(&self) { self.inner(); Pool::inner(&self); }\n}\n",
        )]);
        let cg = CallGraph::build(&files);
        let outer = cg
            .fns
            .iter()
            .position(|(_, f)| f.name == "outer")
            .expect("outer indexed");
        assert_eq!(cg.calls_of(outer).len(), 2);
    }
}
