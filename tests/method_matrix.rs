//! The full method matrix at smoke scale: every algorithm the paper
//! evaluates must run end-to-end on both partitions without diverging,
//! and the experiment harness must produce sane cells for each.

use fedwcm_experiments::report::run_cell;
use fedwcm_experiments::{Cli, ExpConfig, Method, Scale};
use fedwcm_suite::data::synth::DatasetPreset;

const ALL_METHODS: [Method; 18] = [
    Method::FedAvg,
    Method::BalanceFl,
    Method::FedGrab,
    Method::FedCm,
    Method::FedCmFocal,
    Method::FedCmBalanceLoss,
    Method::FedCmBalanceSampler,
    Method::FedWcm,
    Method::FedWcmX,
    Method::FedProx,
    Method::Scaffold,
    Method::FedDyn,
    Method::FedAvgM,
    Method::FedSam,
    Method::MoFedSam,
    Method::FedSpeed,
    Method::FedSmoo,
    Method::FedLesam,
];

#[test]
fn every_method_runs_on_the_paper_partition() {
    let cli = Cli {
        scale: Scale::Smoke,
        ..Cli::default()
    };
    let exp = ExpConfig::new(DatasetPreset::FashionMnist, 0.1, 0.3, Scale::Smoke, 3001);
    for method in ALL_METHODS {
        let acc = run_cell(&exp, method, &cli);
        assert!(
            (0.0..=1.0).contains(&acc) && acc.is_finite(),
            "{}: accuracy {acc}",
            method.label()
        );
        // Even at smoke scale nothing should be stuck strictly below
        // chance for a 10-class problem with 8 rounds of training.
        assert!(acc >= 0.05, "{}: degenerate accuracy {acc}", method.label());
    }
}

#[test]
fn core_methods_run_on_the_fedgrab_partition() {
    let cli = Cli {
        scale: Scale::Smoke,
        ..Cli::default()
    };
    let mut exp = ExpConfig::new(DatasetPreset::FashionMnist, 0.1, 0.3, Scale::Smoke, 3002);
    exp.fedgrab_partition = true;
    for method in [
        Method::FedAvg,
        Method::FedCm,
        Method::FedWcm,
        Method::FedWcmX,
    ] {
        let acc = run_cell(&exp, method, &cli);
        assert!(
            acc.is_finite() && acc >= 0.05,
            "{}: accuracy {acc}",
            method.label()
        );
    }
}

#[test]
fn hundred_class_preset_smoke() {
    // The CIFAR-100/ImageNet stand-ins exercise the wide-model path.
    let cli = Cli {
        scale: Scale::Smoke,
        rounds: Some(3),
        ..Cli::default()
    };
    let exp = ExpConfig::new(DatasetPreset::Cifar100, 0.1, 0.1, Scale::Smoke, 3003);
    for method in [Method::FedAvg, Method::FedWcm] {
        let acc = run_cell(&exp, method, &cli);
        assert!(
            acc.is_finite() && (0.0..=1.0).contains(&acc),
            "{}",
            method.label()
        );
    }
}
