//! Symmetric RLWE encryption with additive homomorphism.

use crate::ring::{addq, modq, negacyclic_mul_sparse, poly_add, poly_sub, subq, to_signed, Q};
use fedwcm_stats::rng::{Rng, Xoshiro256pp};

/// Scheme parameters.
#[derive(Clone, Copy, Debug)]
pub struct RlweParams {
    /// Ring degree `N` (power of two). Also the max packable vector length.
    pub degree: usize,
    /// Plaintext modulus `t` (counts must stay below `t` after summation).
    pub plain_modulus: u64,
    /// Hamming weight of the ternary secret.
    pub secret_weight: usize,
    /// Noise magnitude bound (uniform in `[-noise, noise]`).
    pub noise_bound: u64,
}

impl RlweParams {
    /// BFV-shaped defaults: `N = 4096`, `t = 2^20`, sparse ternary secret.
    pub fn default_params() -> Self {
        RlweParams {
            degree: 4096,
            plain_modulus: 1 << 20,
            secret_weight: 64,
            noise_bound: 8,
        }
    }

    /// Smaller parameters for fast tests.
    pub fn test_params() -> Self {
        RlweParams {
            degree: 256,
            plain_modulus: 1 << 16,
            secret_weight: 16,
            noise_bound: 4,
        }
    }

    /// Scaling factor `Δ = q / t`.
    pub fn delta(&self) -> u64 {
        Q / self.plain_modulus
    }

    /// Serialized ciphertext size in bytes: two polynomials of `N`
    /// 8-byte coefficients.
    pub fn ciphertext_bytes(&self) -> usize {
        2 * self.degree * 8
    }

    fn validate(&self) {
        assert!(
            self.degree.is_power_of_two() && self.degree >= 16,
            "degree must be a power of two ≥ 16"
        );
        assert!(
            self.plain_modulus >= 2 && self.plain_modulus <= Q / 4,
            "bad plaintext modulus"
        );
        assert!(self.secret_weight >= 2 && self.secret_weight <= self.degree / 2);
        assert!(self.noise_bound >= 1);
    }
}

/// A sparse ternary secret key.
#[derive(Clone, Debug)]
pub struct SecretKey {
    params: RlweParams,
    plus: Vec<usize>,
    minus: Vec<usize>,
}

impl SecretKey {
    /// Generate a fresh key.
    pub fn generate(params: RlweParams, rng: &mut Xoshiro256pp) -> Self {
        params.validate();
        let positions = rng.sample_indices(params.degree, params.secret_weight);
        let (mut plus, mut minus) = (Vec::new(), Vec::new());
        for p in positions {
            if rng.bernoulli(0.5) {
                plus.push(p);
            } else {
                minus.push(p);
            }
        }
        // Guarantee both signs appear (degenerate keys weaken nothing
        // functionally, but keep the distribution sane).
        if plus.is_empty() {
            if let Some(p) = minus.pop() {
                plus.push(p);
            }
        }
        if minus.is_empty() {
            if let Some(p) = plus.pop() {
                minus.push(p);
            }
        }
        SecretKey {
            params,
            plus,
            minus,
        }
    }

    /// Scheme parameters bound to this key.
    pub fn params(&self) -> &RlweParams {
        &self.params
    }

    /// Encrypt a vector of small non-negative integers (coefficient
    /// packing: value `i` goes into coefficient `i`). The vector must fit
    /// in the ring degree and each value below the plaintext modulus.
    pub fn encrypt(&self, values: &[u64], rng: &mut Xoshiro256pp) -> Ciphertext {
        let p = &self.params;
        assert!(values.len() <= p.degree, "too many values for ring degree");
        assert!(
            values.iter().all(|&v| v < p.plain_modulus),
            "plaintext value exceeds modulus"
        );
        let n = p.degree;
        let delta = p.delta();

        // c1 = a ← uniform R_q
        let c1: Vec<u64> = (0..n).map(|_| modq(rng.next_u64())).collect();
        // c0 = a·s + e + Δ·m
        let mut c0 = vec![0u64; n];
        negacyclic_mul_sparse(&c1, &self.plus, &self.minus, &mut c0);
        for c in c0.iter_mut() {
            // e ∈ [−noise, noise]
            let e = rng.next_below(2 * p.noise_bound + 1) as i64 - p.noise_bound as i64;
            *c = if e >= 0 {
                addq(*c, e.unsigned_abs())
            } else {
                subq(*c, e.unsigned_abs())
            };
        }
        for (c, &v) in c0.iter_mut().zip(values) {
            *c = addq(*c, delta.wrapping_mul(v) & (Q - 1));
        }
        Ciphertext { c0, c1, added: 1 }
    }

    /// Decrypt to a vector of `len` values.
    pub fn decrypt(&self, ct: &Ciphertext, len: usize) -> Vec<u64> {
        let p = &self.params;
        assert!(len <= p.degree, "requested length exceeds ring degree");
        let n = p.degree;
        let delta = p.delta() as i128;
        // m̃ = c0 − c1·s = Δ·m + e_total
        let mut a_s = vec![0u64; n];
        negacyclic_mul_sparse(&ct.c1, &self.plus, &self.minus, &mut a_s);
        let mut noisy = vec![0u64; n];
        poly_sub(&ct.c0, &a_s, &mut noisy);
        noisy[..len]
            .iter()
            .map(|&x| {
                let v = to_signed(x) as i128;
                let m = (v + delta / 2).div_euclid(delta);
                m.rem_euclid(p.plain_modulus as i128) as u64
            })
            .collect()
    }
}

/// An RLWE ciphertext (pair of ring elements).
#[derive(Clone, Debug)]
pub struct Ciphertext {
    c0: Vec<u64>,
    c1: Vec<u64>,
    /// How many fresh ciphertexts have been summed into this one (noise
    /// grows linearly; tracked for budget assertions).
    pub added: usize,
}

impl Ciphertext {
    /// Homomorphic addition: `Enc(m1) + Enc(m2) = Enc(m1 + m2)`.
    pub fn add_assign(&mut self, other: &Ciphertext) {
        assert_eq!(self.c0.len(), other.c0.len(), "ciphertext degree mismatch");
        let mut c0 = vec![0u64; self.c0.len()];
        poly_add(&self.c0, &other.c0, &mut c0);
        self.c0 = c0;
        let mut c1 = vec![0u64; self.c1.len()];
        poly_add(&self.c1, &other.c1, &mut c1);
        self.c1 = c1;
        self.added += other.added;
    }

    /// Serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        (self.c0.len() + self.c1.len()) * 8
    }

    /// Serialize to the wire format: little-endian degree header followed
    /// by `c0` then `c1` coefficients.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.byte_len());
        out.extend_from_slice(&(self.c0.len() as u64).to_le_bytes());
        for &x in self.c0.iter().chain(&self.c1) {
            out.extend_from_slice(&x.to_le_bytes());
        }
        out
    }

    /// Parse the wire format produced by [`Ciphertext::to_bytes`].
    /// Returns `None` on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Option<Ciphertext> {
        if bytes.len() < 8 {
            return None;
        }
        let n = u64::from_le_bytes(bytes[..8].try_into().ok()?) as usize;
        if n == 0 || !n.is_power_of_two() || bytes.len() != 8 + 16 * n {
            return None;
        }
        let mut coeffs = Vec::with_capacity(2 * n);
        for chunk in bytes[8..].chunks_exact(8) {
            let v = u64::from_le_bytes(chunk.try_into().ok()?);
            if v >= crate::ring::Q {
                return None;
            }
            coeffs.push(v);
        }
        let c1 = coeffs.split_off(n);
        Some(Ciphertext {
            c0: coeffs,
            c1,
            added: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(seed: u64) -> (SecretKey, Xoshiro256pp) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let key = SecretKey::generate(RlweParams::test_params(), &mut rng);
        (key, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (key, mut rng) = setup(1);
        let values: Vec<u64> = (0..100).map(|i| (i * 7) % 1000).collect();
        let ct = key.encrypt(&values, &mut rng);
        assert_eq!(key.decrypt(&ct, values.len()), values);
    }

    #[test]
    fn zero_and_max_values() {
        let (key, mut rng) = setup(2);
        let t = key.params().plain_modulus;
        let values = vec![0u64, t - 1, 1, 0];
        let ct = key.encrypt(&values, &mut rng);
        assert_eq!(key.decrypt(&ct, 4), values);
    }

    #[test]
    fn homomorphic_addition() {
        let (key, mut rng) = setup(3);
        let a = vec![10u64, 20, 30];
        let b = vec![1u64, 2, 3];
        let mut ca = key.encrypt(&a, &mut rng);
        let cb = key.encrypt(&b, &mut rng);
        ca.add_assign(&cb);
        assert_eq!(key.decrypt(&ca, 3), vec![11, 22, 33]);
        assert_eq!(ca.added, 2);
    }

    #[test]
    fn many_party_aggregation_is_exact() {
        let (key, mut rng) = setup(4);
        let parties = 100usize;
        let classes = 10usize;
        let mut expected = vec![0u64; classes];
        let mut acc: Option<Ciphertext> = None;
        for p in 0..parties {
            let counts: Vec<u64> = (0..classes)
                .map(|c| ((p * 31 + c * 7) % 50) as u64)
                .collect();
            for (e, &c) in expected.iter_mut().zip(&counts) {
                *e += c;
            }
            let ct = key.encrypt(&counts, &mut rng);
            match acc.as_mut() {
                None => acc = Some(ct),
                Some(a) => a.add_assign(&ct),
            }
        }
        let total = acc.unwrap();
        assert_eq!(total.added, parties);
        assert_eq!(key.decrypt(&total, classes), expected);
    }

    #[test]
    fn wrong_key_fails_to_decrypt() {
        let (key, mut rng) = setup(5);
        let (other, _) = setup(6);
        let values = vec![42u64; 8];
        let ct = key.encrypt(&values, &mut rng);
        let wrong = other.decrypt(&ct, 8);
        assert_ne!(wrong, values, "wrong key should not decrypt");
    }

    #[test]
    fn ciphertexts_randomised() {
        let (key, mut rng) = setup(7);
        let values = vec![5u64; 4];
        let c1 = key.encrypt(&values, &mut rng);
        let c2 = key.encrypt(&values, &mut rng);
        assert_ne!(c1.c0, c2.c0, "ciphertexts must be probabilistic");
    }

    #[test]
    fn ciphertext_size_independent_of_payload() {
        let (key, mut rng) = setup(8);
        let small = key.encrypt(&[1], &mut rng);
        let large = key.encrypt(&vec![1u64; 200], &mut rng);
        assert_eq!(small.byte_len(), large.byte_len());
        assert_eq!(small.byte_len(), key.params().ciphertext_bytes());
    }

    #[test]
    fn serialization_roundtrip() {
        let (key, mut rng) = setup(10);
        let values = vec![17u64, 0, 999, 3];
        let ct = key.encrypt(&values, &mut rng);
        let bytes = ct.to_bytes();
        assert_eq!(bytes.len(), 8 + ct.byte_len());
        let back = Ciphertext::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(key.decrypt(&back, 4), values);
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(Ciphertext::from_bytes(&[]).is_none());
        assert!(Ciphertext::from_bytes(&[0u8; 8]).is_none()); // n = 0
                                                              // Truncated body.
        let mut bad = Vec::new();
        bad.extend_from_slice(&16u64.to_le_bytes());
        bad.extend_from_slice(&[0u8; 16]);
        assert!(Ciphertext::from_bytes(&bad).is_none());
        // Out-of-range coefficient.
        let mut oob = Vec::new();
        oob.extend_from_slice(&1u64.to_le_bytes());
        oob.extend_from_slice(&u64::MAX.to_le_bytes());
        oob.extend_from_slice(&0u64.to_le_bytes());
        assert!(Ciphertext::from_bytes(&oob).is_none());
    }

    #[test]
    #[should_panic]
    fn oversized_plaintext_rejected() {
        let (key, mut rng) = setup(9);
        let t = key.params().plain_modulus;
        let _ = key.encrypt(&[t], &mut rng);
    }
}
