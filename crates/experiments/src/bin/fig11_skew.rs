//! Figure 11: quantity-skew statistics of the FedGrab-style partition at
//! β = 0.1, IF = 0.1 — the paper reports ~10% of clients holding >50% of
//! samples and ~40% holding <10%.

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::{parse_args, ExpConfig};
use fedwcm_stats::describe::gini;

fn main() {
    let cli = parse_args(std::env::args());
    let mut exp = ExpConfig::new(DatasetPreset::Cifar10, 0.1, 0.1, cli.scale, cli.seed);
    exp.fedgrab_partition = true;
    let task = exp.prepare();

    let mut sizes = task.partition.client_sizes();
    let total: usize = sizes.iter().sum();
    sizes.sort_unstable_by(|a, b| b.cmp(a));

    println!("# Fig.11: FedGrab-partition quantity skew (beta=0.1, IF=0.1)");
    println!("clients={} total-samples={total}", sizes.len());
    println!("\n## sorted client sizes (CSV: rank,samples,share)");
    for (rank, &s) in sizes.iter().enumerate() {
        println!("{rank},{s},{:.4}", s as f64 / total as f64);
    }

    // Cumulative concentration summaries.
    let top10 = sizes.len().div_ceil(10);
    let top10_share: usize = sizes[..top10].iter().sum();
    let small_clients = sizes
        .iter()
        .filter(|&&s| (s as f64) < 0.1 * total as f64 / sizes.len() as f64 * 10.0 / 4.0)
        .count();
    let gini_v = gini(&sizes.iter().map(|&s| s as f64).collect::<Vec<_>>());
    println!(
        "\n# top-10% clients hold {:.1}% of samples",
        100.0 * top10_share as f64 / total as f64
    );
    println!("# clients below 25% of the mean size: {small_clients}");
    println!("# quantity Gini = {gini_v:.3}");
    println!(
        "\nExpected shape (paper Fig. 11 / App. A): a small head of clients\n\
         holds the majority of samples; long tail of tiny clients."
    );
}
