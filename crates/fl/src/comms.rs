//! Communication-cost accounting.
//!
//! Appendix C argues the HE distribution-exchange cost is "negligible
//! compared to model transmission overhead in a typical federated
//! learning round"; this module quantifies that model-transmission side
//! so the comparison (and any bandwidth budgeting) is concrete.

use crate::config::FlConfig;

/// Bytes moved in one direction for one client exchanging a full model
/// (f32 parameters).
pub fn model_bytes(param_len: usize) -> usize {
    param_len * 4
}

/// Per-round and full-run communication volumes for a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommReport {
    /// Clients sampled per round.
    pub sampled_per_round: usize,
    /// Download bytes per round (server → sampled clients: the global
    /// model, plus the global momentum for momentum methods).
    pub down_bytes_per_round: usize,
    /// Upload bytes per round (clients → server: one delta each).
    pub up_bytes_per_round: usize,
    /// Total bytes over the whole run.
    pub total_bytes: usize,
}

/// Compute the communication profile of a run.
///
/// `momentum_broadcast` adds one extra model-sized download per client
/// per round (FedCM/FedWCM ship `Δ_r` alongside the parameters).
pub fn communication_report(
    cfg: &FlConfig,
    param_len: usize,
    momentum_broadcast: bool,
) -> CommReport {
    let sampled = cfg.sampled_per_round();
    let model = model_bytes(param_len);
    let down_per_client = model * if momentum_broadcast { 2 } else { 1 };
    let down = down_per_client * sampled;
    let up = model * sampled;
    CommReport {
        sampled_per_round: sampled,
        down_bytes_per_round: down,
        up_bytes_per_round: up,
        total_bytes: (down + up) * cfg.rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fedavg_round_volume() {
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 100;
        cfg.participation = 0.1;
        cfg.rounds = 500;
        let r = communication_report(&cfg, 11_000_000, false); // ResNet-18-ish
        assert_eq!(r.sampled_per_round, 10);
        assert_eq!(r.up_bytes_per_round, 10 * 44_000_000);
        assert_eq!(r.down_bytes_per_round, r.up_bytes_per_round);
        assert_eq!(r.total_bytes, 500 * 2 * 10 * 44_000_000);
    }

    #[test]
    fn momentum_broadcast_doubles_downlink_only() {
        let cfg = FlConfig::default_sim();
        let plain = communication_report(&cfg, 1000, false);
        let momentum = communication_report(&cfg, 1000, true);
        assert_eq!(
            momentum.down_bytes_per_round,
            2 * plain.down_bytes_per_round
        );
        assert_eq!(momentum.up_bytes_per_round, plain.up_bytes_per_round);
    }

    #[test]
    fn he_overhead_is_negligible_vs_model_traffic() {
        // The Appendix-C claim, checked quantitatively: 100 clients with a
        // ResNet-18-sized model move ~880 MB/round; the one-off HE
        // exchange is ~65 KB per client (6.5 MB total) — well under 1% of
        // a single round.
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 100;
        cfg.participation = 1.0;
        let round = communication_report(&cfg, 11_000_000, false);
        let he_total = 100 * 65_536usize;
        assert!(
            (he_total as f64) < 0.01 * round.up_bytes_per_round as f64,
            "HE {} vs round {}",
            he_total,
            round.up_bytes_per_round
        );
    }
}
