//! Quickstart: train FedWCM on a synthetic long-tailed federated task and
//! compare it against FedAvg and FedCM.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fedwcm_suite::prelude::*;

fn main() {
    // 1. A long-tailed dataset: the CIFAR-10 stand-in (image features,
    //    residual CNN), imbalance factor IF = 0.05 — the rarest class has
    //    5% of the head class's samples.
    let spec = DatasetPreset::Cifar10.spec();
    let counts = longtail_counts(10, 470, 0.1);
    let train = spec.generate_train(&counts, 42);
    let test = spec.generate_test(42);
    println!(
        "train: {} samples, class counts {:?}",
        train.len(),
        train.class_counts()
    );

    // 2. Partition across clients: equal quantities, Dirichlet(β=0.6)
    //    class skew, 20% participation — the regime where the paper shows
    //    client momentum falling over.
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 20;
    cfg.participation = 0.2;
    cfg.rounds = 60;
    cfg.local_epochs = 5;
    cfg.batch_size = 20;
    cfg.eval_every = 5;
    let partition = paper_partition(&train, cfg.clients, 0.6, cfg.seed);
    let views = partition.views(&train);

    // 3. A model factory: every algorithm trains the same residual CNN.
    let factory = || {
        let mut rng = Xoshiro256pp::seed_from(7);
        fedwcm_suite::nn::models::res_lite(3, 8, 8, 10, 12, &mut rng)
    };

    // 4. Run three algorithms on the identical task.
    let sim = Simulation::new(cfg, &train, &test, views, Box::new(factory));
    let mut results = Vec::new();
    for algo in [
        Box::new(FedAvg::new()) as Box<dyn FederatedAlgorithm>,
        Box::new(FedCm::new(0.1)),
        Box::new(FedWcm::new()),
    ] {
        let mut algo = algo;
        let history = sim.run(algo.as_mut());
        println!(
            "{:<8} final accuracy {:.4} (best {:.4})",
            history.name,
            history.final_accuracy(3),
            history.best_accuracy()
        );
        results.push((history.name.clone(), history.final_accuracy(3)));
    }

    let fedwcm = results.iter().find(|(n, _)| n == "FedWCM").unwrap().1;
    let fedcm = results.iter().find(|(n, _)| n == "FedCM").unwrap().1;
    println!(
        "\nFedWCM vs FedCM under the long tail: {:+.1} accuracy points",
        (fedwcm - fedcm) * 100.0
    );
}
