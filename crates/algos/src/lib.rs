//! Baseline federated-learning algorithms.
//!
//! Every method the paper compares against (outside the long-tail-specific
//! ones in `fedwcm-longtail`):
//!
//! * [`fedavg::FedAvg`] — McMahan et al., plain model averaging;
//! * [`fedprox::FedProx`] — proximal local objective;
//! * [`scaffold::Scaffold`] — control variates correcting client drift;
//! * [`feddyn::FedDyn`] — dynamic regularisation;
//! * [`fedcm::FedCm`] — client-level momentum (the method FedWCM repairs),
//!   with pluggable loss and sampler for the paper's "+Focal / +Balance
//!   Loss / +Balance Sampler" variants;
//! * [`fedavgm::FedAvgM`] — server momentum (SlowMo-style);
//! * [`mime::MimeLite`] — frozen-server-momentum local steps (Mime);
//! * [`sam`] — the sharpness-aware family used in Appendix D: FedSAM,
//!   MoFedSAM, and mechanism-faithful "lite" variants of FedSpeed,
//!   FedSMOO, and FedLESAM.

#![warn(missing_docs)]

pub mod fedavg;
pub mod fedavgm;
pub mod fedcm;
pub mod feddyn;
pub mod fedprox;
pub mod mime;
pub mod sam;
pub mod scaffold;

pub use fedavg::FedAvg;
pub use fedavgm::FedAvgM;
pub use fedcm::FedCm;
pub use feddyn::FedDyn;
pub use fedprox::FedProx;
pub use mime::MimeLite;
pub use sam::{FedLesam, FedSam, FedSmoo, FedSpeed, MoFedSam};
pub use scaffold::Scaffold;

#[cfg(test)]
pub(crate) mod testutil {
    use fedwcm_data::dataset::Dataset;
    use fedwcm_data::longtail::longtail_counts;
    use fedwcm_data::partition::paper_partition;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_fl::{FlConfig, Simulation};
    use fedwcm_nn::models::mlp;
    use fedwcm_stats::Xoshiro256pp;

    /// A small balanced federated task every baseline should learn.
    pub fn small_task(seed: u64, imbalance: f64) -> (Dataset, Dataset, FlConfig) {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 70, imbalance);
        let train = spec.generate_train(&counts, seed);
        let test = spec.generate_test(seed);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 8;
        cfg.participation = 0.5;
        cfg.rounds = 12;
        cfg.local_epochs = 2;
        cfg.batch_size = 20;
        cfg.eval_every = 4;
        cfg.seed = seed;
        (train, test, cfg)
    }

    pub fn build_sim<'a>(
        train: &'a Dataset,
        test: &'a Dataset,
        cfg: FlConfig,
        beta: f64,
    ) -> Simulation<'a> {
        let part = paper_partition(train, cfg.clients, beta, cfg.seed);
        let views = part.views(train);
        Simulation::new(
            cfg,
            train,
            test,
            views,
            Box::new(|| {
                let mut rng = Xoshiro256pp::seed_from(2024);
                mlp(64, &[32], 10, &mut rng)
            }),
        )
    }
}
