//! `parallel-escape-*` — the concurrency family: closures handed to the
//! parallel entry points must not smuggle shared mutable state across
//! worker threads, and hand-rolled `Send`/`Sync` impls must argue
//! disjointness.
//!
//! The worker pool's soundness story (see `crates/parallel/src/shadow.rs`)
//! is that every write inside a parallel closure lands in state **owned
//! by the closure's index** — a result slot, a chunk, a per-invocation
//! local. The dynamic half of that story is the `race_check` sanitizer;
//! this rule family is the static half:
//!
//! * `parallel-escape-capture` — a closure passed to a parallel entry
//!   point writes through state captured from the enclosing scope: a
//!   direct assignment, a `&mut` borrow handed onwards, a known
//!   mutating method (`push`, `extend`, `iter_mut`, …), or a method
//!   resolved through the call graph to a workspace function that
//!   assigns through `self`. Any type counts — an integer flag race is
//!   still a race. The `parallel`/`stats` crates are exempt (same
//!   blessing as `float-reduction-order`): they *implement* the shared
//!   index-owned state, and the `race_check` shadow tables check their
//!   discipline at runtime.
//! * `parallel-escape-index` — an indexed write to captured state whose
//!   index expression is not provably **derived** from the closure's
//!   own index parameter. Derivation is a forward dataflow over the
//!   closure body ([`crate::dataflow`]): parameters start derived, a
//!   `let` whose initializer mentions a derived name propagates it, and
//!   a `for` binding over a derived iterator is derived. `out[i] = v`
//!   with `i` the closure parameter passes; `out[0] = v` or an index
//!   read from captured state does not.
//! * `parallel-escape-send-sync` — an `unsafe impl Send`/`Sync` whose
//!   adjacent `// SAFETY:` comment does not state a *disjointness*
//!   argument (who owns which region, why writers never overlap). Like
//!   `unsafe-safety` it applies to every crate, test code included.
//!
//! # Soundness direction
//!
//! The family under-approximates, like every analysis in this linter:
//! writes whose base the parser cannot name (method-call chains,
//! destructuring loop bindings), calls that do not resolve, and names
//! bound inside *nested* closures are skipped rather than guessed, so
//! a finding is always worth reading. The converse gap — an index name
//! `let`-bound inside a nested closure is not tracked as derived — can
//! over-flag; hoist the computation or suppress with a reasoned
//! marker.

use crate::ast::{Expr, FnDef, Param};
use crate::callgraph::{CallGraph, FnId};
use crate::dataflow::{run_expr, ForwardSemantics, JoinLattice};
use crate::engine::{Diagnostic, FileCtx, LintConfig};
use crate::lexer::TokKind;
use std::collections::BTreeSet;

const CAPTURE_RULE: &str = "parallel-escape-capture";
const INDEX_RULE: &str = "parallel-escape-index";
const SEND_SYNC_RULE: &str = "parallel-escape-send-sync";

/// Functions that run a closure across worker threads. The last
/// closure argument of `parallel_map_reduce` is its index-ordered
/// caller-thread fold and is exempt (same carve-out as
/// `float-reduction-order`).
const PARALLEL_ENTRIES: &[&str] = &[
    "parallel_for_each",
    "parallel_map",
    "parallel_map_reduce",
    "parallel_over_rows",
];

/// Crates exempt from `parallel-escape-capture`: they implement the
/// blessed index-owned-state primitives themselves, and `race_check`
/// verifies their discipline dynamically. `parallel-escape-index` is
/// *not* blessed anywhere — even the core must index by the closure's
/// own parameter.
const CAPTURE_BLESSED_CRATES: &[&str] = &["parallel", "stats"];

/// Methods that mutate their receiver (or hand out `&mut` into it);
/// calling one on captured state inside a parallel closure is a shared
/// write. Conservative std-API list — unknown methods are not flagged.
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "extend",
    "extend_from_slice",
    "append",
    "clear",
    "remove",
    "swap_remove",
    "truncate",
    "resize",
    "retain",
    "drain",
    "pop",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "fill",
    "copy_from_slice",
    "clone_from_slice",
    "swap",
    "get_mut",
    "iter_mut",
    "as_mut",
    "as_mut_slice",
    "split_at_mut",
    "first_mut",
    "last_mut",
];

/// Disjointness vocabulary a `Send`/`Sync` safety comment must use —
/// some phrase saying which single owner touches which region.
const DISJOINT_VOCAB: &[&str] = &[
    "disjoint",
    "exactly one",
    "at most one",
    "only one",
    "one participant",
    "single claimant",
    "single writer",
    "single owner",
    "never concurrently",
    "no two",
];

/// Run `parallel-escape-capture` / `parallel-escape-index` over the
/// parsed workspace (the send-sync rule is per-file:
/// [`check_send_sync_safety`]).
pub fn check_parallel_escape(
    files: &[FileCtx],
    cg: &CallGraph<'_>,
    cfg: &LintConfig,
    diags: &mut Vec<Diagnostic>,
) {
    let capture = cfg.is_enabled(CAPTURE_RULE);
    let index = cfg.is_enabled(INDEX_RULE);
    if !(capture || index) {
        return;
    }
    // Pass 1: which workspace functions assign through `self`? A method
    // resolved to one of these mutates its receiver even without an
    // explicit `&mut` at the call site.
    let self_mutators: Vec<bool> = cg.fns.iter().map(|&(_, f)| mutates_self(f)).collect();

    // Pass 2: inspect every parallel closure in library crates.
    for (id, &(fi, f)) in cg.fns.iter().enumerate() {
        let ctx = &files[fi];
        if !ctx.is_lib_crate() || ctx.is_test_line(f.line) {
            continue;
        }
        let capture_here = capture
            && !ctx
                .crate_name
                .as_deref()
                .is_some_and(|c| CAPTURE_BLESSED_CRATES.contains(&c));
        if !(capture_here || index) {
            continue;
        }
        let enclosing = enclosing_bindings(f);
        f.body.walk(&mut |e| {
            let (name, args) = match e {
                Expr::Call { callee, args, .. } => match callee.base_ident() {
                    Some(n) => (n, args),
                    None => return,
                },
                Expr::MethodCall { method, args, .. } => (method.as_str(), args),
                _ => return,
            };
            let Some(entry) = PARALLEL_ENTRIES.iter().find(|&&p| p == name) else {
                return;
            };
            let closure_args: Vec<&Expr> = args
                .iter()
                .filter(|a| matches!(a, Expr::Closure { .. }))
                .collect();
            for (k, arg) in closure_args.iter().enumerate() {
                // parallel_map_reduce's trailing fold closure runs
                // sequentially on the caller thread.
                if *entry == "parallel_map_reduce" && k + 1 == closure_args.len() {
                    continue;
                }
                let Expr::Closure { params, body, .. } = arg else {
                    continue;
                };
                scan_closure(ScanInput {
                    ctx,
                    cg,
                    caller: id,
                    entry,
                    params,
                    body,
                    enclosing: &enclosing,
                    check_capture: capture_here,
                    check_index: index,
                    self_mutators: &self_mutators,
                    diags,
                });
            }
        });
    }
}

/// Everything one closure scan needs.
struct ScanInput<'a, 'b> {
    ctx: &'a FileCtx,
    cg: &'a CallGraph<'a>,
    caller: FnId,
    entry: &'a str,
    params: &'a [Param],
    body: &'a Expr,
    enclosing: &'a BTreeSet<String>,
    check_capture: bool,
    check_index: bool,
    self_mutators: &'a [bool],
    diags: &'b mut Vec<Diagnostic>,
}

/// Insert the names bound by `b`'s *direct* `let` statements.
fn direct_lets(b: &crate::ast::Block, names: &mut BTreeSet<String>) {
    for s in &b.stmts {
        if let crate::ast::Stmt::Let { name, .. } = s {
            names.insert(name.clone());
        }
    }
}

/// Collect every binding name visible anywhere under `visit`: `let`s in
/// every block shape (explicit blocks, `if` branches, loop bodies —
/// each block is the direct child of exactly one visited node), plain
/// `for` bindings, and — when `with_closure_params` — nested-closure
/// parameters.
fn collect_bindings(
    visit: impl FnOnce(&mut dyn FnMut(&Expr)),
    names: &mut BTreeSet<String>,
    with_closure_params: bool,
) {
    visit(&mut |e: &Expr| match e {
        Expr::BlockExpr(b) => direct_lets(b, names),
        Expr::If { then, .. } => direct_lets(then, names),
        Expr::Loop { binding, body, .. } => {
            if let Some(b) = binding {
                names.insert(b.clone());
            }
            direct_lets(body, names);
        }
        Expr::Closure { params, .. } if with_closure_params => {
            for p in params {
                names.insert(p.name.clone());
            }
        }
        _ => {}
    });
}

/// Names bound by the enclosing function: parameters, every `let` in
/// its body (flow-insensitive, like [`crate::ast::TypeEnv`]), and
/// plain-identifier `for` bindings. A write whose base is in this set
/// — and not rebound inside the closure — is a capture. Bases the
/// parser cannot attribute to either scope (destructuring patterns,
/// method-call chains) are skipped: under-approximation.
fn enclosing_bindings(f: &FnDef) -> BTreeSet<String> {
    let mut names: BTreeSet<String> = f.params.iter().map(|p| p.name.clone()).collect();
    names.insert("self".to_string());
    direct_lets(&f.body, &mut names);
    collect_bindings(|mut v| f.body.walk(&mut v), &mut names, false);
    names
}

/// Names bound inside the closure itself: its parameters, every `let`
/// in its body, plain `for` bindings, and nested-closure parameters.
/// Writes to these are per-invocation state, never shared.
fn closure_locals(params: &[Param], body: &Expr) -> BTreeSet<String> {
    let mut locals: BTreeSet<String> = params.iter().map(|p| p.name.clone()).collect();
    collect_bindings(|mut v| body.walk(&mut v), &mut locals, true);
    locals
}

/// The abstract state of the derivation dataflow: the set of names
/// provably derived from the closure's own index parameter. Join is
/// union — a name derived on *some* path counts as derived, which
/// over-approximates derivation and therefore under-approximates
/// findings (the family's contract).
#[derive(Clone, Default)]
struct Derived(BTreeSet<String>);

impl JoinLattice for Derived {
    fn join_from(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().cloned());
        self.0.len() != before
    }
}

/// Does `e` mention any derived name?
fn mentions_derived(e: &Expr, state: &Derived) -> bool {
    let mut hit = false;
    e.walk(&mut |n| {
        if let Expr::Path { segs, .. } = n {
            if segs.len() == 1 && state.0.contains(&segs[0]) {
                hit = true;
            }
        }
    });
    hit
}

/// The dataflow client: threads the derived-name state through the
/// closure body and reports escapes at every atomic statement.
struct EscapeScan<'a, 'b> {
    input: ScanInput<'a, 'b>,
    locals: BTreeSet<String>,
    /// `(line, rule)` pairs already reported — the loop fixpoint
    /// re-interprets bodies, and one site is one finding.
    reported: BTreeSet<(usize, &'static str)>,
}

impl EscapeScan<'_, '_> {
    fn diag(&mut self, rule: &'static str, line: usize, msg: String) {
        if self.reported.insert((line, rule)) {
            self.input.diags.push(self.input.ctx.diag(rule, line, msg));
        }
    }

    /// Is `base` a name captured from the enclosing scope?
    fn is_captured(&self, base: &str) -> bool {
        !self.locals.contains(base) && (base == "self" || self.input.enclosing.contains(base))
    }

    /// Report a write through `place` (an assignment target, a `&mut`
    /// borrow operand, or a mutating-method receiver).
    fn check_write(&mut self, place: &Expr, line: usize, how: &str, state: &Derived) {
        let Some(base) = place.base_ident() else {
            return;
        };
        if !self.is_captured(base) {
            return;
        }
        let base = base.to_string();
        // Collect the index expressions applied to captured state along
        // the place path (`shared[i]`, `self.buf[k].x`, …).
        let mut indices: Vec<&Expr> = Vec::new();
        place.walk(&mut |n| {
            if let Expr::Index { base: b, index, .. } = n {
                if b.base_ident().is_some_and(|bb| self.is_captured(bb)) {
                    indices.push(index);
                }
            }
        });
        if indices.is_empty() {
            if self.input.check_capture {
                let place_text = place.place_text().unwrap_or(base);
                let entry = self.input.entry;
                self.diag(
                    CAPTURE_RULE,
                    line,
                    format!(
                        "{how} `{place_text}`, captured from the enclosing scope, inside a \
                         closure passed to `{entry}` — shared mutable state across parallel \
                         invocations races; return per-index values or write through \
                         index-owned slots instead"
                    ),
                );
            }
            return;
        }
        if self.input.check_index {
            for idx in indices {
                if !mentions_derived(idx, state) {
                    let entry = self.input.entry;
                    self.diag(
                        INDEX_RULE,
                        line,
                        format!(
                            "index into captured `{base}` is not derived from the closure's \
                             own index parameter (closure passed to `{entry}`) — the write \
                             cannot be proven to land in an index-owned slot/chunk; derive \
                             the index from the closure parameter or restructure"
                        ),
                    );
                }
            }
        }
    }

    /// Scan one atomic expression subtree for escaping writes.
    fn scan(&mut self, e: &Expr, state: &Derived) {
        // `Expr::walk` borrows the visitor mutably, so collect the
        // write sites first and report after.
        enum Site<'e> {
            Place(&'e Expr, usize, &'static str),
            SelfMutator(&'e Expr, usize, String),
        }
        let mut sites: Vec<Site<'_>> = Vec::new();
        e.walk(&mut |n| match n {
            Expr::Assign { target, line, .. } => {
                sites.push(Site::Place(target, *line, "assignment through"));
            }
            Expr::Unary {
                op: '&',
                mutable: true,
                expr,
                line,
            } => {
                sites.push(Site::Place(expr, *line, "`&mut` borrow of"));
            }
            Expr::MethodCall {
                recv, method, line, ..
            } => {
                if MUTATING_METHODS.contains(&method.as_str()) {
                    sites.push(Site::Place(recv, *line, "mutating method call on"));
                } else if let Some(target) = self.input.cg.resolve(self.input.caller, n) {
                    if self.input.self_mutators[target] {
                        let callee = self.input.cg.fns[target].1.name.clone();
                        sites.push(Site::SelfMutator(recv, *line, callee));
                    }
                }
            }
            _ => {}
        });
        for site in sites {
            match site {
                Site::Place(place, line, how) => self.check_write(place, line, how, state),
                Site::SelfMutator(recv, line, callee) => {
                    if self.input.check_capture {
                        if let Some(base) = recv.base_ident() {
                            if self.is_captured(base) {
                                let base = base.to_string();
                                let entry = self.input.entry;
                                self.diag(
                                    CAPTURE_RULE,
                                    line,
                                    format!(
                                        "`{callee}` assigns through `self` and is called on \
                                         `{base}`, captured by a closure passed to `{entry}` \
                                         — shared mutable state across parallel invocations \
                                         races; return per-index values instead"
                                    ),
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}

impl ForwardSemantics for EscapeScan<'_, '_> {
    type State = Derived;

    fn let_stmt(&mut self, name: &str, init: Option<&Expr>, state: &mut Derived) {
        if let Some(init) = init {
            self.scan(init, state);
            if name != "_" && mentions_derived(init, state) {
                state.0.insert(name.to_string());
            }
        }
    }

    fn expr_stmt(&mut self, e: &Expr, state: &mut Derived) {
        self.scan(e, state);
    }

    fn loop_as_atomic(
        &mut self,
        head: Option<&Expr>,
        binding: Option<&str>,
        _body: &crate::ast::Block,
        state: &mut Derived,
    ) -> bool {
        // Not atomic — but a `for x in <derived>` binding is derived.
        // The driver still interprets the body to a fixpoint.
        if let (Some(h), Some(b)) = (head, binding) {
            if mentions_derived(h, state) {
                state.0.insert(b.to_string());
            }
        }
        false
    }
}

/// Scan one parallel closure with the derivation dataflow.
fn scan_closure(input: ScanInput<'_, '_>) {
    let locals = closure_locals(input.params, input.body);
    let mut seed = Derived::default();
    for p in input.params {
        if p.name != "_" {
            seed.0.insert(p.name.clone());
        }
    }
    // Nested-closure parameters index their own (inner) jobs; counting
    // them as derived under-approximates findings, never invents them.
    input.body.walk(&mut |e| {
        if let Expr::Closure { params, .. } = e {
            for p in params {
                if p.name != "_" {
                    seed.0.insert(p.name.clone());
                }
            }
        }
    });
    let body = input.body;
    let mut scan = EscapeScan {
        input,
        locals,
        reported: BTreeSet::new(),
    };
    // `run_expr` descends through a `BlockExpr` body itself.
    run_expr(body, &mut scan, &mut seed);
}

/// True when `f` assigns through its `self` receiver (any operator):
/// evidence the method needs `&mut self` and mutates receiver state.
fn mutates_self(f: &FnDef) -> bool {
    let mut hit = false;
    f.body.walk(&mut |e| {
        if let Expr::Assign { target, .. } = e {
            if target.base_ident() == Some("self") {
                hit = true;
            }
        }
    });
    hit
}

/// Run `parallel-escape-send-sync` over one file: every
/// `unsafe impl Send/Sync` must carry an adjacent `// SAFETY:` comment
/// that states a disjointness argument.
pub fn check_send_sync_safety(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    for (k, &i) in ctx.code.iter().enumerate() {
        let t = &ctx.toks[i];
        if !t.is_ident("unsafe") {
            continue;
        }
        let Some(&j) = ctx.code.get(k + 1) else {
            continue;
        };
        if !ctx.toks[j].is_ident("impl") {
            continue;
        }
        // `unsafe impl<T: Send> Sync for Slot<T>` — the trait is the
        // last angle-depth-0 identifier before `for`.
        let mut depth = 0i64;
        let mut trait_name: Option<&str> = None;
        let mut saw_for = false;
        for &m in &ctx.code[k + 2..] {
            let tok = &ctx.toks[m];
            if tok.is_punct('<') {
                depth += 1;
            } else if tok.is_punct('>') {
                depth -= 1;
            } else if tok.is_punct('{') || tok.is_punct(';') {
                break;
            } else if depth == 0 && tok.kind == TokKind::Ident {
                if tok.text == "for" {
                    saw_for = true;
                    break;
                }
                trait_name = Some(&tok.text);
            }
        }
        let Some(trait_name) = trait_name else {
            continue;
        };
        if !saw_for || !matches!(trait_name, "Send" | "Sync") {
            continue;
        }
        let comment = adjacent_comment_text(ctx, t.line).to_lowercase();
        let has_safety = comment.contains("safety:");
        let has_disjoint = DISJOINT_VOCAB.iter().any(|kw| comment.contains(kw));
        if has_safety && has_disjoint {
            continue;
        }
        let what = if has_safety {
            "does not state a disjointness argument"
        } else {
            "is missing"
        };
        diags.push(ctx.diag(
            SEND_SYNC_RULE,
            t.line,
            format!(
                "`unsafe impl {trait_name}` whose `// SAFETY:` comment {what} — say which \
                 single owner touches which region and why writers never overlap \
                 (e.g. \"disjoint\", \"exactly one\", \"at most one\", \"never concurrently\")"
            ),
        ));
    }
}

/// All comment text adjacent to `line`: the line's own comments plus
/// the contiguous run of comment/attribute lines directly above (the
/// same adjacency `unsafe-safety` enforces — a blank or code line
/// breaks the association).
fn adjacent_comment_text(ctx: &FileCtx, line: usize) -> String {
    let mut text = ctx.lines[line].comment_text.clone();
    let mut ln = line.saturating_sub(1);
    while ln >= 1 {
        let li = &ctx.lines[ln];
        let blank = !li.has_code && !li.has_comment;
        if blank || (li.has_code && !li.starts_attr) {
            break;
        }
        text.push(' ');
        text.push_str(&li.comment_text);
        ln -= 1;
    }
    text
}
