//! A small forward-dataflow framework over the mini-AST, plus the
//! interprocedural summary fixpoint the v3 protocol-conformance rules
//! share.
//!
//! # Shape
//!
//! * [`JoinLattice`] — the abstract-state contract: states are joined
//!   at control-flow merges and the join reports whether anything grew,
//!   which is what lets loops run to a (bounded) fixpoint.
//! * [`ForwardSemantics`] + [`run_block`] — a structural interpreter
//!   over [`Block`]s: statements run in source order, `if`/`match`
//!   branches fork a clone of the state and join afterwards, and loops
//!   iterate their body until the state stops changing (bounded by
//!   [`LOOP_FIXPOINT_BOUND`] as a backstop). The client supplies the
//!   transfer function for atomic statements and may claim a whole loop
//!   as one atomic effect (e.g. "multiply every delta element by the
//!   discount" is *one* discount application, not zero-or-more).
//! * [`summary_fixpoint`] — a generic bottom-up interprocedural
//!   fixpoint over the [`CallGraph`]: per-function summaries are
//!   recomputed from their callees' current summaries until stable
//!   (bounded by [`SUMMARY_FIXPOINT_BOUND`]).
//!
//! # Soundness direction
//!
//! The framework inherits the call graph's bias: edges are
//! **under-approximated** (ambiguous names resolve to nothing), while
//! per-function states **over-approximate** (joins keep every branch's
//! possibility). Rules built here therefore miss flows hidden behind
//! ambiguous calls rather than inventing them — the same contract as
//! the v2 families — and findings about a value's state ("may reach the
//! sink undiscounted") cover every path the analysis can see.

use crate::ast::{Block, Expr, Stmt};
use crate::callgraph::{CallGraph, FnId};

/// Backstop on loop-body reinterpretations. Real states here are small
/// finite sets, so fixpoints land in two or three rounds; the bound
/// only matters for a pathological lattice that keeps growing.
pub const LOOP_FIXPOINT_BOUND: usize = 8;

/// Backstop on whole-workspace summary recomputation rounds.
pub const SUMMARY_FIXPOINT_BOUND: usize = 12;

/// An abstract state with a join: the merge applied where control flow
/// meets (after `if`/`match`, around loop back-edges).
pub trait JoinLattice: Clone {
    /// Merge `other` into `self`; return `true` when `self` changed.
    /// Must be monotone: joining never removes information.
    fn join_from(&mut self, other: &Self) -> bool;
}

/// How to treat an `if`'s branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchChoice {
    /// Fork the state, run both branches, join the results (default).
    Join,
    /// Run only the then-branch as if unconditional. Used when the
    /// guard itself proves the else-branch is the identity — e.g.
    /// `if staleness > 0 { discount }` skips an identity discount, so
    /// both paths count as discounted.
    ThenOnly,
}

/// Client transfer functions for the structural interpreter.
pub trait ForwardSemantics {
    /// The abstract state threaded through the function body.
    type State: JoinLattice;

    /// Transfer a `let` binding. `init` is `None` for `let x;`.
    fn let_stmt(&mut self, name: &str, init: Option<&Expr>, state: &mut Self::State);

    /// Transfer an atomic (non-control-flow) expression statement.
    fn expr_stmt(&mut self, e: &Expr, state: &mut Self::State);

    /// Decide how an `if` with this condition forks the state.
    fn branch_choice(&mut self, _cond: &Expr) -> BranchChoice {
        BranchChoice::Join
    }

    /// Claim a whole loop as a single atomic effect. Return `true`
    /// after applying the effect to `state`; return `false` to have the
    /// driver interpret the loop structurally (zero-or-more iterations,
    /// joined to a fixpoint).
    fn loop_as_atomic(
        &mut self,
        _head: Option<&Expr>,
        _binding: Option<&str>,
        _body: &Block,
        _state: &mut Self::State,
    ) -> bool {
        false
    }
}

/// Interpret a block: statements in source order, control flow forked
/// and joined per [`ForwardSemantics`].
pub fn run_block<S: ForwardSemantics>(b: &Block, sems: &mut S, state: &mut S::State) {
    for s in &b.stmts {
        match s {
            Stmt::Let { name, init, .. } => sems.let_stmt(name, init.as_ref(), state),
            Stmt::Expr(e) => run_expr(e, sems, state),
        }
    }
}

/// Interpret one statement-position expression, descending into
/// control-flow shells and delegating everything else to the client.
pub fn run_expr<S: ForwardSemantics>(e: &Expr, sems: &mut S, state: &mut S::State) {
    match e {
        Expr::BlockExpr(b) => run_block(b, sems, state),
        Expr::If {
            cond, then, els, ..
        } => {
            // The condition is evaluated on every path.
            sems.expr_stmt(cond, state);
            match sems.branch_choice(cond) {
                BranchChoice::ThenOnly => run_block(then, sems, state),
                BranchChoice::Join => {
                    let mut then_state = state.clone();
                    run_block(then, sems, &mut then_state);
                    if let Some(els) = els {
                        // The else-expression is itself an `If` (chain)
                        // or a `BlockExpr`; interpret it on the
                        // fall-through state, then join the then-side.
                        run_expr(els, sems, state);
                    }
                    state.join_from(&then_state);
                }
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            sems.expr_stmt(scrutinee, state);
            let entry = state.clone();
            for (i, arm) in arms.iter().enumerate() {
                if i == 0 {
                    run_expr(arm, sems, state);
                } else {
                    let mut arm_state = entry.clone();
                    run_expr(arm, sems, &mut arm_state);
                    state.join_from(&arm_state);
                }
            }
        }
        Expr::Loop {
            head,
            binding,
            body,
            ..
        } => {
            if let Some(h) = head {
                sems.expr_stmt(h, state);
            }
            if sems.loop_as_atomic(head.as_deref(), binding.as_deref(), body, state) {
                return;
            }
            // Zero-or-more iterations: join the effect of running the
            // body once more until nothing changes.
            for round in 0..LOOP_FIXPOINT_BOUND {
                let mut once = state.clone();
                run_block(body, sems, &mut once);
                if !state.join_from(&once) {
                    return;
                }
                debug_assert!(
                    round + 1 < LOOP_FIXPOINT_BOUND,
                    "loop fixpoint did not converge within {LOOP_FIXPOINT_BOUND} rounds — \
                     a JoinLattice impl is not monotone"
                );
            }
        }
        other => sems.expr_stmt(other, state),
    }
}

/// Compute per-function summaries bottom-up over the call graph:
/// `recompute(id, summaries)` produces function `id`'s summary from the
/// current table; iterate until a full pass changes nothing. Summaries
/// must grow monotonically for this to converge; the bound is a
/// backstop, and (with debug assertions on) non-convergence is loud.
pub fn summary_fixpoint<Summary: Clone + PartialEq>(
    cg: &CallGraph<'_>,
    init: Summary,
    mut recompute: impl FnMut(FnId, &[Summary]) -> Summary,
) -> Vec<Summary> {
    let mut summaries = vec![init; cg.fns.len()];
    for round in 0..SUMMARY_FIXPOINT_BOUND {
        let mut changed = false;
        for id in 0..cg.fns.len() {
            let next = recompute(id, &summaries);
            if next != summaries[id] {
                summaries[id] = next;
                changed = true;
            }
        }
        if !changed {
            return summaries;
        }
        debug_assert!(
            round + 1 < SUMMARY_FIXPOINT_BOUND,
            "summary fixpoint did not converge within {SUMMARY_FIXPOINT_BOUND} rounds — \
             a summary recomputation is not monotone"
        );
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::FileCtx;
    use std::collections::BTreeSet;

    /// Toy semantics: collect every identifier assigned a literal,
    /// per-branch, to exercise fork/join and the loop fixpoint.
    #[derive(Clone, Default, PartialEq)]
    struct Names(BTreeSet<String>);

    impl JoinLattice for Names {
        fn join_from(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            self.0.extend(other.0.iter().cloned());
            self.0.len() != before
        }
    }

    struct Collect;
    impl ForwardSemantics for Collect {
        type State = Names;
        fn let_stmt(&mut self, name: &str, _init: Option<&Expr>, state: &mut Names) {
            state.0.insert(name.to_string());
        }
        fn expr_stmt(&mut self, _e: &Expr, _state: &mut Names) {}
    }

    fn state_of(src: &str) -> Names {
        let ctx = FileCtx::new("crates/fl/src/x.rs", src);
        let f = &ctx.ast.fns[0];
        let mut st = Names::default();
        run_block(&f.body, &mut Collect, &mut st);
        st
    }

    #[test]
    fn branches_fork_and_join() {
        let st = state_of("fn f(c: bool) { if c { let a = 1; } else { let b = 2; } let t = 3; }");
        assert!(st.0.contains("a") && st.0.contains("b") && st.0.contains("t"));
    }

    #[test]
    fn loops_reach_a_fixpoint() {
        let st = state_of("fn f(xs: &[u32]) { for x in xs { let inner = 1; } }");
        assert!(st.0.contains("inner"));
    }

    #[test]
    fn summary_fixpoint_converges() {
        let ctx = FileCtx::new(
            "crates/fl/src/x.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        );
        let files = [ctx];
        let cg = CallGraph::build(&files);
        // Summary: transitive callee count.
        let sums = summary_fixpoint(&cg, 0usize, |id, table| {
            cg.calls_of(id)
                .iter()
                .map(|&(_, t)| 1 + table[t])
                .sum::<usize>()
        });
        let of = |name: &str| {
            let id = cg.fns.iter().position(|(_, f)| f.name == name).unwrap();
            sums[id]
        };
        assert_eq!(of("a"), 2);
        assert_eq!(of("b"), 1);
        assert_eq!(of("c"), 0);
    }
}
