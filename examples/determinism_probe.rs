//! Determinism smoke probe for CI.
//!
//! Runs a small federated simulation with `cfg.threads = 0` (i.e. the
//! `FEDWCM_THREADS` env var decides the worker count) and prints every
//! round metric at full bit precision. CI runs this twice — with
//! `FEDWCM_THREADS=1` and `FEDWCM_THREADS=4` — and diffs the output:
//! any byte of difference means the parallel hot path stopped being
//! bitwise deterministic.

use fedwcm_algos::fedavg::FedAvg;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_fl::{FlConfig, Simulation};
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;

fn main() {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 40, 0.5);
    let train = spec.generate_train(&counts, 31);
    let test = spec.generate_test(31);

    let mut cfg = FlConfig::default_sim();
    cfg.clients = 6;
    cfg.participation = 0.5;
    cfg.rounds = 4;
    cfg.eval_every = 2;
    cfg.threads = 0; // defer to FEDWCM_THREADS

    let part = paper_partition(&train, cfg.clients, 0.5, cfg.seed);
    let views = part.views(&train);
    let sim = Simulation::new(
        cfg,
        &train,
        &test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(1234);
            mlp(64, &[32], 10, &mut rng)
        }),
    );

    let history = sim.run(&mut FedAvg::new());
    for r in &history.records {
        println!(
            "round={} loss_bits={} norm_bits={:#018x} acc_bits={}",
            r.round,
            r.train_loss
                .map(|l| format!("{:#018x}", l.to_bits()))
                .unwrap_or_else(|| "-".into()),
            r.update_norm.to_bits(),
            r.test_acc
                .map(|a| format!("{:#018x}", a.to_bits()))
                .unwrap_or_else(|| "-".into()),
        );
    }
}
