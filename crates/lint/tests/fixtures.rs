//! Fixture tests: every lint rule demonstrated on known-good and
//! known-bad sources, including the tricky cases the lexer exists for
//! (`unsafe` inside a string literal, `// SAFETY:` separated by a blank
//! line, suppression markers without a reason).
//!
//! Fixtures are in-memory strings fed to [`lint_file`] under invented
//! workspace-relative paths — the path picks which crate-scoped rules
//! apply (`crates/algos/...` is a library crate outside the doc set,
//! `crates/tensor/...` adds doc-coverage, `crates/experiments/...` is
//! exempt from the determinism/panic families).

use fedwcm_lint::{
    lint_file, lint_sources, lint_workspace, Diagnostic, LintConfig, ALL_RULES, MARKER_RULE,
};

/// Lint one fixture with every rule enabled.
fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_file(path, src, &LintConfig::all())
}

/// Lint a set of fixtures together, so the cross-file rules see one
/// call graph spanning all of them.
fn lint_many(files: &[(&str, &str)]) -> Vec<Diagnostic> {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    lint_sources(&sources, &LintConfig::all())
}

/// The rule names that fired, in output order.
fn fired(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

/// A library-crate path outside the doc-coverage set, so fixtures can
/// use undocumented `pub fn` scaffolding without doc noise.
const LIB: &str = "crates/algos/src/fixture.rs";

// ---------------------------------------------------------------- unsafe

#[test]
fn unsafe_without_safety_comment_fires() {
    let d = lint(LIB, "pub fn f(p: *mut u8) { unsafe { *p = 0; } }\n");
    assert_eq!(fired(&d), ["unsafe-safety"]);
    assert_eq!(d[0].line, 1);
}

#[test]
fn safety_comment_on_same_line_passes() {
    let src = "pub fn f(p: *mut u8) { /* SAFETY: p is valid */ unsafe { *p = 0; } }\n";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn safety_block_directly_above_passes() {
    let src = "\
// SAFETY: caller guarantees exclusive access to `p`
// for the duration of the call.
unsafe fn f(p: *mut u8) { *p = 0; }
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn safety_separated_by_blank_line_fires() {
    // The association is broken by the blank line: a drive-by edit could
    // have inserted unrelated code there, so adjacency is required.
    let src = "\
// SAFETY: caller guarantees exclusive access.

unsafe fn f(p: *mut u8) { *p = 0; }
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["unsafe-safety"]);
    assert_eq!(d[0].line, 3);
}

#[test]
fn safety_separated_by_code_line_fires() {
    let src = "\
// SAFETY: this comment belongs to g, not f.
fn g() {}
unsafe fn f(p: *mut u8) { *p = 0; }
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["unsafe-safety"]);
    assert_eq!(d[0].line, 3);
}

#[test]
fn attribute_between_safety_and_unsafe_passes() {
    let src = "\
// SAFETY: repr(C) layout is part of the contract.
#[allow(dead_code)]
unsafe fn f() {}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn unsafe_inside_string_literal_is_ignored() {
    let src = "pub fn msg() -> &'static str { \"this unsafe is just text\" }\n";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn unsafe_inside_raw_string_and_comment_is_ignored() {
    let src = "\
// unsafe in a comment is fine
pub fn msg() -> &'static str { r#\"unsafe { *p }\"# }
";
    assert!(lint(LIB, src).is_empty());
}

// ----------------------------------------------------------- determinism

#[test]
fn hashmap_and_hashset_fire_in_library_crates() {
    let src = "\
use std::collections::HashMap;
pub fn f() { let _m: HashMap<u32, u32> = HashMap::new(); }
pub fn g() { let _s = std::collections::HashSet::<u32>::new(); }
";
    let d = lint(LIB, src);
    assert!(d.len() >= 3, "use + two bodies: {d:?}");
    assert!(d.iter().all(|x| x.rule == "determinism-collections"));
}

#[test]
fn hashmap_allowed_in_dev_crates() {
    let src =
        "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    assert!(lint("crates/experiments/src/fixture.rs", src).is_empty());
}

#[test]
fn hashmap_allowed_in_test_code() {
    let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _m: HashMap<u32, u32> = HashMap::new(); }
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn wall_clock_reads_fire() {
    let src = "\
pub fn f() -> std::time::Instant { std::time::Instant::now() }
pub fn g() -> std::time::SystemTime { std::time::SystemTime::now() }
";
    let d = lint(LIB, src);
    // Each line mentions `std::time` (std-time rule, deduped per line)
    // AND performs a wall-clock read (time rule).
    assert_eq!(
        fired(&d),
        [
            "determinism-std-time",
            "determinism-time",
            "determinism-std-time",
            "determinism-time",
        ]
    );
}

#[test]
fn std_time_import_fires_even_without_a_clock_read() {
    // With fedwcm-trace in the workspace there is no reason for library
    // code to even name std::time types — Duration included.
    let d = lint(LIB, "use std::time::Duration;\n");
    assert_eq!(fired(&d), ["determinism-std-time"]);
    assert_eq!(d[0].line, 1);
}

#[test]
fn std_time_reported_once_per_line() {
    let src = "pub fn f() -> std::time::Duration { std::time::Duration::from_secs(1) }\n";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["determinism-std-time"]);
}

#[test]
fn std_time_allowed_in_blessed_clock_module() {
    let src = "\
/// Fixture standing in for the real clock module.
pub fn base() -> std::time::Duration { std::time::Duration::ZERO }
";
    let d = lint("crates/trace/src/clock.rs", src);
    assert!(
        d.iter().all(|x| x.rule != "determinism-std-time"),
        "blessed clock module must allow std::time: {d:?}"
    );
}

#[test]
fn std_time_allowed_in_test_code() {
    let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    use std::time::Duration;
    #[test]
    fn t() { let _ = Duration::from_millis(1); }
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn std_time_allowed_in_dev_crates() {
    let src = "use std::time::Instant;\npub fn t0() -> Instant { Instant::now() }\n";
    assert!(lint("crates/experiments/src/fixture.rs", src).is_empty());
}

#[test]
fn env_read_fires_outside_blessed_config() {
    let d = lint(LIB, "pub fn f() -> bool { std::env::var(\"X\").is_ok() }\n");
    assert_eq!(fired(&d), ["determinism-env"]);
}

#[test]
fn env_read_allowed_in_blessed_config_module() {
    let src = "pub fn threads() -> bool { std::env::var(\"FEDWCM_THREADS\").is_ok() }\n";
    let d = lint("crates/fl/src/config.rs", src);
    assert!(
        d.iter().all(|x| x.rule != "determinism-env"),
        "blessed file must allow env reads: {d:?}"
    );
}

#[test]
fn available_parallelism_fires_outside_parallel_crate() {
    let src = "pub fn n() -> usize { std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1) }\n";
    let d = lint(LIB, src);
    assert!(d.iter().any(|x| x.rule == "determinism-threads"), "{d:?}");
}

#[test]
fn available_parallelism_allowed_in_parallel_crate() {
    let src = "\
/// Worker count.
pub fn n() -> usize { std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1) }
";
    let d = lint("crates/parallel/src/fixture.rs", src);
    assert!(d.iter().all(|x| x.rule != "determinism-threads"), "{d:?}");
}

// --------------------------------------------------------- panic-freedom

#[test]
fn unwrap_and_expect_fire() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 { o.unwrap() }
pub fn g(r: Result<u32, ()>) -> u32 { r.expect(\"msg\") }
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["panic-freedom", "panic-freedom"]);
}

#[test]
fn unwrap_on_tuple_field_fires() {
    // Exercises number lexing: `x.0.unwrap()` must tokenize as
    // `x . 0 . unwrap ( )`, not swallow `.unwrap` into a float literal.
    let d = lint(LIB, "pub fn f(x: (Option<u32>,)) -> u32 { x.0.unwrap() }\n");
    assert_eq!(fired(&d), ["panic-freedom"]);
}

#[test]
fn panic_family_macros_fire() {
    let src = "\
pub fn f() { panic!(\"boom\") }
pub fn g() { unimplemented!() }
pub fn h() { todo!() }
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["panic-freedom"; 3]);
}

#[test]
fn total_alternatives_pass() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }
pub fn g(o: Option<u32>) -> u32 { o.unwrap_or_else(|| 1) }
pub fn h(o: Option<u32>) -> u32 { o.unwrap_or_default() }
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn unwrap_in_test_module_passes() {
    let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!(\"test-only\"); }
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn unwrap_in_test_fn_outside_module_passes() {
    let src = "\
pub fn f() {}
#[test]
fn t() {
    Some(1).unwrap();
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn panic_inside_string_literal_passes() {
    let src = "pub fn f() -> &'static str { \"don't panic!(even here)\" }\n";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn unwrap_in_dev_crate_passes() {
    let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    assert!(lint("crates/experiments/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------- doc-coverage

#[test]
fn undocumented_pub_item_fires_in_doc_crates() {
    let src = "\
pub fn undocd() {}
pub struct Undocd;
";
    let d = lint("crates/tensor/src/fixture.rs", src);
    assert_eq!(fired(&d), ["doc-coverage", "doc-coverage"]);
}

#[test]
fn documented_pub_items_pass() {
    let src = "\
/// Line-doc'd.
pub fn a() {}
/** Block-doc'd. */
pub struct B;
#[doc = \"Attribute-doc'd.\"]
pub enum C { X }
/// Docs survive intervening attributes.
#[derive(Clone)]
pub struct D;
";
    assert!(lint("crates/tensor/src/fixture.rs", src).is_empty());
}

#[test]
fn restricted_visibility_and_reexports_exempt() {
    let src = "\
pub(crate) fn internal() {}
pub(super) fn upward() {}
pub use std::cmp::Ordering;
";
    assert!(lint("crates/tensor/src/fixture.rs", src).is_empty());
}

#[test]
fn out_of_line_pub_mod_exempt_inline_checked() {
    let src = "\
pub mod declared_elsewhere;
pub mod inline_needs_docs { }
";
    let d = lint("crates/tensor/src/fixture.rs", src);
    assert_eq!(fired(&d), ["doc-coverage"]);
    assert_eq!(d[0].line, 2);
}

#[test]
fn doc_coverage_limited_to_doc_crates() {
    assert!(lint(LIB, "pub fn undocd() {}\n").is_empty());
}

// --------------------------------------------------- suppression markers

#[test]
fn suppression_with_reason_silences_the_finding() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 {
    // lint:allow(panic-freedom) fixture contract: o is always Some here.
    o.unwrap()
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn trailing_suppression_on_the_same_line_works() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 {
    o.unwrap() // lint:allow(panic-freedom) fixture contract: never None.
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn suppression_scope_skips_blank_and_comment_lines() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 {
    // lint:allow(panic-freedom) fixture contract: never None.

    // an unrelated comment between marker and code
    o.unwrap()
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn suppression_without_reason_is_a_hard_error() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 {
    // lint:allow(panic-freedom)
    o.unwrap()
}
";
    let d = lint(LIB, src);
    // The reasonless marker is rejected AND the finding still fires
    // (sorted by line: the marker sits above the unwrap).
    assert_eq!(fired(&d), [MARKER_RULE, "panic-freedom"]);
    assert!(d[0].message.contains("lacks a reason"), "{}", d[0].message);
}

#[test]
fn one_word_reason_is_rejected() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 {
    // lint:allow(panic-freedom) contract
    o.unwrap()
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), [MARKER_RULE, "panic-freedom"]);
}

#[test]
fn unknown_rule_in_marker_is_rejected() {
    let src = "\
pub fn f() {
    // lint:allow(panic-fredom) typo'd rule name, two words.
    let _x = 1;
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), [MARKER_RULE]);
    assert!(d[0].message.contains("unknown rule"), "{}", d[0].message);
}

#[test]
fn unused_suppression_is_flagged() {
    let src = "\
pub fn f() -> u32 {
    // lint:allow(panic-freedom) nothing here actually panics.
    41 + 1
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), [MARKER_RULE]);
    assert!(
        d[0].message.contains("matches no diagnostic"),
        "{}",
        d[0].message
    );
}

#[test]
fn unused_suppression_not_flagged_when_rule_disabled() {
    let src = "\
pub fn f() -> u32 {
    // lint:allow(panic-freedom) kept for when the rule is re-enabled.
    41 + 1
}
";
    let mut cfg = LintConfig::all();
    cfg.disable("panic-freedom").unwrap();
    assert!(lint_file(LIB, src, &cfg).is_empty());
}

#[test]
fn marker_syntax_in_doc_comments_is_prose_not_a_marker() {
    let src = "\
/// Suppress with `lint:allow(panic-freedom)` and a reason.
pub fn f() {}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn suppression_does_not_leak_to_other_rules() {
    let src = "\
pub fn f() -> std::time::Instant {
    // lint:allow(panic-freedom) wrong rule: does not cover the time read.
    std::time::Instant::now()
}
";
    let d = lint(LIB, src);
    // determinism-time (and both lines' std-time mentions) still fire;
    // the marker is unused, hence flagged. Sorted by line: std-time on
    // line 1, the marker on line 2, std-time + time on line 3.
    assert_eq!(
        fired(&d),
        [
            "determinism-std-time",
            MARKER_RULE,
            "determinism-std-time",
            "determinism-time",
        ]
    );
}

// ------------------------------------------------------- rule toggling

#[test]
fn only_selected_rules_run() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 { o.unwrap() }
pub fn g() -> std::time::Instant { std::time::Instant::now() }
";
    let cfg = LintConfig::only(["determinism-time"]).unwrap();
    let d = lint_file(LIB, src, &cfg);
    assert_eq!(fired(&d), ["determinism-time"]);
}

#[test]
fn disabled_rule_does_not_fire() {
    let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let mut cfg = LintConfig::all();
    cfg.disable("panic-freedom").unwrap();
    assert!(lint_file(LIB, src, &cfg).is_empty());
}

#[test]
fn unknown_rule_names_rejected_by_config() {
    assert!(LintConfig::only(["no-such-rule"]).is_err());
    assert!(LintConfig::all().disable("no-such-rule").is_err());
}

#[test]
fn every_declared_rule_is_exercised_by_these_fixtures() {
    // Meta-check: the fixture set above demonstrates each rule firing at
    // least once, so no rule can silently go dead.
    let fixtures: &[(&str, &str)] = &[
        (LIB, "pub fn f(p: *mut u8) { unsafe { *p = 0; } }\n"),
        (LIB, "use std::collections::HashMap;\n"),
        (LIB, "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n"),
        (LIB, "pub fn f() -> bool { std::env::var(\"X\").is_ok() }\n"),
        (
            LIB,
            "pub fn f() -> usize { std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1) }\n",
        ),
        (LIB, "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n"),
        ("crates/tensor/src/fixture.rs", "pub fn undocd() {}\n"),
        (
            LIB,
            "pub fn s(xs: &[f32]) -> f32 {\n    let mut t = 0.0f32;\n    parallel_for_each(xs, |x: &f32| { t += *x; });\n    t\n}\n",
        ),
        (
            "crates/fl/src/fixture.rs",
            "fn m(seed: u64) -> u64 {\n    let mut a = Xoshiro256pp::stream(seed, &[0x1111]);\n    let mut b = Xoshiro256pp::stream(seed, &[0x2222]);\n    a.next_u64() ^ b.next_u64()\n}\n",
        ),
        (
            LIB,
            "pub fn twice(m: &Mutex<u32>) {\n    let _g1 = lock_recover(m);\n    let _g2 = lock_recover(m);\n}\n",
        ),
        (
            "crates/fl/src/fixture.rs",
            "fn shrink(n: u64) -> u32 { n as u32 }\n",
        ),
        (
            "crates/fl/src/fixture.rs",
            "impl Snap {\n    fn to_bytes(&self) -> Vec<u8> {\n        let mut out = Vec::new();\n        put_u32(&mut out, self.a);\n        put_u64(&mut out, self.b);\n        out\n    }\n    fn from_bytes(bytes: &[u8]) -> Snap {\n        let mut r = ByteReader::new(bytes);\n        Snap { a: r.u32(), b: r.u32() as u64 }\n    }\n}\n",
        ),
        (
            "crates/fl/src/fixture.rs",
            "fn aggregate(received: Vec<ReceivedUpdate>) -> RoundInput {\n    let updates = received;\n    RoundInput { updates: updates, round: 0 }\n}\n",
        ),
        (
            LIB,
            "pub fn emit(t: &Tracer) { t.span(\"round\", vec![]); }\n",
        ),
        (
            LIB,
            "pub fn g(xs: &[u32]) -> u64 {\n    let mut total = 0u64;\n    parallel_for_each(xs, |x: &u32| { total += u64::from(*x); });\n    total\n}\n",
        ),
        (
            LIB,
            "pub fn h(xs: &[f32], shared: &mut [f32]) {\n    parallel_for_each(xs, |_x: &f32| { shared[0] = 1.0; });\n}\n",
        ),
        (
            LIB,
            "pub struct W(*mut u8);\nunsafe impl Send for W {}\n",
        ),
    ];
    let mut seen: std::collections::BTreeSet<String> = Default::default();
    for (path, src) in fixtures {
        for d in lint(path, src) {
            seen.insert(d.rule);
        }
    }
    for rule in ALL_RULES {
        assert!(seen.contains(*rule), "rule '{rule}' never fired");
    }
}

// ------------------------------------------- float-reduction-order (v2)

#[test]
fn captured_float_accumulation_in_parallel_closure_fires() {
    let src = "\
pub fn sum_bad(xs: &[f32]) -> f32 {
    let mut total = 0.0f32;
    parallel_for_each(xs, |x: &f32| {
        total += *x;
    });
    total
}
";
    let d = lint(LIB, src);
    // The write is both order-sensitive (float) and a shared-state
    // escape, so the determinism and concurrency families each fire.
    assert_eq!(
        fired(&d),
        ["float-reduction-order", "parallel-escape-capture"]
    );
    assert_eq!(d[0].line, 4);
    assert!(d[0].message.contains("total"), "{}", d[0].message);
}

#[test]
fn cross_file_call_to_float_accumulator_fires() {
    // The closure itself looks innocent; the accumulation hides in a
    // helper in ANOTHER file, reachable only through the call graph.
    let helper = "\
fn add_into(acc: &mut f32, v: f32) {
    *acc += v;
}
";
    let caller = "\
pub fn reduce_bad(xs: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    parallel_for_each(xs, |x: &f32| add_into(&mut acc, *x));
    acc
}
";
    let d = lint_many(&[("crates/fl/src/fixture_helper.rs", helper), (LIB, caller)]);
    // `&mut acc` escaping into the helper is also a captured-state
    // write, so the concurrency family fires alongside.
    assert_eq!(
        fired(&d),
        ["float-reduction-order", "parallel-escape-capture"]
    );
    assert!(d[0].message.contains("add_into"), "{}", d[0].message);
}

#[test]
fn index_ordered_fold_after_parallel_map_passes() {
    // The blessed pattern: per-item values from the workers, combined
    // sequentially on the caller thread.
    let src = "\
pub fn sum_good(xs: &[f32]) -> f32 {
    let parts = parallel_map(xs, |x: &f32| *x * 2.0);
    let mut total = 0.0f32;
    for p in parts {
        total += p;
    }
    total
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn map_reduce_fold_closure_is_exempt() {
    // parallel_map_reduce's trailing closure is its caller-thread
    // index-ordered fold: accumulating there is the whole point.
    let src = "\
pub fn mr_good(xs: &[f32]) -> f32 {
    let mut total = 0.0f32;
    parallel_map_reduce(xs, |x: &f32| *x, |v: f32| { total += v; });
    total
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn integer_accumulation_is_order_safe_but_still_a_race() {
    // Integer addition is associative — order cannot change the bits,
    // so `float-reduction-order` stays quiet. The unsynchronized write
    // to captured state is still a data race, which the concurrency
    // family catches.
    let src = "\
pub fn count_bad_order_but_int(xs: &[u32]) -> u64 {
    let mut total = 0u64;
    parallel_for_each(xs, |x: &u32| {
        total += u64::from(*x);
    });
    total
}
";
    assert_eq!(fired(&lint(LIB, src)), ["parallel-escape-capture"]);
}

#[test]
fn blessed_reduce_crates_are_exempt_from_float_order() {
    let src = "\
/// The blessed index-ordered reducer itself.
pub fn reduce_impl(xs: &[f32]) -> f32 {
    let mut total = 0.0f32;
    parallel_for_each(xs, |x: &f32| {
        total += *x;
    });
    total
}
";
    assert!(lint("crates/parallel/src/fixture.rs", src).is_empty());
}

// --------------------------------------------- rng-stream-hygiene (v2)

#[test]
fn drawing_from_two_streams_in_one_function_fires() {
    let src = "\
fn mixed(seed: u64) -> u64 {
    let mut a = Xoshiro256pp::stream(seed, &[0x1111]);
    let mut b = Xoshiro256pp::stream(seed, &[0x2222]);
    a.next_u64() ^ b.next_u64()
}
";
    let d = lint("crates/fl/src/fixture.rs", src);
    assert_eq!(fired(&d), ["rng-stream-hygiene"]);
    assert!(
        d[0].message.contains("0x1111") && d[0].message.contains("0x2222"),
        "{}",
        d[0].message
    );
}

#[test]
fn stream_crossing_unaudited_crate_boundary_fires() {
    // faults → he is not an audited hand-off: the fault stream must
    // never feed the crypto crate.
    let sink = "\
pub fn consume(rng: &mut Xoshiro256pp) -> u64 {
    rng.next_u64()
}
";
    let leak = "\
const STREAM_FAULT: u64 = 0xFA17;
fn leak(seed: u64) -> u64 {
    let mut rng = Xoshiro256pp::stream(seed, &[STREAM_FAULT]);
    consume(&mut rng)
}
";
    let d = lint_many(&[
        ("crates/he/src/fixture_sink.rs", sink),
        ("crates/faults/src/fixture.rs", leak),
    ]);
    assert_eq!(fired(&d), ["rng-stream-hygiene"]);
    assert!(d[0].message.contains("`faults` → `he`"), "{}", d[0].message);
    assert!(d[0].message.contains("STREAM_FAULT"), "{}", d[0].message);
}

#[test]
fn allowlisted_boundary_hand_off_passes() {
    // fl → data is the audited sampler hand-off.
    let sink = "\
pub fn consume(rng: &mut Xoshiro256pp) -> u64 {
    rng.next_u64()
}
";
    let ok = "\
fn hand_off(seed: u64) -> u64 {
    let mut rng = Xoshiro256pp::stream(seed, &[0xC11E]);
    consume(&mut rng)
}
";
    let d = lint_many(&[
        ("crates/data/src/fixture_sink.rs", sink),
        ("crates/fl/src/fixture.rs", ok),
    ]);
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn generic_helper_drawing_one_param_is_not_mixing() {
    // Two differently-labelled callers taint the helper's parameter
    // with both labels — but per invocation it sees ONE stream, so the
    // helper must stay clean.
    let src = "\
pub fn helper(rng: &mut Xoshiro256pp) -> u64 {
    rng.next_u64()
}
pub fn from_training(seed: u64) -> u64 {
    let mut r = Xoshiro256pp::stream(seed, &[0xAAAA]);
    helper(&mut r)
}
pub fn from_sampling(seed: u64) -> u64 {
    let mut r = Xoshiro256pp::stream(seed, &[0xBBBB]);
    helper(&mut r)
}
";
    assert!(lint(LIB, src).is_empty());
}

// ------------------------------------------------------- lock-order (v2)

#[test]
fn inverted_lock_acquisition_order_is_a_cycle() {
    let src = "\
pub struct Shared {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}
pub fn ab(s: &Shared) {
    let _ga = lock_recover(&s.a);
    let _gb = lock_recover(&s.b);
}
pub fn ba(s: &Shared) {
    let _gb = lock_recover(&s.b);
    let _ga = lock_recover(&s.a);
}
";
    let d = lint(LIB, src);
    // Both edges of the cycle are reported, one per witness site.
    assert_eq!(fired(&d), ["lock-order", "lock-order"]);
    assert!(d[0].message.contains("cycle"), "{}", d[0].message);
}

#[test]
fn reacquiring_a_held_lock_is_a_self_deadlock() {
    let src = "\
pub fn twice(m: &Mutex<u32>) {
    let _g1 = lock_recover(m);
    let _g2 = lock_recover(m);
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["lock-order"]);
    assert!(d[0].message.contains("self-deadlock"), "{}", d[0].message);
}

#[test]
fn cycle_through_a_callee_is_found_interprocedurally() {
    // f holds `a` and calls g, which takes `b`; h takes them in the
    // opposite order. The inversion is only visible via the call graph.
    let src = "\
pub struct Shared {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}
pub fn f(s: &Shared) {
    let _ga = lock_recover(&s.a);
    g(s);
}
pub fn g(s: &Shared) {
    let _gb = lock_recover(&s.b);
}
pub fn h(s: &Shared) {
    let _gb = lock_recover(&s.b);
    let _ga = lock_recover(&s.a);
}
";
    let d = lint(LIB, src);
    assert!(
        !d.is_empty() && d.iter().all(|x| x.rule == "lock-order"),
        "{d:?}"
    );
}

#[test]
fn consistent_lock_order_passes() {
    let src = "\
pub struct Shared {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}
pub fn first(s: &Shared) {
    let _ga = lock_recover(&s.a);
    let _gb = lock_recover(&s.b);
}
pub fn second(s: &Shared) {
    let _ga = lock_recover(&s.a);
    let _gb = lock_recover(&s.b);
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn dropping_a_guard_releases_it_for_ordering_purposes() {
    // Never holds two locks at once, in either function — no edges, no
    // cycle, even though the textual order is inverted.
    let src = "\
pub struct Shared {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}
pub fn forward(s: &Shared) {
    let ga = lock_recover(&s.a);
    drop(ga);
    let _gb = lock_recover(&s.b);
}
pub fn backward(s: &Shared) {
    let gb = lock_recover(&s.b);
    drop(gb);
    let _ga = lock_recover(&s.a);
}
";
    assert!(lint(LIB, src).is_empty());
}

// --------------------------------------------------- cast-soundness (v2)

#[test]
fn narrowing_cast_in_serializing_crate_fires() {
    let d = lint(
        "crates/fl/src/fixture.rs",
        "fn shrink(n: u64) -> u32 { n as u32 }\n",
    );
    assert_eq!(fired(&d), ["cast-soundness"]);
    assert!(d[0].message.contains("u64 as u32"), "{}", d[0].message);
}

#[test]
fn sign_discarding_cast_fires() {
    let d = lint(
        "crates/he/src/fixture.rs",
        "pub fn sign(x: i64) -> u64 { x as u64 }\n",
    );
    assert_eq!(fired(&d), ["cast-soundness"]);
}

#[test]
fn unchecked_byte_counter_arithmetic_fires() {
    let src = "\
fn grow(total_bytes: u64, n: u64) -> u64 {
    total_bytes * n
}
";
    let d = lint("crates/trace/src/fixture.rs", src);
    assert_eq!(fired(&d), ["cast-soundness"]);
    assert!(d[0].message.contains("saturating_mul"), "{}", d[0].message);
}

#[test]
fn widening_and_checked_forms_pass() {
    let src = "\
fn widen(n: u32) -> u64 {
    n as u64
}
fn avg(total_bytes: u64, n: u64) -> f64 {
    total_bytes as f64 / n as f64
}
fn safe_total(total_bytes: u64, n: u64) -> u64 {
    total_bytes.saturating_mul(n)
}
";
    assert!(lint("crates/fl/src/fixture.rs", src).is_empty());
}

#[test]
fn cast_soundness_limited_to_serializing_crates() {
    assert!(lint(LIB, "pub fn shrink(n: u64) -> u32 { n as u32 }\n").is_empty());
}

#[test]
fn suppressed_lossy_cast_with_reason_passes() {
    let src = "\
pub fn low_bits(x: u64) -> u32 {
    // lint:allow(cast-soundness) deliberate truncation to the low word.
    x as u32
}
";
    assert!(lint("crates/he/src/fixture.rs", src).is_empty());
}

// ----------------------------------- suppression scanning is lexer-aware

#[test]
fn marker_inside_a_string_literal_does_not_suppress() {
    // The marker text sits on the SAME line as the violation, but
    // inside a string literal — a text-scanning suppressor would be
    // fooled; the lexer-aware one must not be.
    let src = "\
pub fn f(o: Option<u32>) -> (u32, &'static str) {
    (o.unwrap(), \"// lint:allow(panic-freedom) not a real marker\")
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["panic-freedom"]);
}

#[test]
fn marker_inside_a_doc_comment_does_not_suppress() {
    let src = "\
/// To silence this, write `// lint:allow(panic-freedom) reason here`.
pub fn f(o: Option<u32>) -> u32 {
    o.unwrap()
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["panic-freedom"]);
}

// ------------------------------------------------------ whole workspace

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

#[test]
fn real_workspace_is_clean() {
    // The repo must satisfy its own gates: zero diagnostics end to end.
    let run = lint_workspace(&workspace_root(), &LintConfig::all()).expect("workspace read");
    assert!(
        run.diags.is_empty(),
        "workspace has lint findings:\n{}",
        run.diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn full_workspace_run_fits_the_time_budget() {
    // Every source file is lexed and parsed exactly once and shared by
    // all twelve rules; a full-workspace pass must stay interactive.
    // The budget is ~50× the measured debug-profile time, so it only
    // trips on structural regressions (re-lexing per rule, a quadratic
    // call-graph pass), not on CI jitter.
    let root = workspace_root();
    let started = std::time::Instant::now();
    let run = lint_workspace(&root, &LintConfig::all()).expect("workspace read");
    let elapsed = started.elapsed();
    assert!(
        run.files >= 100,
        "expected a real workspace, saw {} files",
        run.files
    );
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "full-workspace lint took {elapsed:?} over {} files — the shared \
         lex+parse budget regressed",
        run.files
    );
}

#[test]
fn workspace_findings_are_byte_stable_across_runs() {
    // Two consecutive runs over the same tree must agree exactly —
    // this is what lets CI archive and diff the JSON artifact.
    let root = workspace_root();
    let a = lint_workspace(&root, &LintConfig::all()).expect("workspace read");
    let b = lint_workspace(&root, &LintConfig::all()).expect("workspace read");
    assert_eq!(a.files, b.files);
    let render =
        |r: &fedwcm_lint::LintRun| r.diags.iter().map(|d| d.to_string()).collect::<Vec<_>>();
    assert_eq!(render(&a), render(&b));
}

#[test]
fn transport_crate_is_fully_gated_not_blessed() {
    // The wire transport carries checksums and byte counters, so it
    // must sit inside every gate: the panic-freedom/determinism set
    // (LIB_CRATES), the rustdoc requirement (DOC_CRATES), and the
    // cast-soundness arithmetic checks — with no blanket blessing
    // letting its CRC or counter code skip them.
    use fedwcm_lint::{BLESSINGS, DOC_CRATES, LIB_CRATES};
    assert!(
        LIB_CRATES.contains(&"transport"),
        "transport must be a gated library crate"
    );
    assert!(
        DOC_CRATES.contains(&"transport"),
        "transport's public API must require rustdoc"
    );
    for b in BLESSINGS {
        assert!(
            !b.path.starts_with("crates/transport/"),
            "transport file `{}` must not be blessed for `{}`",
            b.path,
            b.rule
        );
    }

    // cast-soundness is live in the crate: an unchecked narrowing cast
    // under the transport path fires, instead of being silently exempt.
    let d = lint(
        "crates/transport/src/fixture.rs",
        "pub fn f(x: u64) -> u32 { x as u32 }\n",
    );
    assert!(
        fired(&d).contains(&"cast-soundness"),
        "cast-soundness must cover crates/transport, fired: {:?}",
        fired(&d)
    );
}

#[test]
fn obs_crate_is_fully_gated_not_blessed() {
    // The trace analyzer is the thing CI trusts to gate performance
    // regressions, so it gets no special treatment: full panic-freedom
    // and determinism (LIB_CRATES), rustdoc on every public item
    // (DOC_CRATES), cast-soundness on its tick arithmetic — and zero
    // blessed entries anywhere under its path.
    use fedwcm_lint::{BLESSINGS, DOC_CRATES, LIB_CRATES};
    assert!(
        LIB_CRATES.contains(&"obs"),
        "obs must be a gated library crate"
    );
    assert!(
        DOC_CRATES.contains(&"obs"),
        "obs's public API must require rustdoc"
    );
    for b in BLESSINGS {
        assert!(
            !b.path.starts_with("crates/obs/"),
            "obs file `{}` must not be blessed for `{}`",
            b.path,
            b.rule
        );
    }

    // The rule families are live in the crate, not just listed: an
    // unwrap and a lossy cast under the obs path both fire.
    let d = lint(
        "crates/obs/src/fixture.rs",
        "pub fn f(x: Option<u64>) -> u64 { x.unwrap() }\n",
    );
    assert!(
        fired(&d).contains(&"panic-freedom"),
        "panic-freedom must cover crates/obs, fired: {:?}",
        fired(&d)
    );
    let d = lint(
        "crates/obs/src/fixture.rs",
        "pub fn f(x: u64) -> u32 { x as u32 }\n",
    );
    assert!(
        fired(&d).contains(&"cast-soundness"),
        "cast-soundness must cover crates/obs, fired: {:?}",
        fired(&d)
    );
}

#[test]
fn cadence_event_loop_files_are_not_blessed() {
    // The event-driven cadence core must live under the full
    // determinism gates: no file of it may ever land on the blessing
    // table, which would let wall-clock or environment reads creep
    // into the aggregation path unnoticed.
    use fedwcm_lint::BLESSINGS;
    for f in [
        "crates/fl/src/engine.rs",
        "crates/fl/src/cadence.rs",
        "crates/fl/src/checkpoint.rs",
    ] {
        assert!(
            BLESSINGS.iter().all(|b| b.path != f),
            "{f} must not appear in the blessing table"
        );
    }

    // And the real files pass the determinism family outright: no
    // std::time, no environment reads, no iteration-order-dependent
    // collections, no ad-hoc thread counts.
    let root = workspace_root();
    let cfg = LintConfig::only([
        "determinism-collections",
        "determinism-time",
        "determinism-std-time",
        "determinism-env",
        "determinism-threads",
    ])
    .expect("known rules");
    for f in ["crates/fl/src/engine.rs", "crates/fl/src/cadence.rs"] {
        let src = std::fs::read_to_string(root.join(f)).expect("source readable");
        let d = lint_file(f, &src, &cfg);
        assert!(
            d.is_empty(),
            "{f} has determinism findings:\n{}",
            d.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

// ---------------------------------------------- checkpoint-symmetry (v3)

/// Only the named rule's findings, in output order.
fn fired_only<'a>(diags: &'a [Diagnostic], rule: &str) -> Vec<&'a Diagnostic> {
    diags.iter().filter(|d| d.rule == rule).collect()
}

const CKPT: &str = "crates/fl/src/fixture.rs";

#[test]
fn checkpoint_narrowed_width_fires() {
    let src = "\
impl Snap {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.a);
        put_u64(&mut out, self.b);
        out
    }
    fn from_bytes(bytes: &[u8]) -> Snap {
        let mut r = ByteReader::new(bytes);
        Snap { a: r.u32(), b: r.u32() as u64 }
    }
}
";
    let d = lint(CKPT, src);
    let ck = fired_only(&d, "checkpoint-symmetry");
    assert_eq!(ck.len(), 1);
    assert!(
        ck[0].message.contains("width/order mismatch"),
        "{}",
        ck[0].message
    );
    assert!(
        ck[0].message.contains("written as `u64` but read as `u32`"),
        "{}",
        ck[0].message
    );
}

#[test]
fn checkpoint_reordered_fields_fire() {
    let src = "\
impl Snap {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.version);
        put_f64(&mut out, self.alpha);
        out
    }
    fn from_bytes(bytes: &[u8]) -> Snap {
        let mut r = ByteReader::new(bytes);
        let alpha = r.f64();
        let version = r.u32();
        Snap { version: version, alpha: alpha }
    }
}
";
    let d = lint(CKPT, src);
    let ck = fired_only(&d, "checkpoint-symmetry");
    assert_eq!(ck.len(), 1);
    assert!(
        ck[0].message.contains("diverge at step 1"),
        "{}",
        ck[0].message
    );
}

#[test]
fn checkpoint_written_but_never_read_fires() {
    let src = "\
impl Snap {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.a);
        put_f32s(&mut out, &self.weights);
        out
    }
    fn from_bytes(bytes: &[u8]) -> Snap {
        let mut r = ByteReader::new(bytes);
        Snap { a: r.u32(), weights: Vec::new() }
    }
}
";
    let d = lint(CKPT, src);
    let ck = fired_only(&d, "checkpoint-symmetry");
    assert_eq!(ck.len(), 1);
    assert!(
        ck[0].message.contains("written but never read"),
        "{}",
        ck[0].message
    );
}

#[test]
fn checkpoint_loop_structure_mismatch_fires() {
    let src = "\
impl Snap {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.rows.len() as u32);
        for row in &self.rows {
            put_f32s(&mut out, row);
        }
        out
    }
    fn from_bytes(bytes: &[u8]) -> Snap {
        let mut r = ByteReader::new(bytes);
        let n = r.u32();
        let rows = vec![r.f32s()];
        Snap { n: n, rows: rows }
    }
}
";
    let d = lint(CKPT, src);
    let ck = fired_only(&d, "checkpoint-symmetry");
    assert_eq!(ck.len(), 1);
    assert!(
        ck[0].message.contains("loop structure mismatch"),
        "{}",
        ck[0].message
    );
}

#[test]
fn checkpoint_matching_pair_passes() {
    // Loops pair with loops, and a version gate's read arm lines up
    // with the unconditional write under the longest-branch rule.
    let src = "\
impl Snap {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.version);
        put_f64(&mut out, self.alpha);
        for row in &self.rows {
            put_f32s(&mut out, row);
        }
        out
    }
    fn from_bytes(bytes: &[u8]) -> Snap {
        let mut r = ByteReader::new(bytes);
        let version = r.u32();
        let alpha = if version >= 3 { r.f64() } else { 0.0 };
        let mut rows = Vec::new();
        for _ in 0..3 {
            rows.push(r.f32s());
        }
        Snap { version: version, alpha: alpha, rows: rows }
    }
}
";
    let d = lint(CKPT, src);
    assert!(fired_only(&d, "checkpoint-symmetry").is_empty());
}

#[test]
fn checkpoint_helper_pair_put_read_checked() {
    // Same-file `put_X`/`read_X` helpers are paired too, and resolved
    // helper calls splice the callee's sequence into the caller's.
    let src = "\
fn put_update(out: &mut Vec<u8>, u: &Update) {
    put_u64(out, u.client);
    put_f32s(out, &u.delta);
}
fn read_update(r: &mut ByteReader) -> Update {
    Update { client: r.u64(), delta: r.f32s(), extra: r.u32() }
}
";
    let d = lint(CKPT, src);
    let ck = fired_only(&d, "checkpoint-symmetry");
    assert_eq!(ck.len(), 1);
    assert!(
        ck[0].message.contains("read but never written"),
        "{}",
        ck[0].message
    );
}

#[test]
fn checkpoint_real_pair_is_clean_and_mutations_fire() {
    // The real FWCK v3 writer/reader pair passes as written…
    let root = workspace_root();
    let path = "crates/fl/src/checkpoint.rs";
    let src = std::fs::read_to_string(root.join(path)).expect("checkpoint.rs readable");
    let cfg = LintConfig::only(["checkpoint-symmetry"]).expect("known rule");
    assert!(
        lint_file(path, &src, &cfg).is_empty(),
        "real checkpoint pair must be symmetric"
    );

    // …a narrowed field width is a hard error… (`put_u64(` with the
    // paren so the mutation hits a call site, not the import list)
    let narrowed = src.replacen("put_u64(", "put_u32(", 1);
    assert_ne!(narrowed, src, "expected a put_u64 write to narrow");
    let d = lint_file(path, &narrowed, &cfg);
    assert!(
        d.iter().any(|x| x.message.contains("width/order mismatch")),
        "narrowed width must fire:\n{}",
        d.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );

    // …and so is a reordered write sequence: swap the first two
    // adjacent single-line primitive writes in the file.
    let lines: Vec<&str> = src.lines().collect();
    let is_put = |l: &str| {
        let t = l.trim_start();
        t.starts_with("put_") && t.ends_with(";")
    };
    let i = (0..lines.len() - 1)
        .find(|&i| is_put(lines[i]) && is_put(lines[i + 1]) && lines[i] != lines[i + 1])
        .expect("two adjacent primitive writes to swap");
    let mut swapped: Vec<&str> = lines.clone();
    swapped.swap(i, i + 1);
    let reordered = swapped.join("\n");
    let d = lint_file(path, &reordered, &cfg);
    assert!(
        !d.is_empty(),
        "reordered writes at lines {}-{} must fire",
        i + 1,
        i + 2
    );
}

// -------------------------------------------------- discount-once (v3)

#[test]
fn undiscounted_update_path_fires() {
    let src = "\
fn aggregate(received: Vec<ReceivedUpdate>) -> RoundInput {
    let updates = received;
    RoundInput { updates: updates, round: 0 }
}
";
    let d = lint(CKPT, src);
    let dc = fired_only(&d, "discount-once");
    assert_eq!(dc.len(), 1);
    assert!(
        dc[0].message.contains("without crossing"),
        "{}",
        dc[0].message
    );
}

#[test]
fn double_discount_regression_fires() {
    // The PR-6 class of bug: the buffered cadence discounting at
    // buffer time *and* the apply path discounting again.
    let src = "\
fn into_discounted(u: ReceivedUpdate) -> ReceivedUpdate {
    let mut u = u;
    let w = staleness_discount(u.staleness);
    for d in u.delta.iter_mut() {
        *d *= w;
    }
    u
}
fn flush(received: Vec<ReceivedUpdate>) -> RoundInput {
    let buffered = received.into_iter().map(into_discounted).collect::<Vec<_>>();
    let updates = buffered.into_iter().map(into_discounted).collect::<Vec<_>>();
    RoundInput { updates: updates, round: 0 }
}
";
    let d = lint(CKPT, src);
    let dc = fired_only(&d, "discount-once");
    assert_eq!(dc.len(), 1);
    assert!(
        dc[0].message.contains("more than once"),
        "{}",
        dc[0].message
    );
}

#[test]
fn single_discount_through_helper_passes() {
    let src = "\
fn into_discounted(u: ReceivedUpdate) -> ReceivedUpdate {
    let mut u = u;
    let w = staleness_discount(u.staleness);
    for d in u.delta.iter_mut() {
        *d *= w;
    }
    u
}
fn flush(received: Vec<ReceivedUpdate>) -> RoundInput {
    let updates = received.into_iter().map(into_discounted).collect::<Vec<_>>();
    RoundInput { updates: updates, round: 0 }
}
";
    let d = lint(CKPT, src);
    assert!(fired_only(&d, "discount-once").is_empty());
}

#[test]
fn staleness_guarded_discount_passes() {
    // `if staleness > 0 { discount }` — the guard proves the skipped
    // discount is the identity, so the then-branch counts as the path.
    let src = "\
fn into_discounted(u: ReceivedUpdate) -> ReceivedUpdate {
    let mut u = u;
    if u.staleness > 0 {
        let w = staleness_discount(u.staleness);
        for d in u.delta.iter_mut() {
            *d *= w;
        }
    }
    u
}
fn flush(received: Vec<ReceivedUpdate>) -> RoundInput {
    let updates = received.into_iter().map(into_discounted).collect::<Vec<_>>();
    RoundInput { updates: updates, round: 0 }
}
";
    let d = lint(CKPT, src);
    assert!(fired_only(&d, "discount-once").is_empty());
}

// ----------------------------------------------- metrics-registry (v3)

const REG: &str = "crates/trace/src/names.rs";
const REG_SRC: &str = "\
/// Span: one federated round.
pub const ROUND: &str = \"round\";
/// Gauge prefix: per-class accuracy.
pub const FL_ACC_CLASS_PREFIX: &str = \"fl.acc.class.\";
";

#[test]
fn literal_metric_name_fires() {
    let d = lint(
        LIB,
        "pub fn emit(t: &Tracer) { t.span(\"round\", vec![]); }\n",
    );
    let m = fired_only(&d, "metrics-registry");
    assert_eq!(m.len(), 1);
    assert!(
        m[0].message.contains("literal span/metric name"),
        "{}",
        m[0].message
    );
}

#[test]
fn unknown_constant_name_fires() {
    let user = "pub fn emit(t: &Tracer) { t.span(names::RUOND, vec![]); }\n";
    let d = lint_many(&[(REG, REG_SRC), (LIB, user)]);
    let m = fired_only(&d, "metrics-registry");
    assert!(
        m.iter()
            .any(|x| x.message.contains("`RUOND` does not resolve")),
        "typo'd constant must fire:\n{}",
        m.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn format_without_prefix_const_fires() {
    let user = "\
pub fn emit(reg: &MetricsRegistry, c: usize, a: f64) {
    reg.gauge_set(&format!(\"fl.acc.class.{c:02}\"), a);
}
pub fn ok(t: &Tracer) { t.span(names::ROUND, vec![]); }
";
    let d = lint_many(&[(REG, REG_SRC), (LIB, user)]);
    let m = fired_only(&d, "metrics-registry");
    assert!(
        m.iter()
            .any(|x| x.message.contains("dynamic span/metric name")),
        "prefix-baking format! must fire:\n{}",
        m.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn format_onto_registered_prefix_passes() {
    let user = "\
pub fn emit(reg: &MetricsRegistry, c: usize, a: f64) {
    reg.gauge_set(&format!(\"{}{c:02}\", names::FL_ACC_CLASS_PREFIX), a);
}
pub fn ok(t: &Tracer) { t.span(names::ROUND, vec![]); }
";
    let d = lint_many(&[(REG, REG_SRC), (LIB, user)]);
    assert!(fired_only(&d, "metrics-registry").is_empty());
}

#[test]
fn dead_registry_constant_fires() {
    // ROUND is referenced, FL_ACC_CLASS_PREFIX is not → dead taxonomy.
    let user = "pub fn emit(t: &Tracer) { t.span(names::ROUND, vec![]); }\n";
    let d = lint_many(&[(REG, REG_SRC), (LIB, user)]);
    let m = fired_only(&d, "metrics-registry");
    assert_eq!(m.len(), 1);
    assert!(
        m[0].message
            .contains("`FL_ACC_CLASS_PREFIX` is referenced by no code"),
        "{}",
        m[0].message
    );
}

#[test]
fn constant_names_pass() {
    let user = "\
pub fn emit(t: &Tracer, reg: &MetricsRegistry, c: usize) {
    t.span(names::ROUND, vec![]);
    reg.gauge_set(&format!(\"{}{c:02}\", names::FL_ACC_CLASS_PREFIX), 0.0);
}
";
    let d = lint_many(&[(REG, REG_SRC), (LIB, user)]);
    assert!(fired_only(&d, "metrics-registry").is_empty());
}

// ---------------------------------------------- parallel-escape (conc.)

#[test]
fn plain_assignment_to_captured_state_fires() {
    // Not a float, not a compound assignment — the determinism family
    // has nothing to say, but the write still races.
    let src = "\
pub fn find(xs: &[u32]) -> bool {
    let mut found = false;
    parallel_for_each(xs, |x: &u32| {
        if *x == 7 {
            found = true;
        }
    });
    found
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["parallel-escape-capture"]);
    assert!(d[0].message.contains("found"), "{}", d[0].message);
}

#[test]
fn mut_borrow_of_captured_state_fires() {
    // `&mut` handed to an *unresolvable* helper: the borrow itself is
    // the escape, no call-graph edge needed.
    let src = "\
pub fn collect(xs: &[u32], sink: &mut Vec<u32>) {
    parallel_for_each(xs, |x: &u32| {
        mystery_helper(&mut *sink, *x);
    });
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["parallel-escape-capture"]);
    assert!(d[0].message.contains("sink"), "{}", d[0].message);
}

#[test]
fn mutating_method_on_captured_receiver_fires() {
    let src = "\
pub fn gather(xs: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    parallel_for_each(xs, |x: &u32| {
        out.push(*x);
    });
    out
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["parallel-escape-capture"]);
    assert!(d[0].message.contains("out"), "{}", d[0].message);
}

#[test]
fn self_mutating_helper_via_callgraph_fires() {
    // The closure only calls a method; the mutation hides in the
    // method's body in another file, reachable through the call graph.
    let helper = "\
impl Counter {
    fn bump(&mut self) {
        self.n += 1;
    }
}
";
    let caller = "\
pub fn count(xs: &[u32], ctr: &mut Counter) {
    parallel_for_each(xs, |_x: &u32| ctr.bump());
}
";
    let d = lint_many(&[("crates/fl/src/fixture_helper.rs", helper), (LIB, caller)]);
    assert_eq!(fired(&d), ["parallel-escape-capture"]);
    assert!(d[0].message.contains("bump"), "{}", d[0].message);
}

#[test]
fn non_derived_index_write_fires_once() {
    // The index is a literal — every invocation writes the same slot.
    // The loop around it must not duplicate the finding (the dataflow
    // fixpoint re-interprets loop bodies).
    let src = "\
pub fn bad(xs: &[f32], shared: &mut [f32]) {
    parallel_for_each(xs, |_x: &f32| {
        for _pass in 0..3 {
            shared[0] = 1.0;
        }
    });
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["parallel-escape-index"]);
    assert!(d[0].message.contains("shared"), "{}", d[0].message);
}

#[test]
fn index_read_from_captured_state_fires() {
    // `off` is initialized from captured state, not from the closure's
    // index parameter — two invocations may collide.
    let src = "\
pub fn bad(xs: &[f32], shared: &mut [f32], base: usize) {
    parallel_for_each(xs, |_x: &f32| {
        let off = base + 1;
        shared[off] = 1.0;
    });
}
";
    assert_eq!(fired(&lint(LIB, src)), ["parallel-escape-index"]);
}

#[test]
fn index_derived_through_let_chain_passes() {
    let src = "\
pub fn good(n: usize, shared: &mut [f32]) {
    parallel_for_each(n, |i: usize| {
        let j = i * 2;
        let k = j + 1;
        shared[k] = 1.0;
    });
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn loop_binding_over_derived_range_passes() {
    // `for j in i..i + 4` — the binding inherits derivation from the
    // loop head, the matmul row-chunk idiom.
    let src = "\
pub fn good(n: usize, rows: &mut [f32]) {
    parallel_for_each(n, |i: usize| {
        for j in i..i + 4 {
            rows[j] = 0.0;
        }
    });
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn index_rule_is_not_blessed_in_the_parallel_crate() {
    // `parallel-escape-capture` blesses the core crates;
    // `parallel-escape-index` deliberately does not — even the core
    // must index by the closure's own parameter.
    let src = "\
/// Fixture: a literal-indexed write inside the blessed crate.
pub fn bad(xs: &[f32], shared: &mut [f32]) {
    parallel_for_each(xs, |_x: &f32| {
        shared[0] = 1.0;
    });
}
";
    assert_eq!(
        fired(&lint("crates/parallel/src/fixture.rs", src)),
        ["parallel-escape-index"]
    );
}

#[test]
fn send_sync_without_safety_comment_fires_both_rules() {
    let src = "\
pub struct W(*mut u8);
unsafe impl Send for W {}
";
    let d = lint(LIB, src);
    let mut rules = fired(&d);
    rules.sort_unstable();
    assert_eq!(rules, ["parallel-escape-send-sync", "unsafe-safety"]);
}

#[test]
fn send_sync_safety_without_disjointness_argument_fires() {
    // A SAFETY comment exists (unsafe-safety passes) but says nothing
    // about which owner touches which region.
    let src = "\
pub struct W(*mut u8);
// SAFETY: this wrapper is carefully used, trust the caller.
unsafe impl Sync for W {}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["parallel-escape-send-sync"]);
    assert!(d[0].message.contains("disjointness"), "{}", d[0].message);
}

#[test]
fn send_sync_safety_with_disjointness_argument_passes() {
    let src = "\
pub struct W(*mut u8);
// SAFETY: participants write pairwise-disjoint ranges; exactly one
// writer touches any element before the join publishes them.
unsafe impl Sync for W {}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn non_send_sync_unsafe_impl_is_exempt_from_disjointness() {
    // Other unsafe impls still need a SAFETY comment (unsafe-safety),
    // but the disjointness-vocabulary requirement is Send/Sync-only.
    let src = "\
pub struct W(*mut u8);
// SAFETY: the trait contract only requires a stable address.
unsafe impl Widget for W {}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn closure_local_state_is_not_an_escape() {
    // Locals, loop bindings, and nested-closure parameters are all
    // per-invocation state — no finding.
    let src = "\
pub fn good(n: usize) -> Vec<f32> {
    parallel_map(n, |i: usize| {
        let mut acc = 0.0f32;
        for j in 0..i {
            acc += j as f32;
        }
        let bump = |v: f32| v + 1.0;
        bump(acc)
    })
}
";
    assert!(lint(LIB, src).is_empty());
}

// ------------------------------------------------- taxonomy governance

#[test]
fn rule_info_matches_all_rules_in_order() {
    use fedwcm_lint::RULE_INFO;
    let ids: Vec<&str> = RULE_INFO.iter().map(|r| r.id).collect();
    assert_eq!(ids, ALL_RULES, "RULE_INFO must list ALL_RULES in order");
    for r in RULE_INFO {
        assert!(!r.family.is_empty(), "{}: empty family", r.id);
        assert_eq!(r.severity, "error", "{}: all rules are hard gates", r.id);
        assert!(
            !r.escape.is_empty(),
            "{}: every rule documents its escape hatch",
            r.id
        );
    }
}

#[test]
fn blessed_paths_exist_on_disk() {
    use fedwcm_lint::BLESSINGS;
    let root = workspace_root();
    for b in BLESSINGS {
        assert!(
            root.join(b.path).is_file(),
            "blessing for `{}` points at `{}`, which does not exist — \
             renaming a module must retire or update its blessing",
            b.rule,
            b.path
        );
        assert!(
            ALL_RULES.contains(&b.rule),
            "blessing names unknown rule `{}`",
            b.rule
        );
        assert!(
            !b.why.is_empty(),
            "blessing for `{}` needs a rationale",
            b.path
        );
    }
}

#[test]
fn taxonomy_is_documented() {
    // DESIGN.md §9 and the README rule table must mention every rule id
    // — `--rules` output, docs, and the engine cannot drift apart.
    let root = workspace_root();
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md");
    let readme = std::fs::read_to_string(root.join("README.md")).expect("README.md");
    for rule in ALL_RULES {
        assert!(
            design.contains(rule),
            "DESIGN.md does not mention rule `{rule}`"
        );
        assert!(
            readme.contains(rule),
            "README.md does not mention rule `{rule}`"
        );
    }
}
