//! Property-based tests for tensor kernels: algebraic identities that
//! must hold for arbitrary shapes and data.

use fedwcm_stats::Xoshiro256pp;
use fedwcm_tensor::im2col::{col2im, im2col, ConvGeom};
use fedwcm_tensor::matmul::{matmul, matmul_a_bt, matmul_at_b, matmul_naive};
use fedwcm_tensor::{ops, Tensor};
use proptest::prelude::*;

fn randn(shape: &[usize], seed: u64) -> Tensor {
    let mut rng = Xoshiro256pp::seed_from(seed);
    Tensor::randn(shape, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn blocked_matmul_matches_naive(m in 1usize..24, k in 1usize..40, n in 1usize..24, seed in any::<u64>()) {
        let a = randn(&[m, k], seed);
        let b = randn(&[k, n], seed.wrapping_add(1));
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-3);
    }

    #[test]
    fn transpose_variants_consistent(m in 1usize..16, k in 1usize..24, n in 1usize..16, seed in any::<u64>()) {
        let a = randn(&[m, k], seed);
        let b = randn(&[n, k], seed.wrapping_add(2));
        prop_assert!(matmul_a_bt(&a, &b).max_abs_diff(&matmul(&a, &b.transpose())) < 1e-3);
        let c = randn(&[m, n], seed.wrapping_add(3));
        prop_assert!(matmul_at_b(&a, &c).max_abs_diff(&matmul(&a.transpose(), &c)) < 1e-3);
    }

    #[test]
    fn matmul_distributes_over_addition(m in 1usize..10, k in 1usize..12, n in 1usize..10, seed in any::<u64>()) {
        let a = randn(&[m, k], seed);
        let b1 = randn(&[k, n], seed.wrapping_add(4));
        let b2 = randn(&[k, n], seed.wrapping_add(5));
        let mut sum = Tensor::zeros(&[k, n]);
        ops::add(b1.as_slice(), b2.as_slice(), sum.as_mut_slice());
        let lhs = matmul(&a, &sum);
        let mut rhs = matmul(&a, &b1);
        let r2 = matmul(&a, &b2);
        ops::axpy(1.0, r2.as_slice(), rhs.as_mut_slice());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn dot_cauchy_schwarz(n in 1usize..200, seed in any::<u64>()) {
        let x = randn(&[n], seed);
        let y = randn(&[n], seed.wrapping_add(6));
        let d = ops::dot(x.as_slice(), y.as_slice()).abs();
        let bound = ops::norm(x.as_slice()) * ops::norm(y.as_slice());
        prop_assert!(d <= bound * (1.0 + 1e-4) + 1e-5);
    }

    #[test]
    fn clip_norm_postcondition(n in 1usize..100, max_norm in 0.1f32..10.0, seed in any::<u64>()) {
        let mut x = randn(&[n], seed).into_vec();
        ops::clip_norm(&mut x, max_norm);
        prop_assert!(ops::norm(&x) <= max_norm * 1.001);
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..4, h in 3usize..9, w in 3usize..9,
        k in 1usize..4, pad in 0usize..2, seed in any::<u64>(),
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let geom = ConvGeom { c_in: c, h, w, kh: k, kw: k, stride: 1, pad };
        let x = randn(&[geom.input_len()], seed).into_vec();
        let y = randn(&[geom.patch_rows() * geom.patch_cols()], seed.wrapping_add(7)).into_vec();
        let mut ax = vec![0.0f32; y.len()];
        im2col(&geom, &x, &mut ax);
        let mut aty = vec![0.0f32; x.len()];
        col2im(&geom, &y, &mut aty);
        let lhs: f32 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn axpby_zero_cases(n in 1usize..50, seed in any::<u64>()) {
        let x = randn(&[n], seed).into_vec();
        let y0 = randn(&[n], seed.wrapping_add(8)).into_vec();
        // beta = 0 ⇒ y = alpha x
        let mut y = y0.clone();
        ops::axpby(2.0, &x, 0.0, &mut y);
        for (yi, xi) in y.iter().zip(&x) {
            prop_assert!((yi - 2.0 * xi).abs() < 1e-6);
        }
        // alpha = 0, beta = 1 ⇒ unchanged
        let mut y = y0.clone();
        ops::axpby(0.0, &x, 1.0, &mut y);
        prop_assert_eq!(y, y0);
    }
}
