//! Named counters, gauges, and fixed-bucket histograms, with a
//! deterministic [`MetricsSnapshot`] that merges into run history and
//! survives checkpoint round-trips.

use crate::{lock_recover, INVARIANTS_ENABLED};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// Why a histogram's bucket bounds were rejected at registration.
///
/// Returned by [`MetricsRegistry::try_observe`]; the non-fallible
/// [`MetricsRegistry::observe`] discards the observation on these (and
/// panics under `debug_invariants`), so a malformed bounds array can
/// never silently create a histogram whose buckets lie.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundsError {
    /// The bounds array was empty — a histogram needs at least one
    /// bucket boundary to be meaningful.
    Empty,
    /// A bound was NaN or infinite; `index` is its position.
    NonFinite {
        /// Index of the offending bound.
        index: usize,
    },
    /// Bounds were not strictly increasing; `index` is the first
    /// position whose bound is ≤ its predecessor.
    NotSorted {
        /// Index of the first out-of-order bound.
        index: usize,
    },
}

impl fmt::Display for BoundsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsError::Empty => write!(f, "histogram bounds must not be empty"),
            BoundsError::NonFinite { index } => {
                write!(f, "histogram bound at index {index} is not finite")
            }
            BoundsError::NotSorted { index } => write!(
                f,
                "histogram bounds must be strictly increasing (violated at index {index})"
            ),
        }
    }
}

impl std::error::Error for BoundsError {}

/// Validate histogram bucket bounds: non-empty, all finite, strictly
/// increasing. Every path that registers a histogram goes through this
/// check.
pub fn validate_bounds(bounds: &[f64]) -> Result<(), BoundsError> {
    if bounds.is_empty() {
        return Err(BoundsError::Empty);
    }
    for (index, b) in bounds.iter().enumerate() {
        if !b.is_finite() {
            return Err(BoundsError::NonFinite { index });
        }
        if index > 0 && bounds[index - 1] >= *b {
            return Err(BoundsError::NotSorted { index });
        }
    }
    Ok(())
}

/// A live fixed-bucket histogram (see [`HistogramSnapshot`] for the
/// frozen form and the bucket semantics).
#[derive(Clone, Debug)]
struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    nan_rejected: u64,
}

impl Histogram {
    /// Build a live histogram from *validated* bounds — callers run
    /// [`validate_bounds`] first, so construction itself cannot fail.
    fn new(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
            nan_rejected: 0,
        }
    }

    fn observe(&mut self, name: &str, v: f64) {
        if !v.is_finite() {
            if INVARIANTS_ENABLED {
                assert!(v.is_finite(), "non-finite observation in histogram {name}");
            }
            self.nan_rejected = self.nan_rejected.saturating_add(1);
            return;
        }
        // Inclusive upper bound: bucket i holds v <= bounds[i]; the
        // final slot is overflow.
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] = self.counts[idx].saturating_add(1);
        self.total = self.total.saturating_add(1);
        self.sum += v;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            total: self.total,
            sum: self.sum,
            nan_rejected: self.nan_rejected,
        }
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// Thread-safe registry of named metrics. Names are sorted in every
/// snapshot (a `BTreeMap` underneath), so snapshots of identical runs
/// compare equal field-for-field.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `v` to the named counter (created at 0 on first use),
    /// saturating at `u64::MAX`.
    pub fn counter_add(&self, name: &str, v: u64) {
        let mut m = lock_recover(&self.inner);
        match m.get_mut(name) {
            Some(Metric::Counter(c)) => *c = c.saturating_add(v),
            Some(other) => {
                if INVARIANTS_ENABLED {
                    assert!(
                        matches!(other, Metric::Counter(_)),
                        "metric {name} is not a counter"
                    );
                }
            }
            None => {
                m.insert(name.to_string(), Metric::Counter(v));
            }
        }
    }

    /// Set the named gauge to `v`. Non-finite values are ignored (and
    /// panic under `debug_invariants`).
    pub fn gauge_set(&self, name: &str, v: f64) {
        if !v.is_finite() {
            if INVARIANTS_ENABLED {
                assert!(v.is_finite(), "non-finite value for gauge {name}");
            }
            return;
        }
        let mut m = lock_recover(&self.inner);
        match m.get_mut(name) {
            Some(Metric::Gauge(g)) => *g = v,
            Some(other) => {
                if INVARIANTS_ENABLED {
                    assert!(
                        matches!(other, Metric::Gauge(_)),
                        "metric {name} is not a gauge"
                    );
                }
            }
            None => {
                m.insert(name.to_string(), Metric::Gauge(v));
            }
        }
    }

    /// Record `v` into the named histogram, created with `bounds` on
    /// first use (strictly increasing upper bucket bounds; values fall
    /// into the first bucket whose bound is `>= v`, or the overflow
    /// slot past the last bound). NaN/∞ observations increment the
    /// snapshot's `nan_rejected` count instead (and panic under
    /// `debug_invariants`).
    ///
    /// Malformed `bounds` at registration (empty, non-finite, or not
    /// strictly increasing) discard the observation — and panic under
    /// `debug_invariants`. Use [`MetricsRegistry::try_observe`] to see
    /// the typed [`BoundsError`].
    pub fn observe(&self, name: &str, bounds: &[f64], v: f64) {
        let res = self.try_observe(name, bounds, v);
        if INVARIANTS_ENABLED {
            assert!(res.is_ok(), "invalid bounds for histogram {name}: {res:?}");
        }
    }

    /// Fallible form of [`MetricsRegistry::observe`]: rejects malformed
    /// bucket bounds with a typed [`BoundsError`] at registration
    /// (first use of `name`) instead of silently accepting them, so a
    /// broken histogram can never be created. Bounds of an
    /// already-registered histogram are not re-validated — the bounds
    /// supplied at registration stay authoritative.
    pub fn try_observe(&self, name: &str, bounds: &[f64], v: f64) -> Result<(), BoundsError> {
        let mut m = lock_recover(&self.inner);
        match m.get_mut(name) {
            Some(Metric::Histogram(h)) => h.observe(name, v),
            Some(other) => {
                if INVARIANTS_ENABLED {
                    assert!(
                        matches!(other, Metric::Histogram(_)),
                        "metric {name} is not a histogram"
                    );
                }
            }
            None => {
                validate_bounds(bounds)?;
                let mut h = Histogram::new(bounds);
                h.observe(name, v);
                m.insert(name.to_string(), Metric::Histogram(h));
            }
        }
        Ok(())
    }

    /// Freeze the current state, entries sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = lock_recover(&self.inner);
        MetricsSnapshot {
            entries: m
                .iter()
                .map(|(name, metric)| MetricEntry {
                    name: name.clone(),
                    value: match metric {
                        Metric::Counter(c) => MetricValue::Counter(*c),
                        Metric::Gauge(g) => MetricValue::Gauge(*g),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }

    /// Replace the registry's state with a snapshot (checkpoint
    /// restore): subsequent accumulation continues exactly where the
    /// snapshot left off.
    pub fn load(&self, snap: &MetricsSnapshot) {
        let mut m = lock_recover(&self.inner);
        m.clear();
        for e in &snap.entries {
            let metric = match &e.value {
                MetricValue::Counter(c) => Metric::Counter(*c),
                MetricValue::Gauge(g) => Metric::Gauge(*g),
                MetricValue::Histogram(h) => Metric::Histogram(Histogram {
                    bounds: h.bounds.clone(),
                    counts: h.counts.clone(),
                    total: h.total,
                    sum: h.sum,
                    nan_rejected: h.nan_rejected,
                }),
            };
            m.insert(e.name.clone(), metric);
        }
    }

    /// Drop every metric.
    pub fn reset(&self) {
        lock_recover(&self.inner).clear();
    }
}

/// Frozen registry state: entries sorted by metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All metrics, sorted by name.
    pub entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].value)
    }

    /// True when no metrics were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One named metric in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    /// Metric name (dot-separated, e.g. `fl.update_norm`).
    pub name: String,
    /// The frozen value.
    pub value: MetricValue,
}

/// A frozen metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotone saturating count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(HistogramSnapshot),
}

/// Frozen histogram: `counts.len() == bounds.len() + 1`, the final
/// slot counting observations above the last bound. Bucket `i` counted
/// observations `v` with `v <= bounds[i]` (and `> bounds[i-1]` for
/// `i > 0`).
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Strictly increasing inclusive upper bucket bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts plus the trailing overflow slot.
    pub counts: Vec<u64>,
    /// Total observations (excluding rejected non-finite ones).
    pub total: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Non-finite observations rejected (only counted when the
    /// `debug_invariants` feature is off; with it on they panic).
    pub nan_rejected: u64,
}

impl HistogramSnapshot {
    /// Mean of the observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum / self.total as f64)
    }

    /// Estimate the `q`-quantile (`0 < q <= 1`) by linear interpolation
    /// inside the bucket holding the target rank — the standard
    /// fixed-bucket estimator (Prometheus's `histogram_quantile`):
    ///
    /// * the first bucket interpolates from 0 when its upper bound is
    ///   positive (phase ticks, norms, and byte counts are
    ///   non-negative), and reports its upper bound otherwise;
    /// * the overflow bucket cannot be interpolated — the estimate
    ///   clamps to the last finite bound;
    /// * an empty histogram, or a `q` outside `(0, 1]`, is `None`.
    ///
    /// The estimate is a deterministic function of the snapshot, so
    /// identical runs report identical percentiles.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !q.is_finite() || q <= 0.0 || q > 1.0 {
            return None;
        }
        if self.counts.len() != self.bounds.len() + 1 {
            // A malformed snapshot (hand-built or corrupted) has no
            // meaningful quantile.
            return None;
        }
        let target = q * self.total as f64;
        let mut cumulative: u64 = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            let prev = cumulative;
            cumulative = cumulative.saturating_add(c);
            if (cumulative as f64) < target {
                continue;
            }
            let Some(&upper) = self.bounds.get(i) else {
                // Overflow bucket: clamp to the last finite bound.
                return self.bounds.last().copied();
            };
            let lower = if i == 0 {
                if upper > 0.0 {
                    0.0
                } else {
                    return Some(upper);
                }
            } else {
                self.bounds[i - 1]
            };
            if c == 0 {
                return Some(upper);
            }
            let fraction = (target - prev as f64) / c as f64;
            return Some(lower + (upper - lower) * fraction.clamp(0.0, 1.0));
        }
        self.bounds.last().copied()
    }

    /// The (p50, p95, p99) triple of [`HistogramSnapshot::percentile`]
    /// estimates — the summary the profiling report prints.
    pub fn p50_p95_p99(&self) -> Option<(f64, f64, f64)> {
        Some((
            self.percentile(0.50)?,
            self.percentile(0.95)?,
            self.percentile(0.99)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.counter_add("c", u64::MAX);
        match r.snapshot().get("c") {
            Some(MetricValue::Counter(v)) => assert_eq!(*v, u64::MAX),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn gauges_keep_last_value() {
        let r = MetricsRegistry::new();
        r.gauge_set("g", 1.5);
        r.gauge_set("g", -2.0);
        assert_eq!(r.snapshot().get("g"), Some(&MetricValue::Gauge(-2.0)));
    }

    #[cfg(not(feature = "debug_invariants"))]
    #[test]
    fn non_finite_gauge_is_ignored() {
        let r = MetricsRegistry::new();
        r.gauge_set("g", 1.0);
        r.gauge_set("g", f64::NAN);
        assert_eq!(r.snapshot().get("g"), Some(&MetricValue::Gauge(1.0)));
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let r = MetricsRegistry::new();
        let bounds = [1.0, 2.0, 4.0];
        // Exactly on each boundary → that bucket; just above → next.
        for v in [0.5, 1.0, 1.0000001, 2.0, 4.0, 4.0000001, 100.0] {
            r.observe("h", &bounds, v);
        }
        match r.snapshot().get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.counts, [2, 2, 1, 2]);
                assert_eq!(h.total, 7);
                assert_eq!(h.nan_rejected, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn histogram_counts_saturate() {
        let mut h = Histogram::new(&[1.0]);
        h.counts[0] = u64::MAX;
        h.total = u64::MAX;
        h.observe("h", 0.5);
        assert_eq!(h.counts[0], u64::MAX);
        assert_eq!(h.total, u64::MAX);
    }

    #[cfg(not(feature = "debug_invariants"))]
    #[test]
    fn nan_observations_are_counted_not_bucketed() {
        let r = MetricsRegistry::new();
        r.observe("h", &[1.0], f64::NAN);
        r.observe("h", &[1.0], f64::INFINITY);
        r.observe("h", &[1.0], 0.5);
        match r.snapshot().get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.nan_rejected, 2);
                assert_eq!(h.total, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[cfg(feature = "debug_invariants")]
    #[test]
    #[should_panic(expected = "non-finite observation")]
    fn nan_observation_panics_under_invariants() {
        let r = MetricsRegistry::new();
        r.observe("h", &[1.0], f64::NAN);
    }

    #[test]
    fn snapshot_is_sorted_and_load_round_trips() {
        let r = MetricsRegistry::new();
        r.counter_add("z.count", 1);
        r.gauge_set("a.gauge", 3.0);
        r.observe("m.hist", &[1.0, 2.0], 1.5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a.gauge", "m.hist", "z.count"]);

        let r2 = MetricsRegistry::new();
        r2.load(&snap);
        assert_eq!(r2.snapshot(), snap);
        // Accumulation continues from the loaded state.
        r2.counter_add("z.count", 1);
        assert_eq!(r2.snapshot().get("z.count"), Some(&MetricValue::Counter(2)));
    }

    #[test]
    fn bounds_validation_rejects_malformed_arrays() {
        assert_eq!(validate_bounds(&[]), Err(BoundsError::Empty));
        assert_eq!(
            validate_bounds(&[1.0, f64::NAN]),
            Err(BoundsError::NonFinite { index: 1 })
        );
        assert_eq!(
            validate_bounds(&[1.0, f64::INFINITY]),
            Err(BoundsError::NonFinite { index: 1 })
        );
        assert_eq!(
            validate_bounds(&[1.0, 2.0, 2.0]),
            Err(BoundsError::NotSorted { index: 2 })
        );
        assert_eq!(
            validate_bounds(&[3.0, 1.0]),
            Err(BoundsError::NotSorted { index: 1 })
        );
        assert_eq!(validate_bounds(&[-1.0, 0.5, 2.0]), Ok(()));
    }

    #[cfg(not(feature = "debug_invariants"))]
    #[test]
    fn malformed_bounds_never_register_a_histogram() {
        // Regression: `observe` used to accept any bounds array and
        // silently build a histogram with lying buckets. Now the typed
        // error is surfaced and nothing is registered.
        let r = MetricsRegistry::new();
        assert_eq!(
            r.try_observe("h", &[2.0, 1.0], 0.5),
            Err(BoundsError::NotSorted { index: 1 })
        );
        r.observe("h", &[], 0.5);
        assert!(r.snapshot().get("h").is_none(), "no metric may be created");
        // A later, valid registration under the same name works.
        assert_eq!(r.try_observe("h", &[1.0], 0.5), Ok(()));
        assert!(r.snapshot().get("h").is_some());
    }

    #[cfg(feature = "debug_invariants")]
    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn malformed_bounds_panic_under_invariants() {
        let r = MetricsRegistry::new();
        r.observe("h", &[2.0, 1.0], 0.5);
    }

    #[test]
    fn percentile_empty_histogram_is_none() {
        let r = MetricsRegistry::new();
        r.observe("h", &[1.0, 2.0], f64::NAN); // rejected, still empty
        match r.snapshot().get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.percentile(0.5), None);
                assert_eq!(h.p50_p95_p99(), None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn percentile_rejects_out_of_range_q() {
        let r = MetricsRegistry::new();
        r.observe("h", &[10.0], 5.0);
        match r.snapshot().get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.percentile(0.0), None);
                assert_eq!(h.percentile(-0.5), None);
                assert_eq!(h.percentile(1.5), None);
                assert_eq!(h.percentile(f64::NAN), None);
                assert!(h.percentile(1.0).is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn percentile_single_bucket_interpolates_from_zero() {
        let r = MetricsRegistry::new();
        // Four observations, all in the one bucket (0, 10].
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.observe("h", &[10.0], v);
        }
        match r.snapshot().get("h") {
            Some(MetricValue::Histogram(h)) => {
                // p50 target rank 2 of 4 → halfway through (0, 10].
                assert_eq!(h.percentile(0.5), Some(5.0));
                assert_eq!(h.percentile(1.0), Some(10.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn percentile_interpolates_between_bucket_bounds() {
        let r = MetricsRegistry::new();
        let bounds = [10.0, 20.0, 40.0];
        // 2 in (0,10], 2 in (10,20], none above.
        for v in [5.0, 6.0, 15.0, 16.0] {
            r.observe("h", &bounds, v);
        }
        match r.snapshot().get("h") {
            Some(MetricValue::Histogram(h)) => {
                // p75 → rank 3 of 4, end of the second bucket's first
                // half: 10 + (3-2)/2 * (20-10) = 15.
                assert_eq!(h.percentile(0.75), Some(15.0));
                // p25 → rank 1 of 2 within the first bucket: 5.
                assert_eq!(h.percentile(0.25), Some(5.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn percentile_overflow_bucket_clamps_to_last_bound() {
        let r = MetricsRegistry::new();
        r.observe("h", &[1.0, 2.0], 100.0);
        r.observe("h", &[1.0, 2.0], 200.0);
        match r.snapshot().get("h") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.percentile(0.5), Some(2.0));
                assert_eq!(h.percentile(0.99), Some(2.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn percentile_negative_first_bucket_reports_its_bound() {
        let r = MetricsRegistry::new();
        r.observe("h", &[-5.0, 5.0], -7.0);
        match r.snapshot().get("h") {
            Some(MetricValue::Histogram(h)) => {
                // No lower edge to interpolate from below zero: report
                // the bucket's upper bound instead of inventing one.
                assert_eq!(h.percentile(0.5), Some(-5.0));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn percentile_saturated_histogram_stays_finite() {
        // Counts pinned at u64::MAX (the saturating path) must not
        // overflow the cumulative scan or return NaN.
        let h = HistogramSnapshot {
            bounds: vec![1.0, 2.0],
            counts: vec![u64::MAX, u64::MAX, 0],
            total: u64::MAX,
            sum: 0.0,
            nan_rejected: 0,
        };
        let p = h.percentile(0.99).expect("saturated percentile");
        assert!(p.is_finite());
        assert!((0.0..=2.0).contains(&p), "estimate {p} inside bounds");
    }

    #[test]
    fn percentile_malformed_snapshot_is_none() {
        let h = HistogramSnapshot {
            bounds: vec![1.0, 2.0],
            counts: vec![1], // wrong arity
            total: 1,
            sum: 0.5,
            nan_rejected: 0,
        };
        assert_eq!(h.percentile(0.5), None);
    }

    #[test]
    fn histogram_mean() {
        let r = MetricsRegistry::new();
        r.observe("h", &[10.0], 2.0);
        r.observe("h", &[10.0], 4.0);
        match r.snapshot().get("h") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.mean(), Some(3.0)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
