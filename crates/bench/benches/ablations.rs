//! DESIGN.md §4 ablation benches: measure what each FedWCM mechanism and
//! each engineering choice costs/buys at smoke scale.
//!
//! Accuracy-facing ablations live in the `ablation_fedwcm` experiment
//! binary; these benches cover the *cost* side (wall-clock of variants).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedwcm_core::{FedWcm, FedWcmOptions};
use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::{ExpConfig, Scale};
use std::hint::black_box;

fn variants() -> Vec<(&'static str, FedWcmOptions)> {
    vec![
        ("full", FedWcmOptions::default()),
        (
            "fixed_alpha",
            FedWcmOptions {
                adaptive_alpha: false,
                ..FedWcmOptions::default()
            },
        ),
        (
            "uniform_weights",
            FedWcmOptions {
                weighted_aggregation: false,
                ..FedWcmOptions::default()
            },
        ),
        (
            "fixed_temperature",
            FedWcmOptions {
                adaptive_temperature: false,
                ..FedWcmOptions::default()
            },
        ),
        (
            "literal_scores",
            FedWcmOptions {
                literal_scores: true,
                ..FedWcmOptions::default()
            },
        ),
    ]
}

fn bench_fedwcm_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("fedwcm_variant_run");
    group.sample_size(10);
    let exp = ExpConfig::new(DatasetPreset::FashionMnist, 0.1, 0.6, Scale::Smoke, 42);
    for (name, options) in variants() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &options, |b, opts| {
            b.iter(|| {
                let task = exp.prepare();
                let sim = task.simulation();
                let mut algo = FedWcm::with_options(opts.clone());
                black_box(sim.run(&mut algo))
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_fedwcm_variants
);
criterion_main!(ablations);
