//! Figure 8: per-label accuracy of FedAvg / FedCM / FedWCM at β = 0.6,
//! IF = 0.1 — FedWCM's tail-class advantage.

use fedwcm_analysis::per_class::head_tail_summary;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::methods::build_method;
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let mut exp = ExpConfig::new(DatasetPreset::Cifar10, 0.1, 0.6, cli.scale, cli.seed);
    if let Some(r) = cli.rounds {
        exp.rounds = r;
    }
    let task = exp.prepare();
    let counts = task.global_counts();
    println!("# global training class counts (label 0 = head): {counts:?}\n");
    println!(
        "| {:<8} | {:>8} | {:>8} | {:>8} |",
        "label", "FedAvg", "FedCM", "FedWCM"
    );

    let mut summaries = Vec::new();
    for method in [Method::FedAvg, Method::FedCm, Method::FedWcm] {
        let sim = task.simulation();
        let mut algo = build_method(method, &task);
        let (_, mut model) = sim.run_returning_model(algo.as_mut());
        summaries.push(head_tail_summary(&mut model, &task.test, &counts));
        console.info(format!("[fig8] {} done", method.label()));
    }
    for label in 0..task.test.classes() {
        println!(
            "| {:<8} | {:>8.4} | {:>8.4} | {:>8.4} |",
            label,
            summaries[0].per_class[label],
            summaries[1].per_class[label],
            summaries[2].per_class[label],
        );
    }
    println!("\n# head/tail means:");
    for (name, s) in ["FedAvg", "FedCM", "FedWCM"].iter().zip(&summaries) {
        println!(
            "{name}: head={:.4} tail={:.4}",
            s.head_accuracy, s.tail_accuracy
        );
    }
    println!(
        "\nExpected shape (paper Fig. 8): FedCM's accuracy dives towards 0\n\
         on the rarest labels; FedWCM keeps tail labels well above FedAvg."
    );
}
