//! FedGrab (Xiao et al., NeurIPS 2024) — self-adjusting gradient balancer
//! with direct prior analysis.
//!
//! Reproduced mechanisms:
//!
//! 1. **Prior analyzer**: the server knows the global class prior (here
//!    from the aggregated class counts, as the original estimates it) and
//!    clients train with prior-adjusted logits (Balanced-Softmax);
//! 2. **Self-adjusting gradient balancer**: per class, an EMA of the
//!    classifier-row gradient energy is maintained during local training;
//!    each row's gradient is rescaled by `(mean/​energy_c)^τ`, so classes
//!    whose classifier rows have absorbed more gradient get damped and
//!    starved rows get boosted.
//!
//! Simplification vs. the original (documented): the balancer state is
//! per-client-per-round rather than persisted server-side, and operates on
//! the final linear layer only (where minority collapse manifests).

use fedwcm_fl::algorithm::{
    server_step, uniform_average, FederatedAlgorithm, RoundInput, RoundLog,
};
use fedwcm_fl::client::{ClientEnv, ClientUpdate};
use fedwcm_nn::loss::BalancedSoftmax;

/// FedGrab with balancer exponent τ.
pub struct FedGrab {
    /// Balancer strength τ ∈ [0, 1]; 0 disables rebalancing.
    pub tau: f32,
    /// EMA factor for per-class gradient energy.
    pub ema: f32,
    global_counts: Vec<usize>,
}

impl FedGrab {
    /// New FedGrab given the global class counts (the prior analyzer's
    /// output).
    pub fn new(global_counts: Vec<usize>) -> Self {
        assert!(!global_counts.is_empty());
        FedGrab {
            tau: 0.5,
            ema: 0.9,
            global_counts,
        }
    }
}

impl FederatedAlgorithm for FedGrab {
    fn name(&self) -> String {
        "FedGrab".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        assert!(!env.view.is_empty(), "sampled an empty client");
        let cfg = env.cfg;
        let mut model = env.model_from(global);
        let rng = env.rng();
        let loss = BalancedSoftmax::from_counts(&self.global_counts);
        let classes = self.global_counts.len();

        // Classifier layer: the model's last layer (weights then biases).
        let (clf_off, clf_len) = model.layer_param_range(model.num_layers() - 1);
        assert!(clf_len > classes, "classifier layer too small");
        let feat = (clf_len - classes) / classes;
        assert_eq!(
            feat * classes + classes,
            clf_len,
            "unexpected classifier layout"
        );

        let batches_per_epoch = env.batches_per_epoch();
        let total_steps = batches_per_epoch * cfg.local_epochs;
        let mut grads = vec![0.0f32; model.param_len()];
        let mut energy = vec![1e-8f64; classes];
        let mut loss_acc = 0.0f64;

        let mut sampler =
            fedwcm_data::sampler::BatchSampler::new(env.view.indices(), cfg.batch_size, rng);
        for _ in 0..total_steps {
            let idx = sampler.next_batch();
            let (x, y) = env.dataset.gather(&idx);
            let l = model.loss_grad(&x, &y, &loss, &mut grads);
            loss_acc += l as f64;

            // Gradient balancer on the classifier rows.
            if self.tau > 0.0 {
                let rows = &mut grads[clf_off..clf_off + classes * feat];
                // Update energies.
                for c in 0..classes {
                    let row = &rows[c * feat..(c + 1) * feat];
                    let e: f64 = row.iter().map(|&g| (g * g) as f64).sum();
                    energy[c] = self.ema as f64 * energy[c] + (1.0 - self.ema as f64) * e;
                }
                let mean_e: f64 = energy.iter().sum::<f64>() / classes as f64;
                for c in 0..classes {
                    let s = (mean_e / energy[c].max(1e-12)).powf(self.tau as f64) as f32;
                    // Clamp so one dead class cannot explode a row.
                    let s = s.clamp(0.1, 10.0);
                    for g in &mut rows[c * feat..(c + 1) * feat] {
                        *g *= s;
                    }
                }
            }
            fedwcm_nn::opt::sgd_step(model.params_mut(), &grads, cfg.local_lr);
        }

        let scale = 1.0 / (cfg.local_lr * total_steps as f32);
        let delta: Vec<f32> = global
            .iter()
            .zip(model.params())
            .map(|(g, p)| (g - p) * scale)
            .collect();
        ClientUpdate {
            client: env.id,
            delta,
            num_samples: env.view.len(),
            num_batches: total_steps,
            avg_loss: (loss_acc / total_steps as f64) as f32,
            extra: None,
        }
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());
        RoundLog::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_data::longtail::longtail_counts;
    use fedwcm_data::partition::paper_partition;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_fl::{FlConfig, Simulation};
    use fedwcm_nn::models::mlp;
    use fedwcm_stats::Xoshiro256pp;

    fn run_task(imb: f64, seed: u64, tau: f32) -> f64 {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 70, imb);
        let train = spec.generate_train(&counts, seed);
        let test = spec.generate_test(seed);
        let global_counts = train.class_counts();
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 8;
        cfg.participation = 0.5;
        cfg.rounds = 12;
        cfg.local_epochs = 2;
        cfg.batch_size = 20;
        cfg.eval_every = 4;
        cfg.seed = seed;
        let part = paper_partition(&train, cfg.clients, 0.3, cfg.seed);
        let views = part.views(&train);
        let sim = Simulation::new(
            cfg,
            &train,
            &test,
            views,
            Box::new(|| {
                let mut rng = Xoshiro256pp::seed_from(2024);
                mlp(64, &[32], 10, &mut rng)
            }),
        );
        let mut algo = FedGrab::new(global_counts);
        algo.tau = tau;
        sim.run(&mut algo).final_accuracy(1)
    }

    #[test]
    fn learns_moderate_longtail() {
        let acc = run_task(0.5, 121, 0.5);
        assert!(acc > 0.45, "acc {acc}");
    }

    #[test]
    fn balancer_changes_trajectory() {
        let with_b = run_task(0.1, 122, 0.5);
        let without = run_task(0.1, 122, 0.0);
        assert_ne!(with_b, without);
    }

    #[test]
    fn learns_balanced_task() {
        let acc = run_task(1.0, 123, 0.5);
        assert!(acc > 0.5, "acc {acc}");
    }
}
