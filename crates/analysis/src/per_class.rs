//! Head/tail accuracy summaries (Fig. 8).

use fedwcm_data::dataset::Dataset;
use fedwcm_fl::engine::per_class_accuracy;
use fedwcm_nn::model::Model;

/// Per-class accuracy split into head and tail halves by training
/// frequency.
#[derive(Clone, Debug)]
pub struct HeadTailSummary {
    /// Accuracy per class, indexed by class id.
    pub per_class: Vec<f64>,
    /// Mean accuracy over the most-frequent half of classes.
    pub head_accuracy: f64,
    /// Mean accuracy over the least-frequent half of classes.
    pub tail_accuracy: f64,
}

/// Evaluate per-class accuracy and summarise head vs tail, where classes
/// are ranked by `train_counts` (descending = head first).
pub fn head_tail_summary(
    model: &mut Model,
    test: &Dataset,
    train_counts: &[usize],
) -> HeadTailSummary {
    assert_eq!(train_counts.len(), test.classes(), "class arity mismatch");
    let per_class = per_class_accuracy(model, test);
    let mut order: Vec<usize> = (0..train_counts.len()).collect();
    order.sort_by(|&a, &b| train_counts[b].cmp(&train_counts[a]));
    let half = order.len() / 2;
    let head: Vec<f64> = order[..half].iter().map(|&c| per_class[c]).collect();
    let tail: Vec<f64> = order[half..].iter().map(|&c| per_class[c]).collect();
    HeadTailSummary {
        per_class,
        head_accuracy: fedwcm_stats::describe::mean(&head),
        tail_accuracy: fedwcm_stats::describe::mean(&tail),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_data::longtail::longtail_counts;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_nn::loss::CrossEntropy;
    use fedwcm_nn::models::mlp;
    use fedwcm_stats::Xoshiro256pp;

    #[test]
    fn summary_shapes_and_bounds() {
        let spec = DatasetPreset::FashionMnist.spec();
        let test = spec.generate_test(301);
        let counts = longtail_counts(10, 100, 0.1);
        let mut rng = Xoshiro256pp::seed_from(1);
        let mut model = mlp(64, &[16], 10, &mut rng);
        let s = head_tail_summary(&mut model, &test, &counts);
        assert_eq!(s.per_class.len(), 10);
        assert!((0.0..=1.0).contains(&s.head_accuracy));
        assert!((0.0..=1.0).contains(&s.tail_accuracy));
    }

    #[test]
    fn longtail_training_biases_towards_head() {
        // Train centrally on a heavy long tail: head accuracy should beat
        // tail accuracy — the bias FedWCM targets.
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 150, 0.02);
        let train = spec.generate_train(&counts, 302);
        let test = spec.generate_test(302);
        let mut rng = Xoshiro256pp::seed_from(2);
        let mut model = mlp(64, &[32], 10, &mut rng);
        let (x, y) = train.as_batch();
        let mut grads = vec![0.0f32; model.param_len()];
        for _ in 0..100 {
            let _ = model.loss_grad(&x, &y, &CrossEntropy, &mut grads);
            fedwcm_nn::opt::sgd_step(model.params_mut(), &grads, 0.1);
        }
        let s = head_tail_summary(&mut model, &test, &counts);
        assert!(
            s.head_accuracy > s.tail_accuracy + 0.05,
            "head {} vs tail {}",
            s.head_accuracy,
            s.tail_accuracy
        );
    }
}
