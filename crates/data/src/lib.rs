//! Synthetic long-tailed datasets and federated partitioners.
//!
//! Substitutes for the paper's image benchmarks (Fashion-MNIST, SVHN,
//! CIFAR-10/100, ImageNet): seeded Gaussian class-prototype generators
//! with per-preset class counts and difficulty, plus the two partition
//! schemes the paper studies —
//!
//! * the **paper partition** (following BalanceFL): global long-tail with
//!   imbalance factor `IF`, clients hold *equal sample quantities* with
//!   Dirichlet(β) class skew;
//! * the **FedGrab partition**: per-class Dirichlet(β) split across
//!   clients, producing heavy quantity skew (Appendix A / Fig. 11).
//!
//! Modules: [`dataset`] (storage + views), [`synth`] (generators and
//! presets), [`longtail`] (IF-profiles), [`partition`] (both partitioners),
//! [`sampler`] (mini-batch and class-balanced samplers).

#![warn(missing_docs)]

pub mod dataset;
pub mod longtail;
pub mod partition;
pub mod sampler;
pub mod synth;

pub use dataset::{ClientView, Dataset};
pub use longtail::longtail_counts;
pub use partition::{creff_partition, fedgrab_partition, paper_partition, Partition};
pub use synth::{DatasetPreset, SyntheticSpec};
