//! Additively-homomorphic encryption for private global-distribution
//! aggregation (§5.5 / Appendix C).
//!
//! The paper uses the BFV scheme via TenSEAL; this crate implements the
//! same *protocol role* from scratch: a symmetric RLWE encryption over
//! `Z_q[x]/(x^N + 1)` that is additively homomorphic with
//! coefficient-packed integer vectors (class counts in coefficients), so
//! the server can sum encrypted per-client class distributions without
//! seeing any individual one.
//!
//! Parameters follow BFV shape: power-of-two ring degree `N`, modulus
//! `q = 2^62` (power of two — exact wrapping arithmetic, no NTT needed
//! since additive aggregation requires only one negacyclic product per
//! encryption, against a sparse ternary secret), plaintext modulus `t`.
//! Ciphertexts are `(c0, c1)` with `c0 = c1·s + e + Δ·m`, `Δ = q/t`.
//!
//! **Security note.** This is a faithful *functional* reproduction for
//! measuring protocol overheads (Table 6) and exercising the aggregation
//! flow; it deliberately reuses the workspace's deterministic RNG for
//! reproducibility, so it must not be used as a production cryptosystem.
//!
//! Modules: [`ring`] (negacyclic polynomial arithmetic), [`rlwe`]
//! (keygen/encrypt/add/decrypt), [`protocol`] (the BatchCrypt-style
//! aggregation protocol with size/time accounting).

#![warn(missing_docs)]

pub mod ntt;
pub mod protocol;
pub mod ring;
pub mod rlwe;

pub use protocol::{aggregate_distributions, ProtocolReport};
pub use rlwe::{Ciphertext, RlweParams, SecretKey};
