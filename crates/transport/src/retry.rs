//! Retry policy: per-attempt deadlines and capped exponential backoff
//! with deterministically seeded jitter.
//!
//! The policy is pure configuration — the [`Courier`](crate::Courier)
//! state machine interprets it. Deadlines and backoff pauses are
//! measured in *logical* ticks on the courier's `LogicalClock`, so two
//! runs with the same seeds wait exactly the same number of ticks and
//! stay bitwise identical across thread counts. Jitter is drawn from the
//! dedicated [`STREAM_NET_JITTER`] stream keyed by
//! `(round, client, attempt)` — a pure function, like every other
//! stochastic decision in the workspace.

use crate::link::{LINK_LATENCY, REORDER_EXTRA};
use crate::plan::STREAM_NET_JITTER;
use fedwcm_stats::rng::{Rng, Xoshiro256pp};

/// When and how often a delivery is retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum transmission attempts per delivery (≥ 1). When the budget
    /// is exhausted the delivery degrades to a dropout.
    pub max_attempts: u32,
    /// Logical ticks each attempt waits for an intact frame before
    /// timing out. Must be at least `LINK_LATENCY + REORDER_EXTRA + 1`
    /// so a healthy (even reordered) frame can land inside the window.
    pub deadline_ticks: u64,
    /// Base backoff in ticks; attempt `n`'s pause is
    /// `min(base << n, cap)` plus jitter in `[0, base)`.
    pub backoff_base: u64,
    /// Upper bound on the exponential term.
    pub backoff_cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            deadline_ticks: 8,
            backoff_base: 2,
            backoff_cap: 16,
        }
    }
}

impl RetryPolicy {
    /// Validate the policy; panics with context on misconfiguration.
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "max_attempts must be ≥ 1");
        assert!(
            self.deadline_ticks > LINK_LATENCY + REORDER_EXTRA,
            "deadline_ticks must exceed the link latency plus reorder slack \
             ({} ticks), got {}",
            LINK_LATENCY + REORDER_EXTRA,
            self.deadline_ticks
        );
    }

    /// Ticks to pause before re-sending after failed attempt `attempt`
    /// (zero-based): capped exponential plus seeded jitter.
    ///
    /// Pure in `(seed, round, client, attempt)`, so the pause — and with
    /// it the whole retry timeline — is identical across runs and thread
    /// counts.
    pub fn backoff_ticks(&self, seed: u64, round: u64, client: u64, attempt: u32) -> u64 {
        let exp = self
            .backoff_base
            .checked_shl(attempt.min(16))
            .unwrap_or(u64::MAX)
            .min(self.backoff_cap);
        let jitter = if self.backoff_base > 0 {
            let mut rng = Xoshiro256pp::stream(
                seed,
                &[STREAM_NET_JITTER, round, client, u64::from(attempt)],
            );
            rng.next_below(self.backoff_base)
        } else {
            0
        };
        exp.saturating_add(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_valid() {
        RetryPolicy::default().validate();
    }

    #[test]
    fn backoff_is_deterministic() {
        let p = RetryPolicy::default();
        for attempt in 0..4 {
            assert_eq!(
                p.backoff_ticks(7, 3, 5, attempt),
                p.backoff_ticks(7, 3, 5, attempt)
            );
        }
    }

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            backoff_base: 2,
            backoff_cap: 16,
            ..RetryPolicy::default()
        };
        for attempt in 0..40 {
            let ticks = p.backoff_ticks(1, 0, 0, attempt);
            let exp = 2u64
                .checked_shl(attempt.min(16))
                .unwrap_or(u64::MAX)
                .min(16);
            assert!(ticks >= exp, "pause below the exponential floor");
            assert!(ticks < exp + 2, "jitter must stay below the base");
        }
        // Attempt 4 onward the exponential term is pinned at the cap.
        assert!(p.backoff_ticks(1, 0, 0, 10) <= 16 + 1);
    }

    #[test]
    fn zero_base_means_no_jitter_and_no_pause() {
        let p = RetryPolicy {
            backoff_base: 0,
            backoff_cap: 16,
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_ticks(1, 0, 0, 0), 0);
    }

    #[test]
    fn huge_attempt_indices_saturate() {
        let p = RetryPolicy {
            backoff_base: u64::MAX,
            backoff_cap: u64::MAX,
            ..RetryPolicy::default()
        };
        // Shift saturates, min caps, add saturates: no overflow panic.
        let _ = p.backoff_ticks(1, 0, 0, u32::MAX);
    }

    #[test]
    #[should_panic]
    fn zero_attempts_rejected() {
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn too_short_deadline_rejected() {
        RetryPolicy {
            deadline_ticks: 1,
            ..RetryPolicy::default()
        }
        .validate();
    }
}
