//! Sharpness-aware-minimisation family (Appendix D baselines).
//!
//! All five methods share one local loop ([`run_local_sam`]) that differs
//! from plain SGD in computing the gradient at an *ascent-perturbed* point
//! `x + ρ·ε̂`. The variants differ in how `ε̂` is chosen and what is mixed
//! into the final direction:
//!
//! | method        | perturbation `ε̂`            | direction extras            |
//! |---------------|------------------------------|-----------------------------|
//! | FedSAM        | local gradient               | —                           |
//! | MoFedSAM      | local gradient               | momentum blend (as FedCM)   |
//! | FedSpeed-lite | local gradient               | prox pull to `x_r`          |
//! | FedSMOO-lite  | local gradient               | FedDyn-style state `h_i`    |
//! | FedLESAM-lite | previous global direction Δ  | —                           |
//!
//! The "-lite" suffix marks mechanism-faithful simplifications of the
//! published methods (documented in DESIGN.md): they keep the defining
//! correction but omit secondary machinery (e.g. FedSMOO's dual updates on
//! the perturbation itself).

use fedwcm_fl::algorithm::{
    server_step, uniform_average, FederatedAlgorithm, RoundInput, RoundLog,
};
use fedwcm_fl::client::{ClientEnv, ClientUpdate};
use fedwcm_nn::loss::{CrossEntropy, Loss};
use fedwcm_tensor::ops;

/// Options for the shared SAM local loop.
pub struct SamSpec<'a> {
    /// Ascent radius ρ.
    pub rho: f32,
    /// Momentum blend `(α, Δ)` — MoFedSAM.
    pub blend: Option<(f32, &'a [f32])>,
    /// Proximal coefficient μ — FedSpeed-lite.
    pub prox: Option<f32>,
    /// FedDyn-style state `h_i` subtracted from the direction — FedSMOO-lite.
    pub dyn_state: Option<&'a [f32]>,
    /// Perturb along this fixed direction instead of the local gradient —
    /// FedLESAM-lite (uses the previous global direction).
    pub global_perturbation: Option<&'a [f32]>,
}

/// SAM local training: per step, (optionally) compute the local gradient,
/// ascend by `ρ` along the normalised perturbation, take the gradient
/// there, apply extras, and descend.
pub fn run_local_sam(
    env: &ClientEnv<'_>,
    global: &[f32],
    loss: &dyn Loss,
    spec: &SamSpec<'_>,
) -> ClientUpdate {
    assert!(!env.view.is_empty(), "sampled an empty client");
    assert!(spec.rho >= 0.0);
    let mut model = env.model_from(global);
    let rng = env.rng();
    let cfg = env.cfg;

    let batches_per_epoch = env.batches_per_epoch();
    let total_steps = batches_per_epoch * cfg.local_epochs;
    let dim = model.param_len();
    let mut grads = vec![0.0f32; dim];
    let mut perturbed = vec![0.0f32; dim];
    let mut direction = vec![0.0f32; dim];
    let mut loss_acc = 0.0f64;

    let mut sampler =
        fedwcm_data::sampler::BatchSampler::new(env.view.indices(), cfg.batch_size, rng);
    for _ in 0..total_steps {
        let idx = sampler.next_batch();
        let (x, y) = env.dataset.gather(&idx);

        // Choose the perturbation direction.
        let base = model.params().to_vec();
        let eps_dir: &[f32] = if let Some(gdir) = spec.global_perturbation {
            gdir
        } else {
            let l = model.loss_grad(&x, &y, loss, &mut grads);
            loss_acc += l as f64;
            &grads
        };
        let norm = ops::norm(eps_dir);
        if norm > 1e-12 {
            perturbed.copy_from_slice(&base);
            ops::axpy(spec.rho / norm, eps_dir, &mut perturbed);
            model.set_params(&perturbed);
        }
        // Gradient at the perturbed point.
        let l = model.loss_grad(&x, &y, loss, &mut direction);
        if spec.global_perturbation.is_some() {
            loss_acc += l as f64;
        }
        model.set_params(&base);

        // Extras.
        if let Some((alpha, momentum)) = spec.blend {
            if !momentum.is_empty() {
                for (d, m) in direction.iter_mut().zip(momentum) {
                    *d = alpha * *d + (1.0 - alpha) * m;
                }
            } else {
                for d in direction.iter_mut() {
                    *d *= alpha;
                }
            }
        }
        if let Some(mu) = spec.prox {
            for ((d, p), x0) in direction.iter_mut().zip(&base).zip(global) {
                *d += mu * (p - x0);
            }
        }
        if let Some(h) = spec.dyn_state {
            if !h.is_empty() {
                for (d, hi) in direction.iter_mut().zip(h) {
                    *d -= hi;
                }
            }
        }
        fedwcm_nn::opt::sgd_step(model.params_mut(), &direction, cfg.local_lr);
    }

    let scale = 1.0 / (cfg.local_lr * total_steps as f32);
    let delta: Vec<f32> = global
        .iter()
        .zip(model.params())
        .map(|(g, p)| (g - p) * scale)
        .collect();
    ClientUpdate {
        client: env.id,
        delta,
        num_samples: env.view.len(),
        num_batches: total_steps,
        avg_loss: (loss_acc / total_steps as f64) as f32,
        extra: None,
    }
}

macro_rules! plain_aggregate {
    () => {
        fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
            let mut dir = vec![0.0f32; global.len()];
            uniform_average(&input.updates, &mut dir);
            server_step(global, &dir, input.cfg, input.mean_batches());
            RoundLog::default()
        }
    };
}

/// FedSAM: sharpness-aware local steps, plain averaging.
pub struct FedSam {
    /// Ascent radius ρ.
    pub rho: f32,
}

impl FedSam {
    /// New FedSAM.
    pub fn new(rho: f32) -> Self {
        assert!(rho > 0.0);
        FedSam { rho }
    }
}

impl FederatedAlgorithm for FedSam {
    fn name(&self) -> String {
        "FedSAM".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = SamSpec {
            rho: self.rho,
            blend: None,
            prox: None,
            dyn_state: None,
            global_perturbation: None,
        };
        run_local_sam(env, global, &CrossEntropy, &spec)
    }

    plain_aggregate!();
}

/// MoFedSAM: FedSAM locally + FedCM-style client momentum.
pub struct MoFedSam {
    /// Ascent radius ρ.
    pub rho: f32,
    /// Momentum value α.
    pub alpha: f32,
    momentum: Vec<f32>,
}

impl MoFedSam {
    /// New MoFedSAM.
    pub fn new(rho: f32, alpha: f32) -> Self {
        assert!(rho > 0.0 && (0.0..=1.0).contains(&alpha));
        MoFedSam {
            rho,
            alpha,
            momentum: Vec::new(),
        }
    }
}

impl FederatedAlgorithm for MoFedSam {
    fn name(&self) -> String {
        "MoFedSAM".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = SamSpec {
            rho: self.rho,
            blend: Some((self.alpha, &self.momentum)),
            prox: None,
            dyn_state: None,
            global_perturbation: None,
        };
        run_local_sam(env, global, &CrossEntropy, &spec)
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        if self.momentum.is_empty() {
            self.momentum = vec![0.0f32; global.len()];
        }
        uniform_average(&input.updates, &mut self.momentum);
        server_step(global, &self.momentum, input.cfg, input.mean_batches());
        RoundLog {
            alpha: Some(self.alpha as f64),
            weights: None,
        }
    }
}

/// FedSpeed-lite: SAM ascent + proximal pull to the round-start model.
pub struct FedSpeed {
    /// Ascent radius ρ.
    pub rho: f32,
    /// Proximal coefficient μ.
    pub mu: f32,
}

impl FedSpeed {
    /// New FedSpeed-lite.
    pub fn new(rho: f32, mu: f32) -> Self {
        assert!(rho > 0.0 && mu >= 0.0);
        FedSpeed { rho, mu }
    }
}

impl FederatedAlgorithm for FedSpeed {
    fn name(&self) -> String {
        "FedSpeed-lite".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = SamSpec {
            rho: self.rho,
            blend: None,
            prox: Some(self.mu),
            dyn_state: None,
            global_perturbation: None,
        };
        run_local_sam(env, global, &CrossEntropy, &spec)
    }

    plain_aggregate!();
}

/// FedSMOO-lite: SAM ascent + FedDyn-style per-client correction state.
pub struct FedSmoo {
    /// Ascent radius ρ.
    pub rho: f32,
    /// State coefficient λ.
    pub lambda: f32,
    states: Vec<Vec<f32>>,
}

impl FedSmoo {
    /// New FedSMOO-lite for `num_clients` clients.
    pub fn new(rho: f32, lambda: f32, num_clients: usize) -> Self {
        assert!(rho > 0.0 && lambda > 0.0);
        FedSmoo {
            rho,
            lambda,
            states: vec![Vec::new(); num_clients],
        }
    }
}

impl FederatedAlgorithm for FedSmoo {
    fn name(&self) -> String {
        "FedSMOO-lite".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = SamSpec {
            rho: self.rho,
            blend: None,
            prox: Some(self.lambda),
            dyn_state: Some(&self.states[env.id]),
            global_perturbation: None,
        };
        run_local_sam(env, global, &CrossEntropy, &spec)
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let dim = global.len();
        let lr = input.cfg.local_lr;
        for u in &input.updates {
            let h = &mut self.states[u.client];
            if h.is_empty() {
                *h = vec![0.0f32; dim];
            }
            let steps = lr * u.num_batches as f32;
            for (hj, d) in h.iter_mut().zip(&u.delta) {
                *hj += self.lambda * steps * d;
            }
        }
        let mut dir = vec![0.0f32; dim];
        uniform_average(&input.updates, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());
        RoundLog::default()
    }
}

/// FedLESAM-lite: perturb along the *previous global direction* instead of
/// the local gradient — one gradient evaluation per step.
pub struct FedLesam {
    /// Ascent radius ρ.
    pub rho: f32,
    momentum: Vec<f32>,
}

impl FedLesam {
    /// New FedLESAM-lite.
    pub fn new(rho: f32) -> Self {
        assert!(rho > 0.0);
        FedLesam {
            rho,
            momentum: Vec::new(),
        }
    }
}

impl FederatedAlgorithm for FedLesam {
    fn name(&self) -> String {
        "FedLESAM-lite".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = SamSpec {
            rho: self.rho,
            blend: None,
            prox: None,
            dyn_state: None,
            global_perturbation: if self.momentum.is_empty() {
                None
            } else {
                Some(&self.momentum)
            },
        };
        run_local_sam(env, global, &CrossEntropy, &spec)
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        if self.momentum.is_empty() {
            self.momentum = vec![0.0f32; global.len()];
        }
        uniform_average(&input.updates, &mut self.momentum);
        server_step(global, &self.momentum, input.cfg, input.mean_batches());
        RoundLog::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build_sim, small_task};

    #[test]
    fn fedsam_learns() {
        let (train, test, cfg) = small_task(81, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let h = sim.run(&mut FedSam::new(0.05));
        assert!(h.final_accuracy(1) > 0.5, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn mofedsam_learns() {
        let (train, test, cfg) = small_task(82, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.1);
        let h = sim.run(&mut MoFedSam::new(0.05, 0.1));
        assert!(h.final_accuracy(1) > 0.45, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn fedspeed_and_fedsmoo_learn() {
        let (train, test, cfg) = small_task(83, 1.0);
        let clients = cfg.clients;
        let sim = build_sim(&train, &test, cfg, 0.6);
        let h1 = sim.run(&mut FedSpeed::new(0.05, 0.01));
        assert!(
            h1.final_accuracy(1) > 0.45,
            "FedSpeed acc {}",
            h1.final_accuracy(1)
        );
        let h2 = sim.run(&mut FedSmoo::new(0.05, 0.01, clients));
        assert!(
            h2.final_accuracy(1) > 0.45,
            "FedSMOO acc {}",
            h2.final_accuracy(1)
        );
    }

    #[test]
    fn fedlesam_learns() {
        let (train, test, cfg) = small_task(84, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let h = sim.run(&mut FedLesam::new(0.05));
        assert!(h.final_accuracy(1) > 0.5, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn sam_perturbation_changes_trajectory() {
        let (train, test, cfg) = small_task(85, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let h_small = sim.run(&mut FedSam::new(1e-6));
        let h_big = sim.run(&mut FedSam::new(0.5));
        let diverged = h_small
            .records
            .iter()
            .zip(&h_big.records)
            .any(|(a, b)| a.train_loss != b.train_loss);
        assert!(diverged, "rho had no effect");
    }
}
