//! Metrics survive checkpoint/resume: a run interrupted at round `r`
//! and resumed from the serialized checkpoint finishes with a metrics
//! snapshot identical to the uninterrupted run's. Counters, gauges, and
//! histograms all accumulate across the resume boundary because
//! [`ServerCheckpoint`] carries `History::metrics` (format v2) and
//! `restore` reloads it into the attached registry.
//!
//! No tracer is attached: phase-tick histograms need clock reads, and a
//! wall clock would differ run to run. The registry-only metrics
//! (bytes, update norms, α, counters, per-class accuracy) are pure
//! functions of the simulation and must round-trip exactly.

use fedwcm_data::dataset::Dataset;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_fl::algorithm::{
    server_step, state_from_vec, state_to_vec, uniform_average, RoundInput, RoundLog, StateError,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_fl::{FederatedAlgorithm, FlConfig, ServerCheckpoint, Simulation};
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;
use fedwcm_trace::MetricsRegistry;
use std::sync::Arc;

/// Minimal averaging algorithm with (trivial) state capture so
/// `run_until` can checkpoint it.
struct AvgWithState {
    rounds_seen: Vec<f32>,
}

impl AvgWithState {
    fn new() -> Self {
        AvgWithState {
            rounds_seen: vec![0.0],
        }
    }
}

impl FederatedAlgorithm for AvgWithState {
    fn name(&self) -> String {
        "avg-with-state".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        run_local_sgd(env, global, &spec, |_, _, _| {})
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());
        self.rounds_seen[0] += 1.0;
        RoundLog::default()
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(state_from_vec(&self.rounds_seen))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.rounds_seen = state_to_vec(bytes)?;
        Ok(())
    }
}

fn make_data() -> (Dataset, Dataset) {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 50, 0.5);
    (spec.generate_train(&counts, 55), spec.generate_test(55))
}

fn make_cfg() -> FlConfig {
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 6;
    cfg.participation = 0.5;
    cfg.rounds = 6;
    cfg.local_epochs = 1;
    cfg.batch_size = 20;
    cfg.eval_every = 2;
    cfg.seed = 33;
    cfg
}

fn build_sim<'a>(
    train: &'a Dataset,
    test: &'a Dataset,
    registry: Arc<MetricsRegistry>,
) -> Simulation<'a> {
    let cfg = make_cfg();
    let views = paper_partition(train, cfg.clients, 0.5, cfg.seed).views(train);
    Simulation::new(
        cfg,
        train,
        test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(808);
            mlp(64, &[16], 10, &mut rng)
        }),
    )
    .with_metrics(registry)
}

#[test]
fn resumed_metrics_equal_uninterrupted_metrics() {
    let (train, test) = make_data();

    // Uninterrupted run.
    let full_sim = build_sim(&train, &test, Arc::new(MetricsRegistry::new()));
    let full = full_sim.run(&mut AvgWithState::new());
    assert!(!full.metrics.is_empty(), "registry should have populated");

    // Interrupted at round 3, serialized through bytes, resumed in a
    // "fresh process": a new Simulation with a brand-new registry.
    let sim_a = build_sim(&train, &test, Arc::new(MetricsRegistry::new()));
    let ckpt = sim_a
        .run_until(&mut AvgWithState::new(), 3)
        .expect("capture");
    let bytes = ckpt.to_bytes();
    let restored = ServerCheckpoint::from_bytes(&bytes).expect("roundtrip");

    // The checkpoint carries the partial snapshot (3 of 6 rounds).
    let partial = restored.history().metrics.clone();
    assert_eq!(
        partial.get("fl.rounds"),
        Some(&fedwcm_trace::MetricValue::Counter(3))
    );

    let sim_b = build_sim(&train, &test, Arc::new(MetricsRegistry::new()));
    let resumed = sim_b
        .resume(&mut AvgWithState::new(), &restored)
        .expect("resume");

    assert_eq!(
        full.metrics, resumed.metrics,
        "metrics must accumulate across the resume boundary exactly"
    );
    assert_eq!(
        resumed.metrics.get("fl.rounds"),
        Some(&fedwcm_trace::MetricValue::Counter(6))
    );
}

#[test]
fn checkpoint_bytes_roundtrip_preserves_metrics() {
    let (train, test) = make_data();
    let sim = build_sim(&train, &test, Arc::new(MetricsRegistry::new()));
    let ckpt = sim.run_until(&mut AvgWithState::new(), 2).expect("capture");
    let restored = ServerCheckpoint::from_bytes(&ckpt.to_bytes()).expect("roundtrip");
    assert_eq!(
        ckpt.history().metrics,
        restored.history().metrics,
        "serialization must preserve the snapshot bitwise"
    );
    // Histograms survive with their full shape.
    let norm = restored
        .history()
        .metrics
        .get("fl.update_norm")
        .expect("update-norm histogram");
    match norm {
        fedwcm_trace::MetricValue::Histogram(h) => {
            assert_eq!(h.counts.len(), h.bounds.len() + 1);
            assert_eq!(h.total, 2, "one observation per aggregated round");
        }
        other => panic!("expected histogram, got {other:?}"),
    }
}

#[test]
fn runs_without_registry_leave_metrics_empty() {
    let (train, test) = make_data();
    let cfg = make_cfg();
    let views = paper_partition(&train, cfg.clients, 0.5, cfg.seed).views(&train);
    let sim = Simulation::new(
        cfg,
        &train,
        &test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(808);
            mlp(64, &[16], 10, &mut rng)
        }),
    );
    let h = sim.run(&mut AvgWithState::new());
    assert!(h.metrics.is_empty(), "no registry → no metrics");
}
