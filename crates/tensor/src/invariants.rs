//! Runtime invariant checks behind the `debug_invariants` cargo feature.
//!
//! The static gates in `fedwcm-lint` catch hazards visible in source;
//! this module catches the ones only visible at run time — NaN/Inf
//! creeping through a training step, or shape drift between layers and
//! at server aggregation. Checks are **zero-cost when the feature is
//! off**: every entry point starts with `if !ENABLED { return; }` on a
//! `const`, so release builds compile the bodies away entirely, and the
//! context closures are only invoked on failure.
//!
//! Enable with `cargo test --features debug_invariants` (the `fedwcm-nn`
//! and `fedwcm-fl` features of the same name forward here).

/// Whether this build carries the runtime invariant checks.
///
/// `true` iff the crate was compiled with `--features debug_invariants`.
/// Callers can branch on this to skip building check inputs entirely.
pub const ENABLED: bool = cfg!(feature = "debug_invariants");

/// Panic if any value in `xs` is NaN or infinite, naming the offending
/// index and the caller-provided context. No-op when [`ENABLED`] is
/// `false`; `ctx` is only evaluated on failure.
pub fn check_finite(xs: &[f32], ctx: impl FnOnce() -> String) {
    if !ENABLED {
        return;
    }
    for (i, &x) in xs.iter().enumerate() {
        if !x.is_finite() {
            // lint:allow(panic-freedom) failing fast is this module's
            // entire purpose: debug_invariants builds trade crash-on-NaN
            // for pinpoint blame, and release builds never reach here.
            panic!(
                "debug_invariants: non-finite value {x} at index {i} in {}",
                ctx()
            );
        }
    }
}

/// Panic if `actual != expected`, naming both and the caller-provided
/// context. No-op when [`ENABLED`] is `false`; `ctx` is only evaluated
/// on failure.
pub fn check_len(actual: usize, expected: usize, ctx: impl FnOnce() -> String) {
    if !ENABLED {
        return;
    }
    if actual != expected {
        // lint:allow(panic-freedom) same fail-fast contract as
        // check_finite: this path exists only in debug_invariants builds.
        panic!(
            "debug_invariants: length mismatch in {}: got {actual}, expected {expected}",
            ctx()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_matches_feature() {
        assert_eq!(ENABLED, cfg!(feature = "debug_invariants"));
    }

    #[test]
    fn finite_data_passes() {
        check_finite(&[0.0, -1.5, 3.0e20], unreachable_ctx);
        check_len(4, 4, unreachable_ctx);
    }

    fn unreachable_ctx() -> String {
        panic!("ctx must not be evaluated on success");
    }

    #[cfg(feature = "debug_invariants")]
    #[test]
    fn non_finite_panics_with_context() {
        let err = std::panic::catch_unwind(|| {
            check_finite(&[1.0, f32::NAN], || "layer dense0 output".to_string())
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("non-finite"), "{msg}");
        assert!(msg.contains("index 1"), "{msg}");
        assert!(msg.contains("layer dense0 output"), "{msg}");
    }

    #[cfg(feature = "debug_invariants")]
    #[test]
    fn length_mismatch_panics_with_context() {
        let err = std::panic::catch_unwind(|| check_len(3, 5, || "delta".to_string())).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("got 3, expected 5"), "{msg}");
    }

    #[cfg(not(feature = "debug_invariants"))]
    #[test]
    fn disabled_checks_are_noops() {
        check_finite(&[f32::NAN, f32::INFINITY], unreachable_ctx);
        check_len(1, 2, unreachable_ctx);
    }
}
