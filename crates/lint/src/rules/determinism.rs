//! `determinism-*`: the workspace's headline guarantee is bitwise
//! determinism across thread counts and runs. These rules forbid the
//! standard library's nondeterminism sources in library crates:
//!
//! * `determinism-collections` — `HashMap` / `HashSet`. Their default
//!   hasher is seeded per process, so iteration order varies run to
//!   run; a single hash-ordered fold in an aggregation path silently
//!   breaks reproducibility. Use `BTreeMap` / `BTreeSet` / `Vec`.
//! * `determinism-time` — `Instant::now` / `SystemTime::now`. Wall
//!   clocks must never feed simulation state.
//! * `determinism-std-time` — any mention of `std::time` outside the
//!   blessed `fedwcm-trace` clock module. With the `Clock` trait
//!   available there is no reason for library code to even import
//!   `std::time` types; routing every time read through
//!   `fedwcm_trace::WallClock` keeps the sanctioned wall-time surface
//!   to a single audited file.
//! * `determinism-env` — `env::var` outside the blessed configuration
//!   entry points; ambient environment reads make behaviour depend on
//!   invisible state.
//! * `determinism-threads` — `thread::available_parallelism` outside
//!   `fedwcm-parallel`, the single crate allowed to observe the host's
//!   core count (everything else takes an explicit thread budget).
//!
//! Test code (`#[cfg(test)]` / `#[test]`) is exempt: tests may time
//! themselves or build scratch hash maps without affecting simulation
//! results.

use crate::engine::{Diagnostic, FileCtx, LintConfig, THREADS_BLESSED_CRATE};
use crate::rules::{blessed_paths_list, is_blessed};

/// Run the `determinism-*` family over one file.
pub fn check_determinism(ctx: &FileCtx, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    if !ctx.is_lib_crate() {
        return;
    }
    let toks = &ctx.toks;
    // `std::time::Instant::now()` mentions `std::time` once but a line
    // like `std::time::Duration::from_secs(1) + std::time::Duration::ZERO`
    // would fire twice; report once per line.
    let mut last_std_time_line = 0usize;
    for (k, &i) in ctx.code.iter().enumerate() {
        let t = &toks[i];
        if t.kind != crate::lexer::TokKind::Ident || ctx.is_test_line(t.line) {
            continue;
        }
        let next2_is = |a: char, b: char, name: &str| -> bool {
            ctx.code.get(k + 1).is_some_and(|&j| toks[j].is_punct(a))
                && ctx.code.get(k + 2).is_some_and(|&j| toks[j].is_punct(b))
                && ctx.code.get(k + 3).is_some_and(|&j| toks[j].is_ident(name))
        };
        match t.text.as_str() {
            "HashMap" | "HashSet" if cfg.is_enabled("determinism-collections") => {
                diags.push(ctx.diag(
                    "determinism-collections",
                    t.line,
                    format!(
                        "`{}` has per-process-seeded iteration order; use BTreeMap/BTreeSet/Vec \
                         so aggregation and reporting stay bitwise deterministic",
                        t.text
                    ),
                ));
            }
            "Instant" | "SystemTime"
                if cfg.is_enabled("determinism-time") && next2_is(':', ':', "now") =>
            {
                diags.push(ctx.diag(
                    "determinism-time",
                    t.line,
                    format!(
                        "`{}::now` reads the wall clock; simulation state must not depend on time",
                        t.text
                    ),
                ));
            }
            "std"
                if cfg.is_enabled("determinism-std-time")
                    && next2_is(':', ':', "time")
                    && !is_blessed("determinism-std-time", &ctx.path)
                    && t.line != last_std_time_line =>
            {
                last_std_time_line = t.line;
                diags.push(ctx.diag(
                    "determinism-std-time",
                    t.line,
                    format!(
                        "`std::time` may only be named in the blessed clock module ({}); \
                         take time through fedwcm-trace's `Clock` trait instead",
                        blessed_paths_list("determinism-std-time")
                    ),
                ));
            }
            "env"
                if cfg.is_enabled("determinism-env")
                    && next2_is(':', ':', "var")
                    && !is_blessed("determinism-env", &ctx.path) =>
            {
                diags.push(ctx.diag(
                    "determinism-env",
                    t.line,
                    format!(
                        "`env::var` outside the blessed config entry points ({}) makes behaviour \
                         depend on ambient process state",
                        blessed_paths_list("determinism-env")
                    ),
                ));
            }
            "available_parallelism"
                if cfg.is_enabled("determinism-threads")
                    && !ctx.in_crate(THREADS_BLESSED_CRATE) =>
            {
                diags.push(ctx.diag(
                    "determinism-threads",
                    t.line,
                    "`thread::available_parallelism` may only be observed inside fedwcm-parallel; \
                     take an explicit thread budget instead"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}
