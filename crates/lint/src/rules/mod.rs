//! The rule families.
//!
//! The v1 families walk a [`FileCtx`](crate::engine::FileCtx) token
//! stream — **token sequences over non-comment tokens**, so nothing
//! ever fires inside a comment, string, or char literal (the lexer
//! guarantees it). The v2 families ([`float_order`], [`rng_hygiene`],
//! [`lock_order`], [`cast_soundness`]) walk the parsed syntax tree
//! instead, and the first three run as a single workspace pass over
//! every file at once so they can follow calls across crates. The v3
//! families ([`checkpoint_symmetry`], [`discount_once`],
//! [`metrics_registry`]) build on [`crate::dataflow`] for
//! interprocedural protocol conformance, and the concurrency family
//! ([`parallel_escape`]) reuses all three layers — parser, call graph,
//! dataflow — as the static half of the `race_check` soundness story.

use crate::engine::{Diagnostic, FileCtx, LintConfig};

mod cast_soundness;
mod checkpoint_symmetry;
mod determinism;
mod discount_once;
mod doc_coverage;
mod float_order;
mod lock_order;
mod metrics_registry;
mod panic_freedom;
mod parallel_escape;
mod rng_hygiene;
mod unsafe_safety;

pub use cast_soundness::check_cast_soundness;
pub use checkpoint_symmetry::check_checkpoint_symmetry;
pub use determinism::check_determinism;
pub use discount_once::check_discount_once;
pub use doc_coverage::check_doc_coverage;
pub use float_order::check_float_order;
pub use lock_order::check_lock_order;
pub use metrics_registry::check_metrics_registry;
pub use panic_freedom::check_panic_freedom;
pub use parallel_escape::{check_parallel_escape, check_send_sync_safety};
pub use rng_hygiene::check_rng_hygiene;
pub use unsafe_safety::check_unsafe_safety;

/// One blessed-file exemption: `rule` does not fire in `path`.
///
/// Consolidating every per-file escape hatch into this one table keeps
/// the exemption surface auditable: the fixtures crate asserts each
/// path exists on disk (a renamed module cannot leave a stale
/// blessing), and `--rules` prints the table alongside the taxonomy.
#[derive(Debug)]
pub struct Blessing {
    /// The exempted rule id.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: &'static str,
    /// Why the exemption is sound — shown by `--rules`.
    pub why: &'static str,
}

/// Every blessed-file exemption, in rule-then-path order.
pub const BLESSINGS: &[Blessing] = &[
    Blessing {
        rule: "determinism-env",
        path: "crates/fl/src/config.rs",
        why: "the one config entry point allowed to read process environment variables",
    },
    Blessing {
        rule: "determinism-std-time",
        path: "crates/trace/src/clock.rs",
        why: "the Clock trait's wall-clock implementation must name std::time to wrap it",
    },
];

/// Is `path` blessed for `rule`?
pub fn is_blessed(rule: &str, path: &str) -> bool {
    BLESSINGS.iter().any(|b| b.rule == rule && b.path == path)
}

/// Comma-separated blessed paths for `rule`, for diagnostics.
pub fn blessed_paths_list(rule: &str) -> String {
    BLESSINGS
        .iter()
        .filter(|b| b.rule == rule)
        .map(|b| b.path)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Run every enabled per-file rule family over one file.
pub fn run_all(ctx: &FileCtx, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    if cfg.is_enabled("unsafe-safety") {
        check_unsafe_safety(ctx, diags);
    }
    check_determinism(ctx, cfg, diags);
    if cfg.is_enabled("panic-freedom") {
        check_panic_freedom(ctx, diags);
    }
    if cfg.is_enabled("doc-coverage") {
        check_doc_coverage(ctx, diags);
    }
    if cfg.is_enabled("cast-soundness") {
        check_cast_soundness(ctx, diags);
    }
    if cfg.is_enabled("parallel-escape-send-sync") {
        check_send_sync_safety(ctx, diags);
    }
}

/// Run the cross-file rule families over the whole file set at once.
/// The call graph is built once and shared.
pub fn run_workspace(files: &[FileCtx], cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    let float = cfg.is_enabled("float-reduction-order");
    let rng = cfg.is_enabled("rng-stream-hygiene");
    let lock = cfg.is_enabled("lock-order");
    let ckpt = cfg.is_enabled("checkpoint-symmetry");
    let discount = cfg.is_enabled("discount-once");
    let metrics = cfg.is_enabled("metrics-registry");
    let escape =
        cfg.is_enabled("parallel-escape-capture") || cfg.is_enabled("parallel-escape-index");
    if metrics {
        check_metrics_registry(files, diags);
    }
    if !(float || rng || lock || ckpt || discount || escape) {
        return;
    }
    let cg = crate::callgraph::CallGraph::build(files);
    if float {
        check_float_order(files, &cg, diags);
    }
    if escape {
        check_parallel_escape(files, &cg, cfg, diags);
    }
    if rng {
        check_rng_hygiene(files, &cg, diags);
    }
    if lock {
        check_lock_order(files, &cg, diags);
    }
    if ckpt {
        check_checkpoint_symmetry(files, &cg, diags);
    }
    if discount {
        check_discount_once(files, &cg, diags);
    }
}
