//! Dense f32 tensor primitives for the FedWCM reproduction.
//!
//! This crate is the numeric substrate under [`fedwcm-nn`]: a row-major
//! dense [`Tensor`], BLAS-1 style vector kernels ([`ops`]), a cache-blocked
//! matrix multiply ([`matmul`]), and im2col lowering for convolutions
//! ([`im2col`]).
//!
//! Design notes (per the HPC guides):
//! * storage is a single flat `Vec<f32>` — no per-element boxing, no
//!   strides beyond row-major, so the hot kernels vectorise;
//! * kernels take `&[f32]`/`&mut [f32]` slices so the NN parameter arena
//!   can reuse them without copies;
//! * all shape errors are programmer errors and panic with context rather
//!   than returning `Result`, matching ndarray-style numerical libraries.
//!
//! With `--features debug_invariants`, the [`invariants`] module adds
//! runtime finiteness/shape checks that higher layers (`fedwcm-nn`,
//! `fedwcm-fl`) hook into; without the feature they cost nothing.

#![warn(missing_docs)]

pub mod im2col;
pub mod invariants;
pub mod matmul;
pub mod ops;
pub mod tensor;

pub use matmul::{matmul, matmul_a_bt, matmul_at_b};
pub use tensor::Tensor;
