//! Property-based tests for the NN library: loss-function invariants and
//! model algebra that must hold for arbitrary inputs.

use fedwcm_nn::loss::{softmax_rows, BalancedSoftmax, CrossEntropy, FocalLoss, LdamLoss, Loss};
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;
use fedwcm_tensor::Tensor;
use proptest::prelude::*;

fn logits_and_labels(batch: usize, classes: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = Xoshiro256pp::seed_from(seed);
    let logits = Tensor::randn(&[batch, classes], 2.0, &mut rng);
    let labels: Vec<usize> = (0..batch)
        .map(|i| (i * 7 + seed as usize) % classes)
        .collect();
    (logits, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn softmax_rows_are_distributions(batch in 1usize..8, classes in 2usize..12, seed in any::<u64>()) {
        let (logits, _) = logits_and_labels(batch, classes, seed);
        let p = softmax_rows(&logits);
        for r in 0..batch {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(p.row(r).iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn losses_nonnegative_and_grads_sum_to_zero(
        batch in 1usize..6, classes in 2usize..10, seed in any::<u64>(),
    ) {
        let (logits, labels) = logits_and_labels(batch, classes, seed);
        let counts: Vec<usize> = (0..classes).map(|c| 10 * (c + 1)).collect();
        let losses: Vec<Box<dyn Loss>> = vec![
            Box::new(CrossEntropy),
            Box::new(FocalLoss { gamma: 2.0 }),
            Box::new(BalancedSoftmax::from_counts(&counts)),
            Box::new(LdamLoss::from_counts(&counts, 0.5, 5.0)),
        ];
        for loss in &losses {
            let (l, grad) = loss.loss_and_grad(&logits, &labels);
            prop_assert!(l >= -1e-6 && l.is_finite());
            // Softmax-family logits-gradients sum to zero per row.
            for r in 0..batch {
                let s: f32 = grad.row(r).iter().sum();
                prop_assert!(s.abs() < 1e-4, "row grad sum {s}");
            }
        }
    }

    #[test]
    fn ce_shift_invariance(batch in 1usize..5, classes in 2usize..8, shift in -10.0f32..10.0, seed in any::<u64>()) {
        let (logits, labels) = logits_and_labels(batch, classes, seed);
        let mut shifted = logits.clone();
        for x in shifted.as_mut_slice() {
            *x += shift;
        }
        let (l1, g1) = CrossEntropy.loss_and_grad(&logits, &labels);
        let (l2, g2) = CrossEntropy.loss_and_grad(&shifted, &labels);
        prop_assert!((l1 - l2).abs() < 1e-4);
        prop_assert!(g1.max_abs_diff(&g2) < 1e-5);
    }

    #[test]
    fn ce_decreases_along_negative_gradient(batch in 1usize..5, classes in 2usize..8, seed in any::<u64>()) {
        let (logits, labels) = logits_and_labels(batch, classes, seed);
        let (l0, grad) = CrossEntropy.loss_and_grad(&logits, &labels);
        let mut stepped = logits.clone();
        for (z, g) in stepped.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *z -= 0.1 * g;
        }
        let (l1, _) = CrossEntropy.loss_and_grad(&stepped, &labels);
        prop_assert!(l1 <= l0 + 1e-6, "loss {l0} -> {l1}");
    }

    #[test]
    fn model_forward_is_batch_consistent(seed in any::<u64>(), batch in 2usize..6) {
        // Evaluating a batch must equal evaluating each row separately.
        let mut rng = Xoshiro256pp::seed_from(seed);
        let mut model = mlp(6, &[8], 4, &mut rng);
        let x = Tensor::randn(&[batch, 6], 1.0, &mut rng);
        let full = model.forward(&x, false);
        for r in 0..batch {
            let row = Tensor::from_vec(x.row(r).to_vec(), &[1, 6]);
            let single = model.forward(&row, false);
            for (a, b) in full.row(r).iter().zip(single.row(0)) {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn set_params_then_get_is_identity(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let mut model = mlp(5, &[7], 3, &mut rng);
        let new: Vec<f32> = (0..model.param_len()).map(|i| (i as f32 * 0.37).sin()).collect();
        model.set_params(&new);
        prop_assert_eq!(model.params(), new.as_slice());
    }

    #[test]
    fn checkpoint_roundtrip(seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let model = mlp(5, &[4], 3, &mut rng);
        let bytes = fedwcm_nn::serialize::save_params(&model);
        let mut rng2 = Xoshiro256pp::seed_from(seed.wrapping_add(1));
        let mut other = mlp(5, &[4], 3, &mut rng2);
        fedwcm_nn::serialize::load_params(&mut other, &bytes).unwrap();
        prop_assert_eq!(model.params(), other.params());
    }
}
