//! Figure 4 (and its Appendix-B twin, Fig. 17): FedCM's average neuron
//! concentration and test accuracy across six imbalance factors — the
//! minority-collapse signature: spikes in concentration synchronised with
//! accuracy crashes as IF shrinks.

use fedwcm_analysis::spikes::spike_rate;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::collapse::{print_trace_csv, run_with_concentration};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let ifs = [1.0, 0.5, 0.1, 0.06, 0.04, 0.01];
    println!("# Fig.4: FedCM neuron concentration + accuracy across IF settings (beta=0.1)");
    for imbalance in ifs {
        let exp = ExpConfig::new(DatasetPreset::Cifar10, imbalance, 0.1, cli.scale, cli.seed);
        let trace = run_with_concentration(&exp, Method::FedCm, &cli, 1);
        print_trace_csv(
            &format!("FedCM mean concentration, IF={imbalance}"),
            &["mean_concentration".into()],
            &trace
                .mean_concentration
                .iter()
                .map(|&(r, c)| (r, vec![c]))
                .collect::<Vec<_>>(),
        );
        let acc_rows: Vec<(usize, Vec<f64>)> = trace
            .history
            .accuracy_series()
            .into_iter()
            .map(|(r, a)| (r, vec![a]))
            .collect();
        print_trace_csv(
            &format!("FedCM test accuracy, IF={imbalance}"),
            &["accuracy".into()],
            &acc_rows,
        );
        let conc: Vec<f64> = trace.mean_concentration.iter().map(|&(_, c)| c).collect();
        println!(
            "# summary IF={imbalance}: final-acc={:.4} concentration-spike-rate={:.3}",
            trace.history.final_accuracy(3),
            spike_rate(&conc, 2.0, 0.02),
        );
    }
    println!(
        "\nExpected shape (paper Fig. 4): balanced IF=1 shows a smooth\n\
         concentration rise; smaller IF shows more frequent/violent spikes\n\
         with synchronised accuracy drops."
    );
}
