//! Mime-lite (Karimireddy et al., 2020): mimicking centralized momentum.
//!
//! Mime keeps the optimizer state (a momentum buffer) at the **server**
//! and freezes it during local steps: every client's update direction is
//! `d = a·g_i(y) + (1−a)·m`, with `m` refreshed at the server from the
//! aggregated *round-start* gradients. The difference from FedCM is where
//! the momentum is measured: Mime's `m` tracks gradients at the global
//! iterate `x_r` (clients send them separately), not the average local
//! update direction.
//!
//! "Lite" simplification (documented): the full Mime also applies an
//! SVRG-style correction `g_i(y) − g_i(x) + ḡ(x)`; we keep the defining
//! frozen-server-momentum mechanism and approximate the round-start
//! gradient by each client's first-step mini-batch gradient (payload in
//! `ClientUpdate::extra`).

use fedwcm_fl::algorithm::{
    server_step, state_from_vec, state_to_vec, uniform_average, FederatedAlgorithm, RoundInput,
    RoundLog, StateError,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_nn::loss::CrossEntropy;

/// Mime-lite with momentum coefficient `beta` (buffer decay) and local
/// blend `a` (weight on the fresh local gradient).
pub struct MimeLite {
    /// Server-momentum decay β (typical 0.9).
    pub beta: f32,
    /// Local blend weight on the fresh gradient (typical 0.1, as FedCM).
    pub a: f32,
    momentum: Vec<f32>,
}

impl MimeLite {
    /// New Mime-lite.
    pub fn new(beta: f32, a: f32) -> Self {
        assert!((0.0..1.0).contains(&beta) && (0.0..=1.0).contains(&a));
        MimeLite {
            beta,
            a,
            momentum: Vec::new(),
        }
    }
}

impl FederatedAlgorithm for MimeLite {
    fn name(&self) -> String {
        "Mime-lite".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        let a = self.a;
        let momentum = &self.momentum;
        // Capture the first-step gradient as the round-start gradient
        // estimate for the server's momentum refresh.
        let mut first_grad: Vec<f32> = Vec::new();
        let mut update = run_local_sgd(env, global, &spec, |grad, _, step| {
            if step == 0 {
                first_grad = grad.to_vec();
            }
            if !momentum.is_empty() {
                for (g, m) in grad.iter_mut().zip(momentum) {
                    *g = a * *g + (1.0 - a) * m;
                }
            }
        });
        update.extra = Some(first_grad);
        update
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let dim = global.len();
        if self.momentum.is_empty() {
            self.momentum = vec![0.0f32; dim];
        }
        // Server momentum from round-start gradients: m ← β m + (1−β) ḡ(x_r).
        let inv = 1.0 / input.updates.len() as f32;
        let mut gbar = vec![0.0f32; dim];
        for u in &input.updates {
            let g = u
                .extra
                .as_ref()
                // lint:allow(panic-freedom) protocol contract: Mime's own
                // client_update always attaches the round-start gradient;
                // its absence means mismatched algorithm wiring.
                .expect("Mime update missing gradient payload");
            fedwcm_tensor::ops::axpy(inv, g, &mut gbar);
        }
        for (m, g) in self.momentum.iter_mut().zip(&gbar) {
            *m = self.beta * *m + (1.0 - self.beta) * g;
        }
        // Model update: plain averaging of local deltas.
        let mut dir = vec![0.0f32; dim];
        uniform_average(&input.updates, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());
        RoundLog {
            alpha: Some(self.a as f64),
            weights: None,
        }
    }

    // β and a are construction-time configuration; the frozen server
    // momentum is the only cross-round state.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(state_from_vec(&self.momentum))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.momentum = state_to_vec(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build_sim, small_task};

    #[test]
    fn learns_heterogeneous_task() {
        let (train, test, cfg) = small_task(141, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.1);
        let h = sim.run(&mut MimeLite::new(0.9, 0.1));
        assert!(h.final_accuracy(1) > 0.4, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn momentum_tracks_round_start_gradients() {
        let (train, test, mut cfg) = small_task(142, 1.0);
        cfg.rounds = 3;
        cfg.participation = 1.0;
        let sim = build_sim(&train, &test, cfg, 0.6);
        let mut algo = MimeLite::new(0.9, 0.1);
        let _ = sim.run(&mut algo);
        let norm: f32 = algo.momentum.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm > 0.0, "server momentum never refreshed");
    }

    #[test]
    fn a_one_with_beta_zero_still_trains() {
        let (train, test, cfg) = small_task(143, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let h = sim.run(&mut MimeLite::new(0.0, 1.0));
        assert!(h.final_accuracy(1) > 0.4, "acc {}", h.final_accuracy(1));
    }
}
