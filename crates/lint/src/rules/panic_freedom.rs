//! `panic-freedom`: non-test library code must not call
//! `.unwrap()` / `.expect(…)` or invoke `panic!` / `unimplemented!` /
//! `todo!`. In a federated simulation a single careless unwrap turns a
//! dropped client or a malformed checkpoint into a process crash; the
//! engine's containment paths exist precisely so those events degrade
//! gracefully instead.
//!
//! Total alternatives (`unwrap_or`, `unwrap_or_else`, `ok_or`,
//! `map_err`, `?`) are untouched, as are `assert!`-family macros —
//! validated preconditions with context are a feature, bare unwraps on
//! `Option`/`Result` are not. Contract panics that really are the right
//! behaviour (poisoned invariants, API misuse) must carry a scoped
//! `lint:allow(panic-freedom) <reason>` marker so the justification is
//! reviewable where the panic lives.

use crate::engine::{Diagnostic, FileCtx};

const RULE: &str = "panic-freedom";

/// Run the panic-freedom rule over one file.
pub fn check_panic_freedom(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if !ctx.is_lib_crate() {
        return;
    }
    let toks = &ctx.toks;
    for (k, &i) in ctx.code.iter().enumerate() {
        let t = &toks[i];
        if ctx.is_test_line(t.line) {
            continue;
        }
        // `.unwrap(` / `.expect(`
        if t.is_punct('.') {
            let name = match ctx.code.get(k + 1).map(|&j| &toks[j]) {
                Some(n) if n.is_ident("unwrap") || n.is_ident("expect") => n,
                _ => continue,
            };
            if ctx.code.get(k + 2).is_some_and(|&j| toks[j].is_punct('(')) {
                diags.push(ctx.diag(
                    RULE,
                    name.line,
                    format!(
                        "`.{}()` in library code can crash the simulation; propagate an error, \
                         use a total alternative, or justify with \
                         `lint:allow(panic-freedom) <reason>`",
                        name.text
                    ),
                ));
            }
            continue;
        }
        // `panic!` / `unimplemented!` / `todo!`
        if matches!(t.text.as_str(), "panic" | "unimplemented" | "todo")
            && ctx.code.get(k + 1).is_some_and(|&j| toks[j].is_punct('!'))
        {
            diags.push(ctx.diag(
                RULE,
                t.line,
                format!(
                    "`{}!` in library code; return an error or justify with \
                     `lint:allow(panic-freedom) <reason>`",
                    t.text
                ),
            ));
        }
    }
}
