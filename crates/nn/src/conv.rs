//! Convolution and pooling layers (im2col-lowered).
//!
//! Inputs stay rank-2 `[batch, c*h*w]`; each layer knows its spatial
//! geometry. This keeps the model plumbing uniform with the dense path.

use crate::layer::{he_std, init_weights_biases, Layer};
use fedwcm_stats::Xoshiro256pp;
use fedwcm_tensor::im2col::{col2im, im2col, ConvGeom};
use fedwcm_tensor::matmul::{matmul_at_b_into, matmul_into};
use fedwcm_tensor::Tensor;

/// 2-D convolution with square kernels, zero padding, shared stride.
///
/// Weights are `[c_out, c_in*kh*kw]` row-major plus `c_out` biases, so the
/// per-sample forward is one GEMM against the im2col patch matrix.
#[derive(Clone)]
pub struct Conv2d {
    geom: ConvGeom,
    c_out: usize,
    cached_cols: Vec<f32>, // [batch][patch_rows * patch_cols]
    cached_batch: usize,
}

impl Conv2d {
    /// New conv layer over input `[c_in, h, w]`.
    pub fn new(
        c_in: usize,
        h: usize,
        w: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        let geom = ConvGeom {
            c_in,
            h,
            w,
            kh: k,
            kw: k,
            stride,
            pad,
        };
        // Validate geometry eagerly.
        let _ = (geom.oh(), geom.ow());
        Conv2d {
            geom,
            c_out,
            cached_cols: Vec::new(),
            cached_batch: 0,
        }
    }

    /// Output channel count.
    pub fn c_out(&self) -> usize {
        self.c_out
    }

    /// Output spatial dims `(oh, ow)`.
    pub fn out_dims(&self) -> (usize, usize) {
        (self.geom.oh(), self.geom.ow())
    }

    fn weight_len(&self) -> usize {
        self.c_out * self.geom.patch_rows()
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn out_features(&self, in_features: usize) -> usize {
        assert_eq!(
            in_features,
            self.geom.input_len(),
            "conv input width mismatch"
        );
        self.c_out * self.geom.patch_cols()
    }

    fn param_len(&self) -> usize {
        self.weight_len() + self.c_out
    }

    fn init_params(&self, params: &mut [f32], rng: &mut Xoshiro256pp) {
        init_weights_biases(
            params,
            self.weight_len(),
            he_std(self.geom.patch_rows()),
            rng,
        );
    }

    fn forward(&mut self, params: &[f32], input: &Tensor, train: bool) -> Tensor {
        let batch = input.rows();
        assert_eq!(
            input.cols(),
            self.geom.input_len(),
            "conv forward width mismatch"
        );
        let (w, b) = params.split_at(self.weight_len());
        let pr = self.geom.patch_rows();
        let pc = self.geom.patch_cols();
        let mut out = Tensor::zeros(&[batch, self.c_out * pc]);
        let mut cols = vec![0.0f32; pr * pc];
        if train {
            self.cached_cols.clear();
            self.cached_cols.resize(batch * pr * pc, 0.0);
            self.cached_batch = batch;
        }
        for s in 0..batch {
            im2col(&self.geom, input.row(s), &mut cols);
            if train {
                self.cached_cols[s * pr * pc..(s + 1) * pr * pc].copy_from_slice(&cols);
            }
            let orow = out.row_mut(s);
            // [c_out, pr] · [pr, pc] -> [c_out, pc]
            matmul_into(w, &cols, orow, self.c_out, pr, pc);
            for (c, &bias) in b.iter().enumerate() {
                for y in &mut orow[c * pc..(c + 1) * pc] {
                    *y += bias;
                }
            }
        }
        out
    }

    fn backward(&mut self, params: &[f32], grad_params: &mut [f32], grad_out: &Tensor) -> Tensor {
        let batch = self.cached_batch;
        assert!(batch > 0, "conv backward without forward(train=true)");
        assert_eq!(grad_out.rows(), batch);
        let pr = self.geom.patch_rows();
        let pc = self.geom.patch_cols();
        assert_eq!(grad_out.cols(), self.c_out * pc);
        let (w, _) = params.split_at(self.weight_len());
        let (gw, gb) = grad_params.split_at_mut(self.weight_len());

        let mut grad_in = Tensor::zeros(&[batch, self.geom.input_len()]);
        let mut gcols = vec![0.0f32; pr * pc];
        for s in 0..batch {
            let go = grad_out.row(s); // [c_out, pc]
            let cols = &self.cached_cols[s * pr * pc..(s + 1) * pr * pc];
            // gW[c_out, pr] += go · colsᵀ  (via A·Bᵀ on [c_out,pc]·[pr,pc]ᵀ)
            fedwcm_tensor::matmul::matmul_a_bt_into(go, cols, gw, self.c_out, pc, pr);
            // gb[c] += Σ spatial go
            for (c, g) in gb.iter_mut().enumerate() {
                *g += go[c * pc..(c + 1) * pc].iter().sum::<f32>();
            }
            // gcols = Wᵀ · go  ([pr, c_out]·[c_out, pc])
            gcols.fill(0.0);
            matmul_at_b_into(w, go, &mut gcols, self.c_out, pr, pc);
            col2im(&self.geom, &gcols, grad_in.row_mut(s));
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Non-overlapping `f×f` average pooling over `[c, h, w]`.
#[derive(Clone)]
pub struct AvgPool2d {
    c: usize,
    h: usize,
    w: usize,
    f: usize,
}

impl AvgPool2d {
    /// New pooling layer; `h` and `w` must be divisible by `f`.
    pub fn new(c: usize, h: usize, w: usize, f: usize) -> Self {
        assert!(
            f > 0 && h.is_multiple_of(f) && w.is_multiple_of(f),
            "pool factor must divide dims"
        );
        AvgPool2d { c, h, w, f }
    }

    /// Output dims `(c, h/f, w/f)`.
    pub fn out_dims(&self) -> (usize, usize, usize) {
        (self.c, self.h / self.f, self.w / self.f)
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &'static str {
        "avgpool2d"
    }

    fn out_features(&self, in_features: usize) -> usize {
        assert_eq!(
            in_features,
            self.c * self.h * self.w,
            "pool input width mismatch"
        );
        self.c * (self.h / self.f) * (self.w / self.f)
    }

    fn forward(&mut self, _params: &[f32], input: &Tensor, _train: bool) -> Tensor {
        let batch = input.rows();
        let (oh, ow) = (self.h / self.f, self.w / self.f);
        let mut out = Tensor::zeros(&[batch, self.c * oh * ow]);
        let inv = 1.0 / (self.f * self.f) as f32;
        for s in 0..batch {
            let x = input.row(s);
            let o = out.row_mut(s);
            for c in 0..self.c {
                let xc = &x[c * self.h * self.w..];
                let oc = &mut o[c * oh * ow..(c + 1) * oh * ow];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for dy in 0..self.f {
                            let iy = oy * self.f + dy;
                            for dx in 0..self.f {
                                acc += xc[iy * self.w + ox * self.f + dx];
                            }
                        }
                        oc[oy * ow + ox] = acc * inv;
                    }
                }
            }
        }
        out
    }

    fn backward(&mut self, _params: &[f32], _grad_params: &mut [f32], grad_out: &Tensor) -> Tensor {
        let batch = grad_out.rows();
        let (oh, ow) = (self.h / self.f, self.w / self.f);
        assert_eq!(grad_out.cols(), self.c * oh * ow);
        let mut grad_in = Tensor::zeros(&[batch, self.c * self.h * self.w]);
        let inv = 1.0 / (self.f * self.f) as f32;
        for s in 0..batch {
            let go = grad_out.row(s);
            let gi = grad_in.row_mut(s);
            for c in 0..self.c {
                let goc = &go[c * oh * ow..(c + 1) * oh * ow];
                let gic = &mut gi[c * self.h * self.w..(c + 1) * self.h * self.w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = goc[oy * ow + ox] * inv;
                        for dy in 0..self.f {
                            let iy = oy * self.f + dy;
                            for dx in 0..self.f {
                                gic[iy * self.w + ox * self.f + dx] += g;
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Global average pooling `[c, h, w] → [c]`.
#[derive(Clone)]
pub struct GlobalAvgPool {
    c: usize,
    spatial: usize,
}

impl GlobalAvgPool {
    /// New global pooling over `[c, h, w]`.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        GlobalAvgPool { c, spatial: h * w }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &'static str {
        "gap"
    }

    fn out_features(&self, in_features: usize) -> usize {
        assert_eq!(
            in_features,
            self.c * self.spatial,
            "gap input width mismatch"
        );
        self.c
    }

    fn forward(&mut self, _params: &[f32], input: &Tensor, _train: bool) -> Tensor {
        let batch = input.rows();
        let mut out = Tensor::zeros(&[batch, self.c]);
        let inv = 1.0 / self.spatial as f32;
        for s in 0..batch {
            let x = input.row(s);
            let o = out.row_mut(s);
            for c in 0..self.c {
                o[c] = x[c * self.spatial..(c + 1) * self.spatial]
                    .iter()
                    .sum::<f32>()
                    * inv;
            }
        }
        out
    }

    fn backward(&mut self, _params: &[f32], _grad_params: &mut [f32], grad_out: &Tensor) -> Tensor {
        let batch = grad_out.rows();
        assert_eq!(grad_out.cols(), self.c);
        let mut grad_in = Tensor::zeros(&[batch, self.c * self.spatial]);
        let inv = 1.0 / self.spatial as f32;
        for s in 0..batch {
            let go = grad_out.row(s);
            let gi = grad_in.row_mut(s);
            for c in 0..self.c {
                let g = go[c] * inv;
                gi[c * self.spatial..(c + 1) * self.spatial].fill(g);
            }
        }
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_stats::rng::Rng;

    #[test]
    fn conv_identity_kernel_passthrough() {
        // 1×1 kernel with weight 1 reproduces the input channel.
        let mut conv = Conv2d::new(1, 3, 3, 1, 1, 1, 0);
        let params = vec![1.0, 0.0]; // w=1, b=0
        let x = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[1, 9]);
        let y = conv.forward(&params, &x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_known_sum_kernel() {
        // 2×2 all-ones kernel on a 2×2 input, no pad → single output = sum.
        let mut conv = Conv2d::new(1, 2, 2, 1, 2, 1, 0);
        let params = vec![1.0, 1.0, 1.0, 1.0, 0.5]; // bias 0.5
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let y = conv.forward(&params, &x, false);
        assert_eq!(y.as_slice(), &[10.5]);
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        let mut rng = Xoshiro256pp::seed_from(5);
        let mut conv = Conv2d::new(2, 5, 5, 3, 3, 1, 1);
        let mut params = vec![0.0; conv.param_len()];
        conv.init_params(&mut params, &mut rng);
        let x = Tensor::randn(&[2, 2 * 5 * 5], 1.0, &mut rng);
        let out_len = conv.out_features(2 * 5 * 5);
        let proj = Tensor::randn(&[2, out_len], 1.0, &mut rng);
        let objective = |p: &[f32], c: &mut Conv2d| -> f32 {
            let y = c.forward(p, &x, false);
            y.as_slice()
                .iter()
                .zip(proj.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let _ = conv.forward(&params, &x, true);
        let mut grads = vec![0.0; params.len()];
        let gx = conv.backward(&params, &mut grads, &proj);
        let eps = 1e-2;
        for i in (0..params.len()).step_by(17) {
            let mut p = params.clone();
            p[i] += eps;
            let up = objective(&p, &mut conv);
            p[i] -= 2.0 * eps;
            let down = objective(&p, &mut conv);
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads[i]).abs() < 0.1,
                "param {i}: fd {fd} vs {}",
                grads[i]
            );
        }
        // Spot-check input gradient.
        let xs = x.as_slice().to_vec();
        for i in (0..xs.len()).step_by(13) {
            let mut xp = xs.clone();
            xp[i] += eps;
            let t = Tensor::from_vec(xp.clone(), &[2, 50]);
            let up: f32 = {
                let y = conv.forward(&params, &t, false);
                y.as_slice()
                    .iter()
                    .zip(proj.as_slice())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            xp[i] -= 2.0 * eps;
            let t = Tensor::from_vec(xp, &[2, 50]);
            let down: f32 = {
                let y = conv.forward(&params, &t, false);
                y.as_slice()
                    .iter()
                    .zip(proj.as_slice())
                    .map(|(a, b)| a * b)
                    .sum()
            };
            let fd = (up - down) / (2.0 * eps);
            assert!((fd - gx.as_slice()[i]).abs() < 0.1, "input {i}");
        }
    }

    #[test]
    fn avgpool_forward_means() {
        let mut pool = AvgPool2d::new(1, 2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let y = pool.forward(&[], &x, false);
        assert_eq!(y.as_slice(), &[2.5]);
    }

    #[test]
    fn avgpool_backward_distributes() {
        let mut pool = AvgPool2d::new(1, 2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]);
        let _ = pool.forward(&[], &x, true);
        let go = Tensor::from_vec(vec![8.0], &[1, 1]);
        let gi = pool.backward(&[], &mut [], &go);
        assert_eq!(gi.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn gap_forward_backward() {
        let mut gap = GlobalAvgPool::new(2, 2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0], &[1, 8]);
        let y = gap.forward(&[], &x, true);
        assert_eq!(y.as_slice(), &[2.5, 10.0]);
        let go = Tensor::from_vec(vec![4.0, 8.0], &[1, 2]);
        let gi = gap.backward(&[], &mut [], &go);
        assert_eq!(&gi.as_slice()[..4], &[1.0; 4]);
        assert_eq!(&gi.as_slice()[4..], &[2.0; 4]);
    }

    #[test]
    fn avgpool_adjoint_property() {
        // <pool(x), y> == <x, pool_backward(y)>
        let mut rng = Xoshiro256pp::seed_from(6);
        let mut pool = AvgPool2d::new(3, 4, 4, 2);
        let x = Tensor::randn(&[2, 48], 1.0, &mut rng);
        let y = pool.forward(&[], &x, true);
        let g = Tensor::randn(&[2, 12], 1.0, &mut rng);
        let gi = pool.backward(&[], &mut [], &g);
        let lhs: f32 = y
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(gi.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3);
        let _ = rng.next_u64();
    }
}
