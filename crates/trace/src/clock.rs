//! Time sources: the deterministic [`LogicalClock`] and the
//! lint-blessed [`WallClock`].
//!
//! This file is the **only** place in the workspace's library crates
//! allowed to touch `std::time` (see `fedwcm-lint`'s
//! `TIME_BLESSED_FILES`); everything else reads time through the
//! [`Clock`] trait so a run can be made bitwise reproducible by
//! swapping in a [`LogicalClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone time source measured in *ticks*.
///
/// For [`LogicalClock`] a tick is "one read" — purely a sequence
/// number; for [`WallClock`] it is nanoseconds since the clock's base.
/// Implementations must be monotone non-decreasing per instance.
pub trait Clock: Send + Sync {
    /// The current tick. [`LogicalClock`] advances by one per call;
    /// [`WallClock`] reports elapsed nanoseconds.
    fn tick(&self) -> u64;

    /// A fresh clock of the same kind starting at zero, for use by a
    /// parallel task whose events are later replayed (see
    /// [`crate::SpanBuffer`]). Forked clocks share no state with their
    /// parent, so per-task tick sequences are deterministic regardless
    /// of scheduling.
    fn fork(&self) -> Box<dyn Clock>;
}

/// Deterministic clock: every [`Clock::tick`] returns the previous
/// count and advances by one. Traces stamped by a `LogicalClock` are a
/// pure function of the *sequence of reads*, so two identical seeded
/// runs produce byte-identical trace streams at any thread count.
#[derive(Debug, Default)]
pub struct LogicalClock(AtomicU64);

impl LogicalClock {
    /// A logical clock starting at tick 0.
    pub fn new() -> Self {
        LogicalClock(AtomicU64::new(0))
    }

    /// A logical clock resuming at `tick` — used when restoring
    /// clock-bearing state (e.g. the transport courier) from a
    /// checkpoint so the tick sequence continues exactly where the
    /// interrupted run left off.
    pub fn starting_at(tick: u64) -> Self {
        LogicalClock(AtomicU64::new(tick))
    }

    /// The current tick *without* advancing the clock. [`Clock::tick`]
    /// reads-and-advances; this is a pure observation for capturing the
    /// clock's position (e.g. into a checkpoint).
    pub fn current(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Clock for LogicalClock {
    fn tick(&self) -> u64 {
        // Relaxed is enough: each clock instance is read from one
        // logical owner (the engine thread, or one forked task).
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    fn fork(&self) -> Box<dyn Clock> {
        Box::new(LogicalClock::new())
    }
}

/// Wall clock: ticks are nanoseconds elapsed since construction. The
/// single sanctioned wall-time source — attach it only from binaries
/// and benches; library code must stay on [`LogicalClock`] (or no
/// tracer at all) so simulation behaviour never depends on time.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    base: Instant,
}

impl WallClock {
    /// A wall clock whose tick 0 is "now".
    pub fn new() -> Self {
        WallClock {
            // lint:allow(determinism-time) the one sanctioned wall-time
            // source; consumers are binaries/benches and timing never
            // feeds back into simulation state.
            base: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn tick(&self) -> u64 {
        let d = self.base.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }

    fn fork(&self) -> Box<dyn Clock> {
        Box::new(WallClock::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_counts_reads() {
        let c = LogicalClock::new();
        assert_eq!(c.tick(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
    }

    #[test]
    fn logical_fork_starts_at_zero() {
        let c = LogicalClock::new();
        c.tick();
        c.tick();
        let f = c.fork();
        assert_eq!(f.tick(), 0);
        // Forking never perturbs the parent sequence.
        assert_eq!(c.tick(), 2);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b >= a);
    }
}
