//! CLI for `fedwcm-lint`.
//!
//! ```text
//! cargo run -p fedwcm-lint                     # lint the whole workspace
//! cargo run -p fedwcm-lint -- --only panic-freedom
//! cargo run -p fedwcm-lint -- --disable doc-coverage
//! cargo run -p fedwcm-lint -- --root /path/to/workspace
//! cargo run -p fedwcm-lint -- --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or I/O error.

use fedwcm_lint::engine::{count_workspace_files, ALL_RULES};
use fedwcm_lint::{lint_workspace, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "fedwcm-lint — static analysis gates for the FedWCM workspace\n\
     \n\
     USAGE: fedwcm-lint [--root PATH] [--only RULE]... [--disable RULE]... [--list-rules]\n\
     \n\
     --root PATH      workspace root (default: walk up from cwd to the\n\
     \u{20}                workspace Cargo.toml)\n\
     --only RULE      run only the named rule (repeatable)\n\
     --disable RULE   skip the named rule (repeatable)\n\
     --list-rules     print the known rules and exit\n"
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut disable: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--only" => match it.next() {
                Some(r) => only.push(r.clone()),
                None => {
                    eprintln!("--only needs a rule name\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--disable" => match it.next() {
                Some(r) => disable.push(r.clone()),
                None => {
                    eprintln!("--disable needs a rule name\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument '{other}'\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let cfg = if only.is_empty() {
        let mut cfg = LintConfig::all();
        for r in &disable {
            if let Err(e) = cfg.disable(r) {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
        cfg
    } else {
        if !disable.is_empty() {
            eprintln!("--only and --disable are mutually exclusive");
            return ExitCode::from(2);
        }
        match LintConfig::only(only.iter().map(String::as_str)) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    };

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(find_workspace_root)) {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root; pass --root");
            return ExitCode::from(2);
        }
    };

    let diags = match lint_workspace(&root, &cfg) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("I/O error while linting: {e}");
            return ExitCode::from(2);
        }
    };
    let files = count_workspace_files(&root).unwrap_or(0);

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("fedwcm-lint: {files} files clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "fedwcm-lint: {} diagnostic{} across {files} files",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    }
}
