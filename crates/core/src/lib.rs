//! FedWCM — the paper's primary contribution.
//!
//! FedWCM repairs client-momentum federated learning (FedCM) under
//! long-tailed global class distributions with two per-round adaptive
//! mechanisms driven by global distribution knowledge:
//!
//! 1. **Weighted momentum aggregation** (Eq. 3–4): each client gets a
//!    *scarcity score* — how much of its data belongs to globally
//!    under-represented classes — and the round's momentum is aggregated
//!    with softmax(score/T) weights, where the temperature `T` shrinks as
//!    global imbalance grows (sharper weighting when it matters).
//! 2. **Adaptive momentum value** (Eq. 5): the momentum value `α_r`
//!    (weight on the fresh local gradient, `1−α_r` on the global momentum)
//!    rises from the FedCM base 0.1 as (a) the global distribution gets
//!    more imbalanced and (b) the currently sampled clients over-represent
//!    scarce classes — trusting informative fresh gradients over the
//!    possibly-biased accumulated momentum.
//!
//! ## Notation interpretation (documented deviations)
//!
//! * The paper's Eq. 5 factor `(1 − e^{−‖T/K‖₁})` is not fully specified;
//!   we implement `(1 − e^{−D·C})` with `D` the total-variation distance
//!   between the global and target distributions and `C` the class count —
//!   the "discrepancy scaled by the number of classes" the temperature
//!   paragraph describes. Limiting behaviour matches the paper's prose:
//!   balanced data ⇒ `α ≡ 0.1` (pure FedCM); heavy imbalance ⇒ `α → 1`
//!   (momentum influence fades instead of compounding the bias).
//! * Algorithm 1's `Δ_k = x_B − x_r` / `x ← x − η_g Δ` sign convention is
//!   normalised as described in `fedwcm-fl` (gradient-scale deltas).
//!
//! Modules: [`score`] (Eq. 3 + temperature), [`weighting`] (Eq. 4),
//! [`adaptive`] (Eq. 5), [`algorithm`] (FedWCM, Alg. 1), [`fedwcm_x`]
//! (FedWCM-X, Alg. 3 — quantity-skew generalisation).

#![warn(missing_docs)]

pub mod adaptive;
pub mod algorithm;
pub mod fedwcm_x;
pub mod score;
pub mod weighting;

pub use algorithm::{FedWcm, FedWcmOptions};
pub use fedwcm_x::FedWcmX;
pub use score::{
    client_scores, client_scores_literal, global_distribution, imbalance_degree, temperature,
};
pub use weighting::aggregation_weights;
