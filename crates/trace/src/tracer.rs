//! The [`Tracer`]: scoped spans and point events over a clock + sink,
//! plus the [`SpanBuffer`] / [`local`] machinery that keeps traces
//! deterministic through parallel sections.
//!
//! # Threading model
//!
//! A tracer's clock is ticked **only from the thread that owns the
//! serialized control flow** (the engine's round loop). Parallel tasks
//! never touch the main tracer; they record into a per-task
//! [`SpanBuffer`] installed through [`local::with_buffer`], each buffer
//! stamping with its own forked clock starting at 0. After the parallel
//! section the owner thread replays the buffers in a deterministic
//! order via [`Tracer::replay`], re-stamping each event with the main
//! clock and preserving the task-local tick as an `lt` field. Under a
//! [`crate::LogicalClock`] the resulting stream is byte-identical for
//! any thread count.

use crate::clock::{Clock, LogicalClock};
use crate::event::{Event, EventKind, Value};
use crate::lock_recover;
use crate::sink::Sink;
use std::cell::RefCell;
use std::sync::{Arc, Mutex};

struct TracerInner {
    clock: Box<dyn Clock>,
    sink: Arc<dyn Sink>,
}

/// Emits spans and events to a sink, stamped by a clock. Cheap to
/// clone (shared handle); a disabled tracer makes every operation a
/// no-op, so instrumented code needs no conditionals.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer over the given clock and sink.
    pub fn new(clock: Box<dyn Clock>, sink: Arc<dyn Sink>) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner { clock, sink })),
        }
    }

    /// The no-op tracer: every operation returns immediately.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// True when events actually reach a sink. Callers may use this to
    /// skip building field vectors on the hot path.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open a span: emits a `start` event carrying `fields` now and an
    /// `end` event when the returned guard drops.
    pub fn span(&self, name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard<'_> {
        self.emit(EventKind::Start, name, fields);
        SpanGuard { tracer: self, name }
    }

    /// Emit an instantaneous event.
    pub fn point(&self, name: &'static str, fields: Vec<(&'static str, Value)>) {
        self.emit(EventKind::Point, name, fields);
    }

    /// Emit a human-readable progress message (a `point` event named
    /// `info` with a `msg` field — what [`crate::ConsoleSink`] renders).
    pub fn info(&self, msg: impl Into<String>) {
        if self.enabled() {
            self.point(crate::names::INFO, vec![("msg", Value::Str(msg.into()))]);
        }
    }

    /// Read the tracer's clock, or `None` when disabled. Note that a
    /// read advances a [`LogicalClock`] by one tick, so call this the
    /// same number of times on every run path that should compare
    /// equal. Call only from the clock-owning thread.
    pub fn now(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.clock.tick())
    }

    /// A fresh clock of the tracer's kind for a parallel task's
    /// [`SpanBuffer`] (a [`LogicalClock`] when the tracer is disabled,
    /// so callers never need a special case).
    pub fn fork_clock(&self) -> Box<dyn Clock> {
        match &self.inner {
            Some(inner) => inner.clock.fork(),
            None => Box::new(LogicalClock::new()),
        }
    }

    /// Replay buffered task events into this tracer: each event is
    /// re-stamped with the main clock and keeps its task-local tick as
    /// an `lt` field. Call only from the clock-owning thread, in a
    /// deterministic buffer order.
    pub fn replay(&self, events: Vec<Event>) {
        let Some(inner) = &self.inner else { return };
        for mut e in events {
            let lt = e.t;
            e.t = inner.clock.tick();
            e.fields.push(("lt", Value::U64(lt)));
            inner.sink.record(&e);
        }
    }

    /// Flush the underlying sink.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }

    fn emit(&self, kind: EventKind, name: &'static str, fields: Vec<(&'static str, Value)>) {
        if let Some(inner) = &self.inner {
            let e = Event {
                t: inner.clock.tick(),
                kind,
                name,
                fields,
            };
            inner.sink.record(&e);
        }
    }
}

/// Closes its span (emits the `end` event) on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    name: &'static str,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.tracer.emit(EventKind::End, self.name, Vec::new());
    }
}

/// Event buffer for one parallel task: events are stamped with the
/// buffer's own forked clock (starting at 0) and later replayed into
/// the main tracer in a deterministic order (see [`Tracer::replay`]).
pub struct SpanBuffer {
    clock: Box<dyn Clock>,
    events: Mutex<Vec<Event>>,
}

impl SpanBuffer {
    /// A buffer stamping with `clock` (usually [`Tracer::fork_clock`]).
    pub fn new(clock: Box<dyn Clock>) -> Self {
        SpanBuffer {
            clock,
            events: Mutex::new(Vec::new()),
        }
    }

    /// Take the recorded events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *lock_recover(&self.events))
    }

    fn emit(&self, kind: EventKind, name: &'static str, fields: Vec<(&'static str, Value)>) {
        let e = Event {
            t: self.clock.tick(),
            kind,
            name,
            fields,
        };
        lock_recover(&self.events).push(e);
    }
}

/// Thread-local span recording for code running inside parallel tasks
/// (client local training). When no buffer is installed every call is a
/// cheap no-op, so library code can be instrumented unconditionally.
pub mod local {
    use super::{EventKind, SpanBuffer, Value};
    use std::sync::Arc;

    std::thread_local! {
        static BUFFER: super::RefCell<Option<Arc<SpanBuffer>>> =
            const { super::RefCell::new(None) };
    }

    /// Run `f` with `buf` installed as this thread's span buffer,
    /// restoring the previous buffer afterwards (also on panic).
    pub fn with_buffer<R>(buf: &Arc<SpanBuffer>, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<SpanBuffer>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                BUFFER.with(|b| *b.borrow_mut() = self.0.take());
            }
        }
        let prev = BUFFER.with(|b| b.borrow_mut().replace(Arc::clone(buf)));
        let _restore = Restore(prev);
        f()
    }

    /// True when a buffer is installed on this thread (lets hot paths
    /// skip building field vectors).
    pub fn active() -> bool {
        BUFFER.with(|b| b.borrow().is_some())
    }

    /// Open a span in the installed buffer (no-op without one). The
    /// guard emits the `end` event on drop.
    pub fn span(name: &'static str, fields: Vec<(&'static str, Value)>) -> LocalSpanGuard {
        let buf = BUFFER.with(|b| b.borrow().clone());
        if let Some(buf) = &buf {
            buf.emit(EventKind::Start, name, fields);
        }
        LocalSpanGuard { buf, name }
    }

    /// Emit an instantaneous event into the installed buffer (no-op
    /// without one).
    pub fn point(name: &'static str, fields: Vec<(&'static str, Value)>) {
        BUFFER.with(|b| {
            if let Some(buf) = &*b.borrow() {
                buf.emit(EventKind::Point, name, fields);
            }
        });
    }

    /// Closes its buffered span on drop.
    #[must_use = "dropping the guard immediately closes the span"]
    pub struct LocalSpanGuard {
        buf: Option<Arc<SpanBuffer>>,
        name: &'static str,
    }

    impl Drop for LocalSpanGuard {
        fn drop(&mut self) {
            if let Some(buf) = &self.buf {
                buf.emit(EventKind::End, self.name, Vec::new());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingSink;

    fn ring_tracer() -> (Tracer, Arc<RingSink>) {
        let ring = Arc::new(RingSink::new(1024));
        let t = Tracer::new(Box::new(LogicalClock::new()), ring.clone());
        (t, ring)
    }

    #[test]
    fn span_emits_start_and_end_in_order() {
        let (t, ring) = ring_tracer();
        {
            let _g = t.span("round", vec![("round", Value::U64(0))]);
            t.point("mark", vec![]);
        }
        let evs = ring.events();
        assert_eq!(evs.len(), 3);
        assert_eq!((evs[0].kind, evs[0].name), (EventKind::Start, "round"));
        assert_eq!((evs[1].kind, evs[1].name), (EventKind::Point, "mark"));
        assert_eq!((evs[2].kind, evs[2].name), (EventKind::End, "round"));
        assert_eq!(evs.iter().map(|e| e.t).collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn disabled_tracer_is_a_noop() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        let _g = t.span("round", vec![]);
        t.point("mark", vec![]);
        t.info("msg");
        t.flush();
    }

    #[test]
    fn replay_restamps_and_keeps_local_ticks() {
        let (t, ring) = ring_tracer();
        let buf = Arc::new(SpanBuffer::new(t.fork_clock()));
        local::with_buffer(&buf, || {
            let _g = local::span("local_epoch", vec![("epoch", Value::U64(0))]);
            local::point("step", vec![]);
        });
        assert!(!local::active());
        t.replay(buf.drain());
        let evs = ring.events();
        assert_eq!(evs.len(), 3);
        // Main-clock stamps are 0,1,2; local ticks preserved as `lt`.
        assert_eq!(evs.iter().map(|e| e.t).collect::<Vec<_>>(), [0, 1, 2]);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.fields.last(), Some(&("lt", Value::U64(i as u64))));
        }
    }

    #[test]
    fn local_calls_without_buffer_are_noops() {
        assert!(!local::active());
        let _g = local::span("local_epoch", vec![]);
        local::point("step", vec![]);
    }

    #[test]
    fn with_buffer_restores_previous() {
        let a = Arc::new(SpanBuffer::new(Box::new(LogicalClock::new())));
        let b = Arc::new(SpanBuffer::new(Box::new(LogicalClock::new())));
        local::with_buffer(&a, || {
            local::point("outer", vec![]);
            local::with_buffer(&b, || local::point("inner", vec![]));
            local::point("outer2", vec![]);
        });
        assert_eq!(a.drain().len(), 2);
        assert_eq!(b.drain().len(), 1);
    }
}
