//! Trace-determinism probe for CI.
//!
//! Runs a small federated simulation with a [`fedwcm_trace::Tracer`]
//! driven by a [`fedwcm_trace::LogicalClock`] and a JSONL sink on
//! stdout, plus a metrics registry whose snapshot is printed as a
//! footer. `cfg.threads = 0` defers the worker count to the
//! `FEDWCM_THREADS` env var; CI runs this at `FEDWCM_THREADS=1` and
//! `FEDWCM_THREADS=4` and diffs the bytes. Any difference means the
//! trace replay path (per-client span buffers re-stamped on the engine
//! thread) stopped being bitwise deterministic.
//!
//! With an optional file argument (`trace_probe trace.jsonl`) the JSONL
//! stream goes to that file instead of stdout — the shape `flprof` and
//! the CI profile-budget job consume — while the metrics footer stays
//! on stdout.

use fedwcm_algos::fedavg::FedAvg;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_fl::{FlConfig, Simulation};
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;
use fedwcm_trace::{JsonlSink, LogicalClock, MetricValue, MetricsRegistry, Sink, Tracer};
use std::sync::Arc;

fn main() {
    let sink: Arc<dyn Sink> = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
            Arc::new(JsonlSink::new(std::io::BufWriter::new(file)))
        }
        None => Arc::new(JsonlSink::new(std::io::stdout())),
    };

    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 40, 0.5);
    let train = spec.generate_train(&counts, 31);
    let test = spec.generate_test(31);

    let mut cfg = FlConfig::default_sim();
    cfg.clients = 6;
    cfg.participation = 0.5;
    cfg.rounds = 4;
    cfg.eval_every = 2;
    cfg.threads = 0; // defer to FEDWCM_THREADS

    let part = paper_partition(&train, cfg.clients, 0.5, cfg.seed);
    let views = part.views(&train);

    let tracer = Tracer::new(Box::new(LogicalClock::new()), sink);
    let registry = Arc::new(MetricsRegistry::new());
    let sim = Simulation::new(
        cfg,
        &train,
        &test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(1234);
            mlp(64, &[32], 10, &mut rng)
        }),
    )
    .with_tracer(tracer.clone())
    .with_metrics(Arc::clone(&registry));

    let history = sim.run(&mut FedAvg::new());
    tracer.flush();

    // Metrics footer at full precision: counters/gauges/histograms must
    // also be identical across thread counts.
    println!("--- metrics ---");
    for e in &history.metrics.entries {
        match &e.value {
            MetricValue::Counter(v) => println!("{} counter {v}", e.name),
            MetricValue::Gauge(v) => println!("{} gauge {:#018x}", e.name, v.to_bits()),
            MetricValue::Histogram(h) => println!(
                "{} histogram total={} sum_bits={:#018x} counts={:?} nan_rejected={}",
                e.name,
                h.total,
                h.sum.to_bits(),
                h.counts,
                h.nan_rejected
            ),
        }
    }
}
