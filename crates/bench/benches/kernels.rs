//! Kernel throughput benchmarks: the numeric substrate under every
//! federated round, plus the blocked-vs-naive matmul ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedwcm_stats::Xoshiro256pp;
use fedwcm_tensor::matmul::{matmul, matmul_a_bt, matmul_naive};
use fedwcm_tensor::{ops, Tensor};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = Xoshiro256pp::seed_from(1);
    for n in [32usize, 128] {
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul(black_box(&a), black_box(&b))));
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul_naive(black_box(&a), black_box(&b))));
        });
        group.bench_with_input(BenchmarkId::new("a_bt", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul_a_bt(black_box(&a), black_box(&b))));
        });
    }
    group.finish();
}

fn bench_blas1(c: &mut Criterion) {
    let mut group = c.benchmark_group("blas1");
    let n = 1 << 16;
    let x: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
    let mut y: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
    group.bench_function("axpy_64k", |b| {
        b.iter(|| {
            ops::axpy(black_box(0.5), black_box(&x), black_box(&mut y));
        });
    });
    group.bench_function("dot_64k", |b| {
        b.iter(|| black_box(ops::dot(black_box(&x), black_box(&y))));
    });
    group.bench_function("axpby_64k_momentum_blend", |b| {
        b.iter(|| {
            ops::axpby(
                black_box(0.1),
                black_box(&x),
                black_box(0.9),
                black_box(&mut y),
            );
        });
    });
    group.finish();
}

fn bench_weighted_sum(c: &mut Criterion) {
    // DESIGN.md ablation 4: deterministic parallel reduction vs sequential.
    let mut group = c.benchmark_group("aggregation");
    let n = 1 << 17;
    let parts: Vec<Vec<f32>> = (0..10)
        .map(|k| (0..n).map(|i| ((i + k) as f32).sin()).collect())
        .collect();
    let refs: Vec<(&[f32], f32)> = parts.iter().map(|p| (p.as_slice(), 0.1f32)).collect();
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("weighted_sum_10x128k", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let mut acc = vec![0.0f32; n];
                    fedwcm_parallel::weighted_sum_into(&mut acc, black_box(&refs), t);
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_blas1, bench_weighted_sum
);
criterion_main!(kernels);
