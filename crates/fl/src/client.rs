//! Client-side local training.
//!
//! [`ClientEnv`] is everything a sampled client can see during one round;
//! [`run_local_sgd`] is the generic local loop that almost every algorithm
//! specialises by supplying a *direction transform* — a closure that turns
//! the raw mini-batch gradient into the actual step direction (identity
//! for FedAvg, the momentum blend for FedCM/FedWCM, a prox correction for
//! FedProx, a control-variate correction for SCAFFOLD, …).

use crate::config::FlConfig;
use fedwcm_data::dataset::{ClientView, Dataset};
use fedwcm_data::sampler::{BalanceSampler, BatchSampler};
use fedwcm_nn::loss::Loss;
use fedwcm_nn::model::Model;
use fedwcm_stats::rng::Xoshiro256pp;
use fedwcm_trace::{local, names, Value};

/// Stream label for per-client sampling RNGs.
const STREAM_LOCAL: u64 = 0xC11E;

/// Factory that builds a fresh model instance (deterministic across calls;
/// the engine overwrites its parameters with the current global model).
pub type ModelFactory = dyn Fn() -> Model + Send + Sync;

/// What a sampled client sees during one round.
pub struct ClientEnv<'a> {
    /// Client id `k`.
    pub id: usize,
    /// Current round `r`.
    pub round: usize,
    /// The master dataset.
    pub dataset: &'a Dataset,
    /// This client's data view (`n_k`, `n_{k,c}`, indices).
    pub view: &'a ClientView,
    /// Simulation configuration.
    pub cfg: &'a FlConfig,
    /// Model constructor.
    pub factory: &'a ModelFactory,
}

impl<'a> ClientEnv<'a> {
    /// Build a model initialised to the given global parameters.
    pub fn model_from(&self, global: &[f32]) -> Model {
        let mut model = (self.factory)();
        model.set_params(global);
        model
    }

    /// The deterministic RNG stream for this `(round, client)` pair.
    pub fn rng(&self) -> Xoshiro256pp {
        Xoshiro256pp::stream(
            self.cfg.seed,
            &[STREAM_LOCAL, self.round as u64, self.id as u64],
        )
    }

    /// Mini-batches per epoch for this client: `ceil(n_k / batch_size)`,
    /// where `n_k` is the client's sample count (at least 1).
    pub fn batches_per_epoch(&self) -> usize {
        self.view.len().div_ceil(self.cfg.batch_size).max(1)
    }
}

/// The result of one client's local training.
#[derive(Clone, Debug)]
pub struct ClientUpdate {
    /// Client id `k`.
    pub client: usize,
    /// Gradient-scale normalised direction `(x_r − x_B) / (η_l·B_k)`;
    /// see the crate-level delta convention.
    pub delta: Vec<f32>,
    /// Local sample count `n_k`.
    pub num_samples: usize,
    /// Total local steps `B_k` (epochs × batches/epoch).
    pub num_batches: usize,
    /// Mean training loss across local steps.
    pub avg_loss: f32,
    /// Algorithm-specific payload (e.g. SCAFFOLD's control-variate delta).
    pub extra: Option<Vec<f32>>,
}

/// Configuration of the generic local SGD loop.
pub struct LocalSgdSpec<'a> {
    /// Classification loss to optimise.
    pub loss: &'a dyn Loss,
    /// Use the class-balanced resampler instead of shuffled epochs.
    pub balanced_sampler: bool,
    /// Local learning rate (usually `cfg.local_lr`; FedWCM-X rescales it).
    pub lr: f32,
    /// Local epochs (usually `cfg.local_epochs`).
    pub epochs: usize,
}

/// Run local SGD from the global model, transforming each raw gradient via
/// `direction(grad, current_params, step_index)` before stepping.
///
/// Returns the normalised delta (see crate docs) so aggregation operates at
/// gradient scale regardless of `B_k`.
pub fn run_local_sgd(
    env: &ClientEnv<'_>,
    global: &[f32],
    spec: &LocalSgdSpec<'_>,
    mut direction: impl FnMut(&mut [f32], &[f32], usize),
) -> ClientUpdate {
    assert!(!env.view.is_empty(), "sampled an empty client");
    assert!(spec.lr > 0.0 && spec.epochs >= 1);
    let mut model = env.model_from(global);
    let rng = env.rng();

    let batches_per_epoch = env.batches_per_epoch();
    let total_steps = batches_per_epoch * spec.epochs;
    let mut grads = vec![0.0f32; model.param_len()];
    let mut loss_acc = 0.0f64;

    // Both sampler paths run the same epochs × batches/epoch nest (the
    // balanced sampler draws a flat stream, so the epoch boundary is
    // only a bookkeeping notion there — the batch sequence is unchanged).
    // Each epoch is wrapped in a `local_epoch` span recorded into the
    // thread-local buffer the engine installs for traced runs; without a
    // buffer the span calls are no-ops.
    let mut step = 0usize;
    let mut run_epochs =
        |next_batch: &mut dyn FnMut() -> Vec<usize>, model: &mut Model, loss_acc: &mut f64| {
            for epoch in 0..spec.epochs {
                let _span = local::span(
                    names::LOCAL_EPOCH,
                    vec![
                        ("client", Value::U64(env.id as u64)),
                        ("epoch", Value::U64(epoch as u64)),
                        ("batches", Value::U64(batches_per_epoch as u64)),
                    ],
                );
                for _ in 0..batches_per_epoch {
                    let idx = next_batch();
                    let (x, y) = env.dataset.gather(&idx);
                    let l = model.loss_grad(&x, &y, spec.loss, &mut grads);
                    *loss_acc += l as f64;
                    direction(&mut grads, model.params(), step);
                    fedwcm_nn::opt::sgd_step(model.params_mut(), &grads, spec.lr);
                    step += 1;
                }
            }
        };
    if spec.balanced_sampler {
        let mut sampler =
            BalanceSampler::new(env.view.indices(), env.dataset, env.cfg.batch_size, rng);
        run_epochs(&mut || sampler.next_batch(), &mut model, &mut loss_acc);
    } else {
        let mut sampler = BatchSampler::new(env.view.indices(), env.cfg.batch_size, rng.clone());
        run_epochs(&mut || sampler.next_batch(), &mut model, &mut loss_acc);
    }

    // delta = (x_r − x_B) / (lr · B_k): gradient-scale direction.
    let scale = 1.0 / (spec.lr * total_steps as f32);
    let delta: Vec<f32> = global
        .iter()
        .zip(model.params())
        .map(|(g, p)| (g - p) * scale)
        .collect();

    ClientUpdate {
        client: env.id,
        delta,
        num_samples: env.view.len(),
        num_batches: total_steps,
        // lint:allow(cast-soundness) mean loss is a bounded report value; f32 is its wire format
        avg_loss: (loss_acc / total_steps as f64) as f32,
        extra: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_data::longtail::longtail_counts;
    use fedwcm_data::partition::paper_partition;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_nn::loss::CrossEntropy;
    use fedwcm_nn::models::mlp;

    fn setup() -> (Dataset, Vec<ClientView>, FlConfig) {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 60, 0.5);
        let ds = spec.generate_train(&counts, 5);
        let part = paper_partition(&ds, 4, 0.5, 5);
        let views = part.views(&ds);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 4;
        cfg.batch_size = 16;
        cfg.local_epochs = 2;
        (ds, views, cfg)
    }

    fn factory() -> Model {
        let mut rng = Xoshiro256pp::seed_from(99);
        mlp(64, &[32], 10, &mut rng)
    }

    #[test]
    fn local_sgd_produces_gradient_scale_delta() {
        let (ds, views, cfg) = setup();
        let env = ClientEnv {
            id: 0,
            round: 0,
            dataset: &ds,
            view: &views[0],
            cfg: &cfg,
            factory: &factory,
        };
        let model = factory();
        let global = model.params().to_vec();
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: 0.1,
            epochs: 2,
        };
        let upd = run_local_sgd(&env, &global, &spec, |_, _, _| {});
        assert_eq!(upd.delta.len(), global.len());
        assert_eq!(upd.num_samples, views[0].len());
        assert_eq!(upd.num_batches, 2 * views[0].len().div_ceil(16));
        assert!(upd.avg_loss > 0.0);
        // Delta at gradient scale: norm comparable to a single gradient,
        // not to B_k gradients.
        let norm: f32 = upd.delta.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm > 1e-4 && norm < 100.0, "delta norm {norm}");
    }

    #[test]
    fn identity_direction_descends_locally() {
        let (ds, views, cfg) = setup();
        let env = ClientEnv {
            id: 1,
            round: 3,
            dataset: &ds,
            view: &views[1],
            cfg: &cfg,
            factory: &factory,
        };
        let model = factory();
        let global = model.params().to_vec();
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: 0.1,
            epochs: 5,
        };
        let upd = run_local_sgd(&env, &global, &spec, |_, _, _| {});
        // Reconstruct final local params and verify loss decreased.
        let steps = upd.num_batches as f32;
        let finals: Vec<f32> = global
            .iter()
            .zip(&upd.delta)
            .map(|(g, d)| g - d * 0.1 * steps)
            .collect();
        let mut m = factory();
        let (x, y) = ds.gather(views[1].indices());
        m.set_params(&global);
        let logits = m.forward(&x, false);
        let (before, _) = CrossEntropy.loss_and_grad(&logits, &y);
        m.set_params(&finals);
        let logits = m.forward(&x, false);
        let (after, _) = CrossEntropy.loss_and_grad(&logits, &y);
        assert!(after < before, "local loss {before} -> {after}");
    }

    #[test]
    fn deterministic_for_same_round_and_client() {
        let (ds, views, cfg) = setup();
        let model = factory();
        let global = model.params().to_vec();
        let run = || {
            let env = ClientEnv {
                id: 2,
                round: 7,
                dataset: &ds,
                view: &views[2],
                cfg: &cfg,
                factory: &factory,
            };
            let spec = LocalSgdSpec {
                loss: &CrossEntropy,
                balanced_sampler: false,
                lr: 0.1,
                epochs: 1,
            };
            run_local_sgd(&env, &global, &spec, |_, _, _| {})
        };
        let a = run();
        let b = run();
        assert_eq!(a.delta, b.delta);
        assert_eq!(a.avg_loss, b.avg_loss);
    }

    #[test]
    fn direction_transform_is_applied() {
        let (ds, views, cfg) = setup();
        let env = ClientEnv {
            id: 0,
            round: 0,
            dataset: &ds,
            view: &views[0],
            cfg: &cfg,
            factory: &factory,
        };
        let model = factory();
        let global = model.params().to_vec();
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: 0.1,
            epochs: 1,
        };
        // Zero direction ⇒ params never move ⇒ delta is exactly zero.
        let upd = run_local_sgd(&env, &global, &spec, |g, _, _| g.fill(0.0));
        assert!(upd.delta.iter().all(|&d| d == 0.0));
    }

    #[test]
    fn balanced_sampler_path_runs() {
        let (ds, views, cfg) = setup();
        let env = ClientEnv {
            id: 3,
            round: 1,
            dataset: &ds,
            view: &views[3],
            cfg: &cfg,
            factory: &factory,
        };
        let model = factory();
        let global = model.params().to_vec();
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: true,
            lr: 0.05,
            epochs: 1,
        };
        let upd = run_local_sgd(&env, &global, &spec, |_, _, _| {});
        assert!(upd.avg_loss.is_finite());
        assert!(upd.delta.iter().any(|&d| d != 0.0));
    }
}
