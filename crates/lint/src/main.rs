//! CLI for `fedwcm-lint`.
//!
//! ```text
//! cargo run -p fedwcm-lint                     # lint the whole workspace
//! cargo run -p fedwcm-lint -- --only panic-freedom
//! cargo run -p fedwcm-lint -- --disable doc-coverage
//! cargo run -p fedwcm-lint -- --root /path/to/workspace
//! cargo run -p fedwcm-lint -- --format json    # machine-readable findings
//! cargo run -p fedwcm-lint -- --list-rules
//! cargo run -p fedwcm-lint -- --rules         # full taxonomy + blessings
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found, `2` usage or I/O error.
//!
//! With `--format json`, stdout carries **only** the findings document
//! — sorted by path/line/rule, no timestamps, no counts that depend on
//! the environment — so two consecutive runs over the same tree are
//! byte-identical and CI can archive and diff the artifact. The timing
//! line goes to stderr in that mode.

use fedwcm_lint::engine::{ALL_RULES, RULE_INFO};
use fedwcm_lint::rules::BLESSINGS;
use fedwcm_lint::{lint_workspace, Diagnostic, LintConfig};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> &'static str {
    "fedwcm-lint — static analysis gates for the FedWCM workspace\n\
     \n\
     USAGE: fedwcm-lint [--root PATH] [--only RULE]... [--disable RULE]...\n\
     \u{20}                [--format text|json] [--list-rules]\n\
     \n\
     --root PATH      workspace root (default: walk up from cwd to the\n\
     \u{20}                workspace Cargo.toml)\n\
     --only RULE      run only the named rule (repeatable)\n\
     --disable RULE   skip the named rule (repeatable)\n\
     --format FMT     output format: text (default) or json (stable,\n\
     \u{20}                byte-identical across runs on the same tree)\n\
     --list-rules     print the known rule ids and exit\n\
     --rules          print the full taxonomy (id, family, severity,\n\
     \u{20}                escape hatch) and blessed-file table, then exit\n"
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Escape a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the findings document. Input is already sorted; nothing here
/// depends on time or environment, so the output is byte-stable.
fn render_json(diags: &[Diagnostic], files: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"files\": ");
    out.push_str(&files.to_string());
    out.push_str(",\n  \"findings\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.path),
            d.line,
            json_escape(&d.rule),
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut disable: Vec<String> = Vec::new();
    let mut format = String::from("text");

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for r in ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--rules" => {
                let id_w = RULE_INFO.iter().map(|r| r.id.len()).max().unwrap_or(0);
                let fam_w = RULE_INFO.iter().map(|r| r.family.len()).max().unwrap_or(0);
                for r in RULE_INFO {
                    println!(
                        "{:id_w$}  {:fam_w$}  {:5}  {}",
                        r.id, r.family, r.severity, r.escape
                    );
                }
                if !BLESSINGS.is_empty() {
                    println!("\nblessed files (rule does not fire in path):");
                    for b in BLESSINGS {
                        println!("  {}  {}  — {}", b.rule, b.path, b.why);
                    }
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--only" => match it.next() {
                Some(r) => only.push(r.clone()),
                None => {
                    eprintln!("--only needs a rule name\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--disable" => match it.next() {
                Some(r) => disable.push(r.clone()),
                None => {
                    eprintln!("--disable needs a rule name\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next() {
                Some(f) if f == "text" || f == "json" => format = f.clone(),
                Some(f) => {
                    eprintln!("unknown format '{f}' (expected text or json)");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("--format needs text or json\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument '{other}'\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let cfg = if only.is_empty() {
        let mut cfg = LintConfig::all();
        for r in &disable {
            if let Err(e) = cfg.disable(r) {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
        cfg
    } else {
        if !disable.is_empty() {
            eprintln!("--only and --disable are mutually exclusive");
            return ExitCode::from(2);
        }
        match LintConfig::only(only.iter().map(String::as_str)) {
            Ok(cfg) => cfg,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    };

    let root = match root.or_else(|| std::env::current_dir().ok().and_then(find_workspace_root)) {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root; pass --root");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let run = match lint_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("I/O error while linting: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();
    let timing = format!(
        "fedwcm-lint: {} files lexed+parsed once, all rules in {}.{:03}s",
        run.files,
        elapsed.as_secs(),
        elapsed.subsec_millis()
    );

    if format == "json" {
        print!("{}", render_json(&run.diags, run.files));
        eprintln!("{timing}");
        return if run.diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for d in &run.diags {
        println!("{d}");
    }
    if run.diags.is_empty() {
        println!("fedwcm-lint: {} files clean", run.files);
        println!("{timing}");
        ExitCode::SUCCESS
    } else {
        println!(
            "fedwcm-lint: {} diagnostic{} across {} files",
            run.diags.len(),
            if run.diags.len() == 1 { "" } else { "s" },
            run.files
        );
        println!("{timing}");
        ExitCode::FAILURE
    }
}
