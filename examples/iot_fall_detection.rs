//! IoT scenario from the paper's introduction: activity recognition where
//! common activities (sitting, walking…) dominate and critical events
//! (falls, medical anomalies) are rare — an extreme long tail — across a
//! fleet of home devices, each seeing its own skewed slice of activities.
//!
//! Beyond overall accuracy, what matters here is *tail recall*: does the
//! model still detect the rare critical classes? This example reports
//! head/tail accuracy for FedAvg, FedCM, and FedWCM.
//!
//! ```sh
//! cargo run --release --example iot_fall_detection
//! ```

use fedwcm_suite::analysis::per_class::head_tail_summary;
use fedwcm_suite::prelude::*;

const ACTIVITY_NAMES: [&str; 10] = [
    "sitting",
    "walking",
    "standing",
    "lying",
    "cooking",
    "cleaning",
    "stairs",
    "stumble",
    "fall",
    "medical-alert",
];

fn main() {
    // Severe long tail: falls/alerts are ~5% as common as sitting. Each
    // sample is an IMU "spectrogram window" (3 channels × 8×8 bins), so
    // the devices train the residual CNN backbone.
    let spec = DatasetPreset::Cifar10.spec();
    let counts = longtail_counts(10, 470, 0.1);
    println!("samples per activity:");
    for (name, n) in ACTIVITY_NAMES.iter().zip(&counts) {
        println!("  {name:<14} {n}");
    }
    let train = spec.generate_train(&counts, 2026);
    let test = spec.generate_test(2026);

    // 20 homes, each with its own activity mix; only a few report per
    // round (realistic duty-cycled IoT uplinks) — the low-participation
    // regime where client momentum is most fragile.
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 20;
    cfg.participation = 0.25;
    cfg.rounds = 80;
    cfg.local_epochs = 5;
    cfg.batch_size = 20;
    cfg.eval_every = 8;
    let views = paper_partition(&train, cfg.clients, 0.6, cfg.seed).views(&train);

    let sim = Simulation::new(
        cfg,
        &train,
        &test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(99);
            fedwcm_suite::nn::models::res_lite(3, 8, 8, 10, 12, &mut rng)
        }),
    );

    println!(
        "\n{:<8} {:>8} {:>8} {:>8} {:>10}",
        "method", "overall", "head", "tail", "fall-acc"
    );
    for algo in [
        Box::new(FedAvg::new()) as Box<dyn FederatedAlgorithm>,
        Box::new(FedCm::new(0.1)),
        Box::new(FedWcm::new()),
    ] {
        let mut algo = algo;
        let (history, mut model) = sim.run_returning_model(algo.as_mut());
        let summary = head_tail_summary(&mut model, &test, &counts);
        println!(
            "{:<8} {:>8.4} {:>8.4} {:>8.4} {:>10.4}",
            history.name,
            history.final_accuracy(2),
            summary.head_accuracy,
            summary.tail_accuracy,
            summary.per_class[8], // "fall"
        );
    }
    println!("\nThe point: under a severe activity long tail, FedWCM keeps\nrare-event (tail) accuracy up where plain client momentum collapses.");
}
