//! Trace events and their deterministic JSONL encoding.

/// A typed field value attached to an event.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (ids, counts, ticks).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (losses, norms, α). Non-finite values encode as JSON `null`.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Free text (messages, kinds).
    Str(String),
}

/// What an event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Start,
    /// A span closed.
    End,
    /// An instantaneous event.
    Point,
}

impl EventKind {
    /// Stable wire tag (`"start"` / `"end"` / `"point"`).
    pub fn tag(self) -> &'static str {
        match self {
            EventKind::Start => "start",
            EventKind::End => "end",
            EventKind::Point => "point",
        }
    }
}

/// One trace event: a timestamp in clock ticks, a kind, a span/event
/// name, and ordered key/value fields.
///
/// Field order is preserved exactly as recorded, and every encoding
/// choice below is deterministic, so two identical runs produce
/// byte-identical JSONL streams under a [`crate::LogicalClock`].
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Timestamp in the recording clock's ticks.
    pub t: u64,
    /// Start / end / point.
    pub kind: EventKind,
    /// Span or event name (from the fixed taxonomy; see crate docs).
    pub name: &'static str,
    /// Ordered key/value fields.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Encode as one JSON object on one line (no trailing newline).
    ///
    /// Keys appear in a fixed order — `t`, `ev`, `name`, then the
    /// fields in recording order — and floats use Rust's shortest
    /// round-trip `Display`, which is deterministic across platforms.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"t\":");
        out.push_str(&self.t.to_string());
        out.push_str(",\"ev\":\"");
        out.push_str(self.kind.tag());
        out.push_str("\",\"name\":\"");
        out.push_str(self.name);
        out.push('"');
        for (k, v) in &self.fields {
            out.push_str(",\"");
            out.push_str(k);
            out.push_str("\":");
            push_value(&mut out, v);
        }
        out.push('}');
        out
    }
}

fn push_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Shortest-roundtrip Display; integral floats gain ".0"
                // so the value re-parses as a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_line_fixed_key_order() {
        let e = Event {
            t: 7,
            kind: EventKind::Start,
            name: "round",
            fields: vec![("round", Value::U64(3)), ("loss", Value::F64(0.5))],
        };
        assert_eq!(
            e.to_json_line(),
            "{\"t\":7,\"ev\":\"start\",\"name\":\"round\",\"round\":3,\"loss\":0.5}"
        );
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let e = Event {
            t: 0,
            kind: EventKind::Point,
            name: "x",
            fields: vec![("v", Value::F64(2.0))],
        };
        assert!(e.to_json_line().contains("\"v\":2.0"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event {
            t: 0,
            kind: EventKind::Point,
            name: "x",
            fields: vec![
                ("v", Value::F64(f64::NAN)),
                ("w", Value::F64(f64::INFINITY)),
            ],
        };
        assert!(e.to_json_line().contains("\"v\":null,\"w\":null"));
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event {
            t: 0,
            kind: EventKind::Point,
            name: "info",
            fields: vec![("msg", Value::Str("a\"b\\c\nd\u{1}".into()))],
        };
        assert!(e
            .to_json_line()
            .contains("\"msg\":\"a\\\"b\\\\c\\nd\\u0001\""));
    }
}
