//! Core pseudo-random generator: xoshiro256++ with splitmix64 seeding.
//!
//! xoshiro256++ (Blackman & Vigna, 2019) is the standard fast, high-quality
//! non-cryptographic generator; splitmix64 is the recommended seeder and
//! also serves as our stream-splitting hash, so that each
//! `(seed, round, client, purpose)` tuple gets a statistically independent
//! stream regardless of how many worker threads execute the simulation.

/// Minimal RNG interface used throughout the workspace.
///
/// Implementors must produce uniformly distributed `u64`s; all the derived
/// helpers (floats, ranges, shuffles) are provided.
pub trait Rng {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; divide by 2^53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn next_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be nonzero");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, len)`.
    #[inline]
    fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle in place.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` without replacement,
    /// returned in ascending order. Panics if `k > n`.
    ///
    /// This is the client-sampling primitive: `P_r ⊂ {1..K}` each round.
    fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n} without replacement");
        // Partial Fisher–Yates over an index vector: O(n) setup, O(k) swaps.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx.sort_unstable();
        idx
    }
}

/// splitmix64 step: the recommended seeding function for xoshiro.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent sub-seed from a base seed and a stream label.
///
/// Experiments key their streams as
/// `split_seed(seed, &[round, client_id, PURPOSE])`, which makes every
/// stochastic decision reproducible independent of execution order.
pub fn split_seed(seed: u64, labels: &[u64]) -> u64 {
    let mut s = seed ^ 0xA076_1D64_78BD_642F;
    let mut out = splitmix64(&mut s);
    for &l in labels {
        s ^= l.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        out ^= splitmix64(&mut s).rotate_left(17);
    }
    out
}

/// xoshiro256++ generator state.
///
/// Period 2^256 − 1; passes BigCrush. Not cryptographically secure (the HE
/// crate uses its own wider construction for noise sampling but seeds it
/// from here — the reproduction does not claim cryptographic security).
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via four splitmix64 draws, per the reference implementation.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // All-zero state is invalid; splitmix64 cannot produce it from any
        // seed, but guard anyway.
        let s = if s == [0; 4] { [1, 2, 3, 4] } else { s };
        Xoshiro256pp { s }
    }

    /// Seed an independent stream from `(seed, labels)`; see [`split_seed`].
    pub fn stream(seed: u64, labels: &[u64]) -> Self {
        Self::seed_from(split_seed(seed, labels))
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones() {
        let mut a = Xoshiro256pp::seed_from(42);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256pp::seed_from(1);
        let mut b = Xoshiro256pp::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256pp::seed_from(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_mean_near_half() {
        let mut r = Xoshiro256pp::seed_from(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_unbiased_small_bound() {
        let mut r = Xoshiro256pp::seed_from(9);
        let mut counts = [0usize; 5];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_below(5) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.2).abs() < 0.01, "bucket fraction {frac}");
        }
    }

    #[test]
    fn sample_indices_distinct_sorted_and_in_range() {
        let mut r = Xoshiro256pp::seed_from(11);
        for _ in 0..100 {
            let s = r.sample_indices(50, 10);
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn sample_indices_full_population() {
        let mut r = Xoshiro256pp::seed_from(11);
        let s = r.sample_indices(8, 8);
        assert_eq!(s, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_uniform_inclusion() {
        // Each of n=10 items should appear in a k=3 sample with prob 0.3.
        let mut r = Xoshiro256pp::seed_from(13);
        let mut hits = [0usize; 10];
        let trials = 50_000;
        for _ in 0..trials {
            for i in r.sample_indices(10, 3) {
                hits[i] += 1;
            }
        }
        for &h in &hits {
            let frac = h as f64 / trials as f64;
            assert!((frac - 0.3).abs() < 0.02, "inclusion prob {frac}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256pp::seed_from(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_seed_labels_matter() {
        let a = split_seed(42, &[1, 2, 3]);
        let b = split_seed(42, &[1, 2, 4]);
        let c = split_seed(42, &[3, 2, 1]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And stable:
        assert_eq!(a, split_seed(42, &[1, 2, 3]));
    }

    #[test]
    fn stream_independence_rough() {
        // Streams for adjacent clients should be uncorrelated: compare the
        // sign agreement of centered draws.
        let mut a = Xoshiro256pp::stream(42, &[0, 1]);
        let mut b = Xoshiro256pp::stream(42, &[0, 2]);
        let n = 20_000;
        let agree = (0..n)
            .filter(|_| (a.next_f64() < 0.5) == (b.next_f64() < 0.5))
            .count();
        let frac = agree as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "sign agreement {frac}");
    }

    #[test]
    #[should_panic]
    fn sample_more_than_population_panics() {
        let mut r = Xoshiro256pp::seed_from(1);
        let _ = r.sample_indices(3, 4);
    }
}
