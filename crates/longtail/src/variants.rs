//! FedCM + imbalance-handling variants from Tables 1/7.
//!
//! These are the paper's "naive integration" baselines: FedCM's chassis
//! with a long-tail loss or sampler bolted on. The paper shows they do
//! *not* fix the momentum-bias non-convergence — reproduced in the
//! experiment harness.

use fedwcm_algos::FedCm;
use fedwcm_nn::loss::{BalancedSoftmax, FocalLoss};
use std::sync::Arc;

/// FedCM + Focal Loss (γ = 2).
pub fn fedcm_focal(alpha: f32) -> FedCm {
    FedCm::with_loss(alpha, Arc::new(FocalLoss { gamma: 2.0 }), "FedCM+FocalLoss")
}

/// FedCM + Balance Loss (Balanced-Softmax / PriorCE with the global
/// long-tail prior).
pub fn fedcm_balance_loss(alpha: f32, global_class_counts: &[usize]) -> FedCm {
    FedCm::with_loss(
        alpha,
        Arc::new(BalancedSoftmax::from_counts(global_class_counts)),
        "FedCM+BalanceLoss",
    )
}

/// FedCM + Balance Sampler (class-balanced local resampling).
pub fn fedcm_balance_sampler(alpha: f32) -> FedCm {
    FedCm::with_balanced_sampler(alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_fl::FederatedAlgorithm;

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(fedcm_focal(0.1).name(), "FedCM+FocalLoss");
        assert_eq!(
            fedcm_balance_loss(0.1, &[100, 10]).name(),
            "FedCM+BalanceLoss"
        );
        assert_eq!(fedcm_balance_sampler(0.1).name(), "FedCM+BalanceSampler");
    }
}
