//! Integration: finite-difference gradient validation of the full model
//! zoo with every loss — the safety net for the hand-written backward
//! passes.

use fedwcm_suite::nn::gradcheck::check_model_gradients;
use fedwcm_suite::nn::loss::{BalancedSoftmax, CrossEntropy, FocalLoss, LdamLoss, Loss};
use fedwcm_suite::nn::models::{mlp, res_lite};
use fedwcm_suite::prelude::*;

#[test]
fn mlp_gradients_validate_for_all_losses() {
    let mut rng = Xoshiro256pp::seed_from(71);
    let mut model = mlp(12, &[16, 8], 5, &mut rng);
    let x = Tensor::randn(&[4, 12], 1.0, &mut rng);
    let y = [0usize, 2, 4, 1];
    let losses: Vec<Box<dyn Loss>> = vec![
        Box::new(CrossEntropy),
        Box::new(FocalLoss { gamma: 2.0 }),
        Box::new(BalancedSoftmax::from_counts(&[50, 40, 30, 20, 10])),
        Box::new(LdamLoss::from_counts(&[50, 40, 30, 20, 10], 0.5, 2.0)),
    ];
    for loss in &losses {
        let report = check_model_gradients(&mut model, &x, &y, loss.as_ref(), 5, 1e-3);
        assert!(report.passes(0.05), "MLP gradcheck failed: {report:?}");
    }
}

#[test]
fn res_lite_gradients_validate() {
    let mut rng = Xoshiro256pp::seed_from(72);
    let mut model = res_lite(2, 4, 4, 4, 4, &mut rng);
    let x = Tensor::randn(&[2, 32], 1.0, &mut rng);
    let y = [1usize, 3];
    let report = check_model_gradients(&mut model, &x, &y, &CrossEntropy, 11, 1e-2);
    assert!(report.checked > 20);
    assert!(report.passes(0.08), "ResLite gradcheck failed: {report:?}");
}
