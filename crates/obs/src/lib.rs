//! # fedwcm-obs — trace analysis and profiling
//!
//! The consumer side of the workspace's observability story. The
//! `fedwcm-trace` crate *produces* deterministic JSONL traces (logical
//! clock, fixed key order, shortest-roundtrip floats); this crate
//! *consumes* them:
//!
//! 1. [`record::parse_trace`] — a strict parser that round-trips sink
//!    output byte-for-byte into typed records (property-tested against
//!    the real encoder). Anything the sink could not have written is a
//!    typed [`ObsError`] naming the line.
//! 2. [`tree::build_forest`] — span-tree reconstruction keyed on
//!    logical-clock ticks, rejecting mismatched, unclosed, or
//!    time-travelling spans.
//! 3. [`profile::analyze`] — phase attribution (self vs child time per
//!    span name, with exact nearest-rank percentiles), a four-way
//!    compute / fault / wire / overhead split, and per-round critical
//!    paths with compute- / straggler- / wire-bound labels.
//! 4. [`flame::folded_stacks`] — collapsed flame-graph output.
//! 5. [`budget`] — committed performance budgets ([`Budget::check`])
//!    and baseline diffs ([`budget::diff`]) whose reports are sorted,
//!    timestamp-free, and byte-stable, so CI can gate on them.
//!
//! Because traces are bitwise identical across thread counts, every
//! artifact here — profile, flame file, diff report — is too. The
//! crate has zero runtime dependencies by design: its determinism
//! argument leans on nothing but the standard library.
//!
//! ```
//! let trace = "{\"t\":1,\"ev\":\"start\",\"name\":\"round\",\"round\":0}\n\
//!              {\"t\":2,\"ev\":\"start\",\"name\":\"client_update\"}\n\
//!              {\"t\":5,\"ev\":\"end\",\"name\":\"client_update\"}\n\
//!              {\"t\":6,\"ev\":\"end\",\"name\":\"round\"}\n";
//! let records = fedwcm_obs::parse_trace(trace).unwrap();
//! let forest = fedwcm_obs::build_forest(&records).unwrap();
//! let profile = fedwcm_obs::analyze(&forest);
//! assert_eq!(profile.total_ticks, 5);
//! assert_eq!(profile.rounds[0].critical_path, "round;client_update");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod error;
pub mod flame;
pub mod json;
pub mod profile;
pub mod record;
pub mod tree;

pub use budget::{diff, Budget, BudgetReport, DiffReport, PhaseBudget, PhaseDiff};
pub use error::ObsError;
pub use flame::folded_stacks;
pub use json::Json;
pub use profile::{analyze, Attribution, PhaseStat, PointStat, Profile, RoundLabel, RoundProfile};
pub use record::{parse_trace, RecordKind, TraceRecord, TraceValue};
pub use tree::{build_forest, PointNode, SpanForest, SpanNode};
