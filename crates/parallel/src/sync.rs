//! Poison-tolerant locking helpers shared by the pool internals.
//!
//! The standard library poisons a `Mutex` when a holder panics, and
//! every subsequent `lock()` returns `Err` forever after. For the pool
//! that policy is strictly worse than recovery: worker panics are
//! already caught with `catch_unwind` inside [`crate::pool`] and
//! re-raised on the submitting caller, and no lock-held critical
//! section leaves its guarded state half-updated (queue pushes/removes
//! and counter updates are single atomic operations on the structure).
//! Recovering the guard therefore cannot observe a broken invariant —
//! whereas unwrapping the poison error would turn one contained client
//! panic into a cascading crash of every later round.
//!
//! Recovery also preserves the pool's **publication** duty: a
//! `lock_recover` acquire is still a full mutex acquire, so the
//! `done_lock` handshake that joins a job keeps its release/acquire
//! edge even when some participant panicked — which is exactly the
//! happens-before edge [`crate::shadow`] asserts under `race_check`.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Acquire `m`, recovering the guard if a previous holder panicked.
///
/// Sound for pool state because every critical section keeps its
/// guarded data structurally valid at all times (see the module docs);
/// a poisoned lock only records that *some* participant panicked, which
/// the pool already tracks and re-raises through the job's panic slot.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Block on `cv`, recovering the reacquired guard if the mutex was
/// poisoned while this thread slept.
///
/// Same soundness argument as [`lock_recover`]: recovery only skips the
/// poison bookkeeping, never exposes torn state.
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recover_survives_poison() {
        let m = Mutex::new(7usize);
        // Poison the mutex by panicking while holding it.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison");
        }));
        assert!(m.lock().is_err(), "mutex should be poisoned");
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) = 9;
        assert_eq!(*lock_recover(&m), 9);
    }

    #[test]
    fn wait_recover_roundtrip() {
        use std::sync::{Arc, Condvar};
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *lock_recover(&pair2.0) = true;
            pair2.1.notify_all();
        });
        let (m, cv) = (&pair.0, &pair.1);
        let mut guard = lock_recover(m);
        while !*guard {
            guard = wait_recover(cv, guard);
        }
        drop(guard);
        t.join().unwrap();
    }
}
