//! Algorithm 1: FedWCM.

use crate::adaptive::{adaptive_alpha, score_ratio, ALPHA_MIN};
use crate::score::{client_scores, global_distribution, imbalance_degree, temperature};
use crate::weighting::aggregation_weights;
use fedwcm_fl::algorithm::{
    server_step, uniform_average, weighted_average, FederatedAlgorithm, RoundInput, RoundLog,
    StateError,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_nn::loss::{CrossEntropy, Loss};
use fedwcm_nn::opt::momentum_blend;
use std::sync::Arc;

/// Configuration / ablation switches for FedWCM.
#[derive(Clone, Debug)]
pub struct FedWcmOptions {
    /// Target distribution `p̂` (None = uniform, the paper default).
    pub target: Option<Vec<f64>>,
    /// Adapt the momentum value per Eq. (5); `false` pins α = 0.1
    /// (ablation 1 in DESIGN.md).
    pub adaptive_alpha: bool,
    /// Weight the momentum aggregation per Eq. (4); `false` averages
    /// uniformly (ablation 2).
    pub weighted_aggregation: bool,
    /// Adapt the temperature to global imbalance; `false` uses
    /// `fixed_temperature` (ablation 3).
    pub adaptive_temperature: bool,
    /// Temperature used when `adaptive_temperature` is off.
    pub fixed_temperature: f64,
    /// Use the literal Eq. (3) absolute deviation instead of the rectified
    /// scarcity score (ablation; see `score::client_scores`).
    pub literal_scores: bool,
}

impl Default for FedWcmOptions {
    fn default() -> Self {
        FedWcmOptions {
            target: None,
            adaptive_alpha: true,
            weighted_aggregation: true,
            adaptive_temperature: true,
            fixed_temperature: 0.05,
            literal_scores: false,
        }
    }
}

/// State computed once from the client views (the paper's "global
/// information gathering" phase, §5.1).
struct GlobalInfo {
    scores: Vec<f64>,
    mean_score: f64,
    imbalance: f64,
    temperature: f64,
    classes: usize,
}

/// FedWCM (Algorithm 1): weighted, adaptively-damped client momentum.
pub struct FedWcm {
    options: FedWcmOptions,
    loss: Arc<dyn Loss>,
    momentum: Vec<f32>,
    alpha: f32,
    info: Option<GlobalInfo>,
}

impl FedWcm {
    /// FedWCM with default options and cross-entropy loss.
    pub fn new() -> Self {
        Self::with_options(FedWcmOptions::default())
    }

    /// FedWCM with explicit options.
    pub fn with_options(options: FedWcmOptions) -> Self {
        FedWcm {
            options,
            loss: Arc::new(CrossEntropy),
            momentum: Vec::new(),
            alpha: ALPHA_MIN as f32,
            info: None,
        }
    }

    /// Replace the local loss (compositional experiments).
    pub fn with_loss(mut self, loss: Arc<dyn Loss>) -> Self {
        self.loss = loss;
        self
    }

    /// The momentum value α that will be used in the **next** round.
    pub fn current_alpha(&self) -> f32 {
        self.alpha
    }

    /// Precompute scores/temperature from the client views. Called lazily
    /// on the first aggregation; exposed for tests and analysis.
    pub fn prepare(&mut self, views: &[fedwcm_data::dataset::ClientView], classes: usize) {
        let global = global_distribution(views, classes);
        let target = self
            .options
            .target
            .clone()
            .unwrap_or_else(|| vec![1.0 / classes as f64; classes]);
        assert_eq!(target.len(), classes, "target distribution arity");
        let scores = if self.options.literal_scores {
            crate::score::client_scores_literal(views, &global, &target)
        } else {
            client_scores(views, &global, &target)
        };
        let mean_score = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
        let imbalance = imbalance_degree(&global, &target);
        let temp = if self.options.adaptive_temperature {
            temperature(&global, &target)
        } else {
            self.options.fixed_temperature
        };
        self.info = Some(GlobalInfo {
            scores,
            mean_score,
            imbalance,
            temperature: temp,
            classes,
        });
    }

    fn info(&self) -> &GlobalInfo {
        self.info
            .as_ref()
            // lint:allow(panic-freedom) documented trait contract: the
            // engine always calls prepare_round before any accessor; a
            // cold call is a harness sequencing bug worth crashing on.
            .expect("FedWCM used before prepare/aggregate")
    }
}

impl Default for FedWcm {
    fn default() -> Self {
        Self::new()
    }
}

impl FederatedAlgorithm for FedWcm {
    fn name(&self) -> String {
        "FedWCM".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: self.loss.as_ref(),
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        let alpha = self.alpha;
        let momentum = &self.momentum;
        let mut v = vec![0.0f32; global.len()];
        run_local_sgd(env, global, &spec, move |grad, _, _| {
            if momentum.is_empty() {
                for g in grad.iter_mut() {
                    *g *= alpha;
                }
            } else {
                momentum_blend(&mut v, grad, momentum, alpha);
                grad.copy_from_slice(&v);
            }
        })
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        if self.info.is_none() {
            let classes = input.views[0].class_counts().len();
            self.prepare(input.views, classes);
        }
        if self.momentum.is_empty() {
            self.momentum = vec![0.0f32; global.len()];
        }

        let used_alpha = self.alpha as f64;

        // Eq. (4): weighted momentum aggregation over the sampled cohort.
        let weights = if self.options.weighted_aggregation {
            let sampled: Vec<f64> = input
                .updates
                .iter()
                .map(|u| self.info().scores[u.client])
                .collect();
            let w = aggregation_weights(&sampled, self.info().temperature);
            weighted_average(&input.updates, &w, &mut self.momentum);
            Some(w)
        } else {
            uniform_average(&input.updates, &mut self.momentum);
            None
        };

        // Server step along the fresh balanced momentum.
        server_step(global, &self.momentum, input.cfg, input.mean_batches());

        // Eq. (5): momentum value for the next round.
        if self.options.adaptive_alpha {
            let info = self.info();
            let sampled: Vec<f64> = input
                .updates
                .iter()
                .map(|u| info.scores[u.client])
                .collect();
            let q = score_ratio(&sampled, info.mean_score);
            self.alpha = adaptive_alpha(info.imbalance, info.classes, q) as f32;
        }

        RoundLog {
            alpha: Some(used_alpha),
            weights,
        }
    }

    // Cross-round state is the momentum buffer and the adapted α. The
    // `GlobalInfo` cache is a pure function of the client views and is
    // recomputed lazily on the first post-resume aggregation, so it is
    // deliberately not serialized.
    fn save_state(&self) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(12 + self.momentum.len() * 4);
        fedwcm_nn::serialize::put_f32(&mut out, self.alpha);
        fedwcm_nn::serialize::put_f32s(&mut out, &self.momentum);
        Some(out)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = fedwcm_nn::serialize::ByteReader::new(bytes);
        let alpha = r.f32().ok_or(StateError::Malformed)?;
        let momentum = r.f32s().ok_or(StateError::Malformed)?;
        if !r.is_exhausted() {
            return Err(StateError::Malformed);
        }
        self.alpha = alpha;
        self.momentum = momentum;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_data::longtail::longtail_counts;
    use fedwcm_data::partition::paper_partition;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_fl::{FlConfig, Simulation};
    use fedwcm_nn::models::mlp;
    use fedwcm_stats::Xoshiro256pp;

    fn task(seed: u64, imb: f64) -> (fedwcm_data::Dataset, fedwcm_data::Dataset, FlConfig) {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 70, imb);
        let train = spec.generate_train(&counts, seed);
        let test = spec.generate_test(seed);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 8;
        cfg.participation = 0.5;
        cfg.rounds = 12;
        cfg.local_epochs = 2;
        cfg.batch_size = 20;
        cfg.eval_every = 4;
        cfg.seed = seed;
        (train, test, cfg)
    }

    fn sim<'a>(
        train: &'a fedwcm_data::Dataset,
        test: &'a fedwcm_data::Dataset,
        cfg: FlConfig,
        beta: f64,
    ) -> Simulation<'a> {
        let part = paper_partition(train, cfg.clients, beta, cfg.seed);
        let views = part.views(train);
        Simulation::new(
            cfg,
            train,
            test,
            views,
            Box::new(|| {
                let mut rng = Xoshiro256pp::seed_from(2024);
                mlp(64, &[32], 10, &mut rng)
            }),
        )
    }

    #[test]
    fn learns_balanced_task() {
        let (train, test, cfg) = task(91, 1.0);
        let s = sim(&train, &test, cfg, 0.6);
        let h = s.run(&mut FedWcm::new());
        assert!(h.final_accuracy(1) > 0.5, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn learns_longtail_task() {
        let (train, test, cfg) = task(92, 0.1);
        let s = sim(&train, &test, cfg, 0.6);
        let h = s.run(&mut FedWcm::new());
        assert!(h.final_accuracy(1) > 0.3, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn alpha_stays_base_when_balanced() {
        let (train, test, mut cfg) = task(93, 1.0);
        cfg.rounds = 3;
        let s = sim(&train, &test, cfg, 0.6);
        let mut algo = FedWcm::new();
        let _ = s.run(&mut algo);
        // Synthetic label flips leave the global distribution essentially
        // uniform; α must stay at (or very near) the FedCM base.
        assert!(
            algo.current_alpha() < 0.4,
            "alpha {} on balanced data",
            algo.current_alpha()
        );
    }

    #[test]
    fn alpha_rises_under_longtail() {
        let (train, test, mut cfg) = task(94, 0.05);
        cfg.rounds = 3;
        let s = sim(&train, &test, cfg, 0.6);
        let mut algo = FedWcm::new();
        let _ = s.run(&mut algo);
        assert!(
            algo.current_alpha() > 0.5,
            "alpha {} under IF=0.05",
            algo.current_alpha()
        );
    }

    #[test]
    fn round_log_carries_weights() {
        let (train, test, mut cfg) = task(95, 0.1);
        cfg.rounds = 2;
        let s = sim(&train, &test, cfg, 0.6);
        let h = s.run(&mut FedWcm::new());
        // Engine stores alpha; weights live in the RoundLog (exercised via
        // direct aggregate call below).
        assert!(h.records[0].alpha.is_some());
    }

    #[test]
    fn ablations_change_behaviour() {
        let (train, test, cfg) = task(96, 0.05);
        let s = sim(&train, &test, cfg, 0.6);
        let full = s.run(&mut FedWcm::new());
        let mut no_adapt = FedWcm::with_options(FedWcmOptions {
            adaptive_alpha: false,
            ..FedWcmOptions::default()
        });
        let fixed = s.run(&mut no_adapt);
        assert_eq!(no_adapt.current_alpha(), ALPHA_MIN as f32);
        // Trajectories must differ (the adaptive α matters).
        let differ = full
            .records
            .iter()
            .zip(&fixed.records)
            .any(|(a, b)| a.train_loss != b.train_loss);
        assert!(differ);
    }

    #[test]
    fn custom_target_distribution_changes_scoring() {
        // §5.1: "users can adjust [the target] based on the prior
        // distribution relevant to their specific application scenarios".
        // With the target set to the actual global distribution, the
        // imbalance vanishes and FedWCM degenerates to FedCM behaviour.
        let (train, _, cfg) = task(98, 0.05);
        let part = paper_partition(&train, cfg.clients, 0.6, cfg.seed);
        let views = part.views(&train);
        let global = crate::score::global_distribution(&views, 10);

        let mut uniform_target = FedWcm::new();
        uniform_target.prepare(&views, 10);
        let mut matched_target = FedWcm::with_options(FedWcmOptions {
            target: Some(global.clone()),
            ..FedWcmOptions::default()
        });
        matched_target.prepare(&views, 10);

        let u = uniform_target.info.as_ref().unwrap();
        let m = matched_target.info.as_ref().unwrap();
        assert!(u.imbalance > 0.2, "uniform target sees the long tail");
        assert!(m.imbalance < 1e-9, "matched target sees no imbalance");
        assert!(m.scores.iter().all(|&s| s < 1e-9));
        assert!(m.temperature > u.temperature);
    }

    #[test]
    fn prepare_computes_scores_for_all_clients() {
        let (train, _, cfg) = task(97, 0.1);
        let part = paper_partition(&train, cfg.clients, 0.6, cfg.seed);
        let views = part.views(&train);
        let mut algo = FedWcm::new();
        algo.prepare(&views, 10);
        let info = algo.info.as_ref().unwrap();
        assert_eq!(info.scores.len(), cfg.clients);
        assert!(info.imbalance > 0.1, "IF=0.1 should register imbalance");
        assert!(info.temperature < 1.0, "temperature should sharpen");
    }
}
