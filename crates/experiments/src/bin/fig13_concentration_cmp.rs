//! Figure 13: average neuron concentration over rounds for
//! FedAvg / FedCM / FedWCM, at β = 0.1 with IF = 1 (left) and IF = 0.1
//! (right).

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::collapse::{print_trace_csv, run_with_concentration};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    for imbalance in [1.0, 0.1] {
        let exp = ExpConfig::new(DatasetPreset::Cifar10, imbalance, 0.1, cli.scale, cli.seed);
        let methods = [Method::FedAvg, Method::FedCm, Method::FedWcm];
        let mut rows: Vec<(usize, Vec<f64>)> = Vec::new();
        let mut names = Vec::new();
        for m in methods {
            let trace = run_with_concentration(&exp, m, &cli, 1);
            names.push(trace.name.clone());
            for (i, &(round, c)) in trace.mean_concentration.iter().enumerate() {
                if rows.len() <= i {
                    rows.push((round, Vec::new()));
                }
                rows[i].1.push(c);
            }
            console.info(format!("[fig13] IF={imbalance} {} done", m.label()));
        }
        print_trace_csv(
            &format!("Fig.13 mean neuron concentration, IF={imbalance}"),
            &names,
            &rows,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 13): at IF=1, FedCM/FedWCM dip then\n\
         rise smoothly; at IF=0.1, FedCM shows periodic large fluctuations\n\
         while FedWCM declines smoothly like FedAvg."
    );
}
