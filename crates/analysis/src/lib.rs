//! Analysis tooling: minority-collapse diagnostics and convergence-rate
//! fitting.
//!
//! * [`concentration`] — the neuron-concentration metric behind Figs. 4
//!   and 13–17: how much of a neuron's activation mass its dominant class
//!   captures, per layer and averaged;
//! * [`spikes`] — abrupt-change detection for concentration/accuracy
//!   series (the "structured transitions" of §4);
//! * [`rate`] — power-law fitting of `avg ‖∇f‖²` vs `R` to check the
//!   Theorem 6.1 rate on the quadratic testbed;
//! * [`per_class`] — head/tail accuracy summaries for Fig. 8.

#![warn(missing_docs)]

pub mod concentration;
pub mod geometry;
pub mod per_class;
pub mod rate;
pub mod spikes;

pub use concentration::{layer_concentrations, mean_concentration, ConcentrationReport};
pub use geometry::{classifier_geometry, within_class_variability, ClassifierGeometry};
pub use per_class::{head_tail_summary, HeadTailSummary};
pub use rate::fit_power_law;
pub use spikes::detect_spikes;
