//! Seeded-violation tests for the `race_check` sanitizer.
//!
//! The deliberately overlapping write harness must panic **under
//! `race_check` and only under it**: the `sanitized` module proves each
//! violation class is detected with a named index/worker, and the
//! `unsanitized` module proves the same harness completes silently when
//! the feature is off (the shadow API degrades to no-ops). Both modules
//! also pin the sanitizer's behavior-invisibility at the value level.

use fedwcm_parallel::shadow::{ShadowChunks, ShadowSlots, ENABLED};
use fedwcm_parallel::{parallel_for_each, parallel_map, parallel_over_rows};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A deliberately overlapping parallel write: 8 indices funnel into 4
/// shadow slots, so under `race_check` some slot must observe a second
/// writer. Without the feature every shadow call is a no-op and the
/// job completes normally.
fn overlapping_write_harness() {
    let shadow = ShadowSlots::new(4);
    parallel_for_each(8, 4, |i| {
        shadow.record_write(i / 2);
    });
    shadow.seal();
}

/// Panic message of `f`, if it panics with a `&str` / `String` payload.
fn panic_message(f: impl FnOnce()) -> Option<String> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(()) => None,
        Err(payload) => Some(
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string()),
        ),
    }
}

/// Sanitizer on or off, the primitives must produce identical values —
/// the check layer observes, it never steers.
#[test]
fn sanitized_values_match_sequential_semantics() {
    for threads in [1, 2, 4, 8] {
        let out = parallel_map(100, threads, |i| i * 3 + 1);
        assert_eq!(out, (0..100).map(|i| i * 3 + 1).collect::<Vec<_>>());
    }
    let rows = 19;
    let row_len = 7;
    let fill = |r0: usize, _r1: usize, chunk: &mut [u32]| {
        for (off, x) in chunk.iter_mut().enumerate() {
            *x = ((r0 * row_len + off) * 13) as u32;
        }
    };
    let mut gold = vec![0u32; rows * row_len];
    fill(0, rows, &mut gold);
    for threads in [1, 3, 8] {
        let mut out = vec![0u32; rows * row_len];
        parallel_over_rows(&mut out, row_len, threads, fill);
        assert_eq!(out, gold, "threads={threads}");
    }
}

#[cfg(feature = "race_check")]
mod sanitized {
    use super::*;

    #[test]
    // Asserting on the const IS the point: this test pins the
    // feature-to-flag wiring.
    #[allow(clippy::assertions_on_constants)]
    fn feature_is_armed() {
        assert!(ENABLED, "race_check build must arm the shadow checks");
    }

    #[test]
    fn overlapping_writes_panic_with_named_slot() {
        let msg = panic_message(overlapping_write_harness)
            .expect("overlapping write harness must panic under race_check");
        assert!(
            msg.contains("double write to slot"),
            "unexpected panic message: {msg}"
        );
        assert!(msg.contains("participant"), "must name the writers: {msg}");
    }

    #[test]
    fn out_of_bounds_slot_write_panics() {
        let shadow = ShadowSlots::new(3);
        let msg = panic_message(|| shadow.record_write(5)).expect("oob write must panic");
        assert!(
            msg.contains("out-of-bounds write to slot 5"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn non_covering_job_panics_at_seal() {
        let shadow = ShadowSlots::new(3);
        shadow.record_write(0);
        shadow.record_write(2);
        let msg = panic_message(|| shadow.seal()).expect("hole must panic at seal");
        assert!(
            msg.contains("non-covering job") && msg.contains("slot 1"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn read_before_write_epoch_completes_panics() {
        let shadow = ShadowSlots::new(2);
        shadow.record_write(0);
        shadow.record_write(1);
        // No seal: the reader races the join.
        let msg = panic_message(|| shadow.assert_readable(0)).expect("unsealed read must panic");
        assert!(
            msg.contains("before its write epoch") && msg.contains("completed"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn overlapping_chunks_panic_at_registration() {
        let mut shadow = ShadowChunks::new(10, 3);
        shadow.register(0, 0, 4);
        let msg = panic_message(|| shadow.register(1, 3, 4)).expect("overlapping chunk must panic");
        assert!(
            msg.contains("overlaps chunk 0"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn out_of_bounds_chunk_panics_at_registration() {
        let mut shadow = ShadowChunks::new(10, 2);
        let msg = panic_message(|| shadow.register(0, 8, 4)).expect("oob chunk must panic");
        assert!(
            msg.contains("out-of-bounds chunk 0"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn non_covering_partition_panics() {
        let mut shadow = ShadowChunks::new(10, 2);
        shadow.register(0, 0, 4);
        shadow.register(1, 4, 2);
        let msg = panic_message(|| shadow.assert_covering()).expect("hole must panic");
        assert!(
            msg.contains("non-covering partition") && msg.contains("6 of 10"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn double_chunk_claim_panics() {
        let mut shadow = ShadowChunks::new(10, 2);
        shadow.register(0, 0, 5);
        shadow.register(1, 5, 5);
        shadow.assert_covering();
        shadow.claim(1);
        let msg = panic_message(|| shadow.claim(1)).expect("double claim must panic");
        assert!(
            msg.contains("double claim of chunk 1"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn clean_parallel_jobs_raise_no_false_positives() {
        // The real primitives exercise the full shadow path (pool claim
        // table, slot table, chunk table) and must stay silent.
        for _ in 0..50 {
            let out = parallel_map(64, 4, |i| i + 1);
            assert_eq!(out.len(), 64);
        }
        let mut buf = vec![0.0f32; 64 * 8];
        parallel_over_rows(&mut buf, 8, 4, |r0, _r1, chunk| {
            for (off, x) in chunk.iter_mut().enumerate() {
                *x = (r0 * 8 + off) as f32;
            }
        });
        // Nested jobs: each shadow table is per-job/per-epoch, so inner
        // jobs must not confuse the outer job's accounting.
        let out = parallel_map(6, 3, |i| {
            parallel_map(5, 2, move |j| (i + 1) * (j + 1))
                .into_iter()
                .sum::<usize>()
        });
        assert_eq!(out, (0..6).map(|i| (i + 1) * 15).collect::<Vec<_>>());
    }
}

#[cfg(not(feature = "race_check"))]
mod unsanitized {
    use super::*;

    #[test]
    // Asserting on the const IS the point: this test pins the
    // feature-to-flag wiring.
    #[allow(clippy::assertions_on_constants)]
    fn feature_is_disarmed() {
        assert!(!ENABLED, "shadow checks must be off without race_check");
    }

    #[test]
    fn overlapping_write_harness_completes_silently() {
        // "…and only under it": the identical harness that panics under
        // race_check must run to completion when the feature is off.
        assert!(
            panic_message(overlapping_write_harness).is_none(),
            "shadow API must be a no-op without race_check"
        );
    }

    #[test]
    fn shadow_api_is_inert() {
        let slots = ShadowSlots::new(4);
        slots.record_write(0);
        slots.record_write(0); // double write: ignored
        slots.record_write(99); // out of bounds: ignored
        slots.assert_readable(2); // unsealed read: ignored
        slots.seal();

        let mut chunks = ShadowChunks::new(10, 2);
        chunks.register(0, 0, 8);
        chunks.register(1, 4, 8); // overlapping and out of bounds: ignored
        chunks.assert_covering(); // non-covering: ignored
        chunks.claim(1);
        chunks.claim(1); // double claim: ignored
    }
}
