//! CReFF-style classifier re-training on federated features (Shang et
//! al., 2022).
//!
//! The bias of long-tail training concentrates in the classifier head;
//! CReFF re-trains it on *federated features* — per-class feature
//! prototypes contributed by clients — sampled in a class-balanced way.
//! This module implements the mechanism as a post-processing step usable
//! on any trained global model.

use fedwcm_data::dataset::{ClientView, Dataset};
use fedwcm_nn::dense::Dense;
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::model::Model;
use fedwcm_stats::rng::{Rng, Xoshiro256pp};
use fedwcm_tensor::Tensor;

/// Per-class feature prototypes gathered from clients ("federated
/// features"): for every class a client holds, the mean penultimate-layer
/// feature of its samples of that class.
pub fn gather_federated_features(
    model: &mut Model,
    dataset: &Dataset,
    views: &[ClientView],
) -> Vec<(usize, Vec<f32>)> {
    let classes = dataset.classes();
    let mut protos = Vec::new();
    for view in views {
        if view.is_empty() {
            continue;
        }
        let (x, y) = dataset.gather(view.indices());
        let (_, acts) = model.forward_collect(&x);
        // Penultimate activation: input to the final (classifier) layer.
        let feats = &acts[acts.len() - 2];
        let dim = feats.cols();
        let mut sums = vec![vec![0.0f32; dim]; classes];
        let mut counts = vec![0usize; classes];
        for (r, &label) in y.iter().enumerate() {
            counts[label] += 1;
            for (s, v) in sums[label].iter_mut().zip(feats.row(r)) {
                *s += v;
            }
        }
        for (c, (sum, &n)) in sums.into_iter().zip(&counts).enumerate() {
            if n > 0 {
                protos.push((c, sum.iter().map(|s| s / n as f32).collect()));
            }
        }
    }
    protos
}

/// Re-train the model's final classifier layer on class-balanced batches
/// of federated features. Mutates the model's classifier parameters in
/// place and returns the number of optimisation steps run.
pub fn creff_retrain(
    model: &mut Model,
    dataset: &Dataset,
    views: &[ClientView],
    steps: usize,
    lr: f32,
    seed: u64,
) -> usize {
    assert!(steps >= 1 && lr > 0.0);
    let protos = gather_federated_features(model, dataset, views);
    if protos.is_empty() {
        return 0;
    }
    let classes = dataset.classes();
    // Bucket prototypes by class for balanced sampling.
    let mut buckets: Vec<Vec<&Vec<f32>>> = vec![Vec::new(); classes];
    for (c, f) in &protos {
        buckets[*c].push(f);
    }
    let present: Vec<usize> = (0..classes).filter(|&c| !buckets[c].is_empty()).collect();
    assert!(!present.is_empty());
    let dim = protos[0].1.len();

    // Extract the classifier as a standalone one-layer model.
    let (off, len) = model.layer_param_range(model.num_layers() - 1);
    let mut rng = Xoshiro256pp::stream(seed, &[0xCEFF]);
    let mut head = Model::new(vec![Box::new(Dense::new(dim, classes))], dim, &mut rng);
    assert_eq!(head.param_len(), len, "classifier extraction size mismatch");
    head.set_params(&model.params()[off..off + len]);

    let batch = 32.min(present.len() * 4).max(4);
    let mut grads = vec![0.0f32; head.param_len()];
    for _ in 0..steps {
        let mut xv = Vec::with_capacity(batch * dim);
        let mut yv = Vec::with_capacity(batch);
        for _ in 0..batch {
            let c = present[rng.index(present.len())];
            let f = buckets[c][rng.index(buckets[c].len())];
            xv.extend_from_slice(f);
            yv.push(c);
        }
        let x = Tensor::from_vec(xv, &[batch, dim]);
        let _ = head.loss_grad(&x, &yv, &CrossEntropy, &mut grads);
        fedwcm_nn::opt::sgd_step(head.params_mut(), &grads, lr);
    }

    // Write the re-trained head back.
    model.params_mut()[off..off + len].copy_from_slice(head.params());
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_data::longtail::longtail_counts;
    use fedwcm_data::partition::paper_partition;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_fl::engine::evaluate_accuracy;
    use fedwcm_nn::models::mlp;

    #[test]
    fn gathers_prototypes_per_present_class() {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 40, 0.5);
        let ds = spec.generate_train(&counts, 131);
        let part = paper_partition(&ds, 4, 0.5, 131);
        let views = part.views(&ds);
        let mut rng = Xoshiro256pp::seed_from(7);
        let mut model = mlp(64, &[32], 10, &mut rng);
        let protos = gather_federated_features(&mut model, &ds, &views);
        assert!(!protos.is_empty());
        // Each prototype is a penultimate feature (width 32).
        assert!(protos.iter().all(|(c, f)| *c < 10 && f.len() == 32));
        // Every client contributes at most one prototype per class.
        assert!(protos.len() <= 4 * 10);
    }

    #[test]
    fn retrain_improves_longtail_accuracy_of_undertrained_model() {
        // Train a model briefly on long-tail data centrally, then CReFF
        // the head; tail-class accuracy should not get worse overall.
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 120, 0.05);
        let ds = spec.generate_train(&counts, 132);
        let test = spec.generate_test(132);
        let part = paper_partition(&ds, 4, 0.5, 132);
        let views = part.views(&ds);
        let mut rng = Xoshiro256pp::seed_from(8);
        let mut model = mlp(64, &[32], 10, &mut rng);
        // Quick biased training pass on the skewed data.
        let (x, y) = ds.as_batch();
        let mut grads = vec![0.0f32; model.param_len()];
        for _ in 0..60 {
            let _ = model.loss_grad(&x, &y, &CrossEntropy, &mut grads);
            fedwcm_nn::opt::sgd_step(model.params_mut(), &grads, 0.1);
        }
        let before = evaluate_accuracy(&mut model, &test);
        let ran = creff_retrain(&mut model, &ds, &views, 300, 0.1, 132);
        assert_eq!(ran, 300);
        let after = evaluate_accuracy(&mut model, &test);
        assert!(
            after > before - 0.02,
            "CReFF hurt accuracy: {before} -> {after}"
        );
    }

    #[test]
    fn retrain_only_touches_classifier() {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 30, 0.5);
        let ds = spec.generate_train(&counts, 133);
        let part = paper_partition(&ds, 3, 0.5, 133);
        let views = part.views(&ds);
        let mut rng = Xoshiro256pp::seed_from(9);
        let mut model = mlp(64, &[32], 10, &mut rng);
        let before = model.params().to_vec();
        let (off, _) = model.layer_param_range(model.num_layers() - 1);
        let _ = creff_retrain(&mut model, &ds, &views, 50, 0.1, 133);
        // Backbone untouched, head changed.
        assert_eq!(&model.params()[..off], &before[..off]);
        assert_ne!(&model.params()[off..], &before[off..]);
    }
}
