//! Seeded, deterministic network-fault schedules at the frame level.
//!
//! A [`NetPlan`] is the frame-layer sibling of `fedwcm_faults::FaultPlan`:
//! a pure function from `(round, client, attempt)` to an optional
//! [`NetFault`], drawn from a dedicated RNG stream so that attaching a
//! plan never perturbs sampling, training, or client-level fault streams.
//! Where the fault plan models *application* failures (a client crashing,
//! a stale replay), the net plan models the *wire*: a frame lost, damaged,
//! duplicated, reordered, or delayed in flight. Retries index the third
//! coordinate, so attempt 0 and attempt 1 of the same upload see
//! independent draws — exactly how a real lossy link behaves.

use fedwcm_faults::rates;
use fedwcm_stats::rng::{Rng, Xoshiro256pp};

/// Stream label for frame-level network fault draws (disjoint from the
/// sampling stream `0x5A3B`, the client-local stream `0xC11E`, and the
/// client-fault stream `0xFA17`).
pub const STREAM_NET: u64 = 0x4E17;

/// Stream label for retry-backoff jitter draws (disjoint from
/// [`STREAM_NET`] so backoff timing never perturbs the fault schedule).
pub const STREAM_NET_JITTER: u64 = 0x4E77;

/// One injected frame-level fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// The frame is lost: it never arrives.
    Drop,
    /// One bit of the frame is flipped in flight (`bit` is reduced modulo
    /// the frame's bit length by the link).
    Corrupt {
        /// Raw bit index; the link maps it into the frame.
        bit: u64,
    },
    /// The frame arrives twice.
    Duplicate,
    /// The frame is held back past later traffic before arriving.
    Reorder,
    /// The whole delivery arrives `rounds ≥ 1` rounds late, intact.
    Delay {
        /// Rounds of lateness (uniform on `1..=max_delay_rounds`).
        rounds: usize,
    },
}

/// Rates and seed defining a [`NetPlan`].
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Seed of the dedicated network RNG streams. Independent of the
    /// simulation and fault seeds.
    pub seed: u64,
    /// P(frame dropped).
    pub drop: f64,
    /// P(frame bit-corrupted).
    pub corrupt: f64,
    /// P(frame duplicated).
    pub duplicate: f64,
    /// P(frame reordered behind later traffic).
    pub reorder: f64,
    /// P(delivery delayed whole rounds).
    pub delay: f64,
    /// Maximum delay in rounds (delays are uniform on
    /// `1..=max_delay_rounds`); must be ≥ 1 whenever `delay > 0`.
    pub max_delay_rounds: usize,
}

impl NetConfig {
    /// A fault-free configuration (all rates zero) under `seed`.
    pub fn zero(seed: u64) -> Self {
        NetConfig {
            seed,
            drop: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            delay: 0.0,
            max_delay_rounds: 1,
        }
    }

    fn named_rates(&self) -> [(&'static str, f64); 5] {
        [
            ("drop", self.drop),
            ("corrupt", self.corrupt),
            ("dup", self.duplicate),
            ("reorder", self.reorder),
            ("delay", self.delay),
        ]
    }

    /// Validate rates; panics with context on misconfiguration.
    pub fn validate(&self) {
        rates::validate(&self.named_rates());
        assert!(
            self.delay == 0.0 || self.max_delay_rounds >= 1,
            "max_delay_rounds must be ≥ 1 when delays are enabled"
        );
    }

    /// Parse a CLI spec like `drop:0.1,corrupt:0.05,delay:2`.
    ///
    /// Comma-separated `key:value` pairs; keys: `drop`, `corrupt`, `dup`,
    /// `reorder`, `delayp` (delay *rate*), `delay` (max delay in rounds —
    /// also enables a default delay rate of 0.1 when `delayp` is unset),
    /// `seed`. Unknown keys, bad numbers, and invalid rate combinations
    /// are reported as errors rather than panics.
    pub fn parse(spec: &str) -> Result<NetConfig, String> {
        let mut cfg = NetConfig::zero(0);
        let mut delay_rate_set = false;
        let mut delay_rounds_set = false;
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("net spec item `{part}` is not key:value"))?;
            let bad_num = |k: &str, v: &str| format!("net spec `{k}` has a bad number `{v}`");
            match key {
                "drop" => cfg.drop = value.parse().map_err(|_| bad_num(key, value))?,
                "corrupt" => cfg.corrupt = value.parse().map_err(|_| bad_num(key, value))?,
                "dup" => cfg.duplicate = value.parse().map_err(|_| bad_num(key, value))?,
                "reorder" => cfg.reorder = value.parse().map_err(|_| bad_num(key, value))?,
                "delayp" => {
                    cfg.delay = value.parse().map_err(|_| bad_num(key, value))?;
                    delay_rate_set = true;
                }
                "delay" => {
                    cfg.max_delay_rounds = value.parse().map_err(|_| bad_num(key, value))?;
                    delay_rounds_set = true;
                }
                "seed" => cfg.seed = value.parse().map_err(|_| bad_num(key, value))?,
                _ => return Err(format!("unknown net spec key `{key}`")),
            }
        }
        if delay_rounds_set && !delay_rate_set && cfg.max_delay_rounds >= 1 {
            cfg.delay = 0.1;
        }
        rates::check(&cfg.named_rates())?;
        if cfg.delay > 0.0 && cfg.max_delay_rounds < 1 {
            return Err("max delay rounds must be ≥ 1 when delays are enabled".to_string());
        }
        Ok(cfg)
    }
}

/// A seeded, fully deterministic frame-level network fault schedule.
///
/// Stateless: [`NetPlan::net_fault_for`] is a pure function, so the
/// engine, probes, and reports can query the same schedule independently
/// and agree exactly, across any thread count.
#[derive(Clone, Debug)]
pub struct NetPlan {
    cfg: NetConfig,
}

impl NetPlan {
    /// Build a plan from a validated configuration.
    pub fn new(cfg: NetConfig) -> Self {
        cfg.validate();
        NetPlan { cfg }
    }

    /// A plan that injects nothing (the bitwise no-op plan).
    pub fn zero(seed: u64) -> Self {
        Self::new(NetConfig::zero(seed))
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// True if every rate is zero: the plan can never inject a fault.
    pub fn is_zero(&self) -> bool {
        self.cfg.drop == 0.0
            && self.cfg.corrupt == 0.0
            && self.cfg.duplicate == 0.0
            && self.cfg.reorder == 0.0
            && self.cfg.delay == 0.0
    }

    /// The frame fault injected for attempt `attempt` of client
    /// `client`'s upload in `round`, if any.
    ///
    /// A single uniform draw is partitioned by the configured rates in a
    /// fixed order (drop, corrupt, dup, reorder, delay); the corrupted
    /// bit index and the delay length come from follow-up draws on the
    /// same dedicated stream.
    pub fn net_fault_for(&self, round: u64, client: u64, attempt: u32) -> Option<NetFault> {
        if self.is_zero() {
            return None;
        }
        let mut rng = Xoshiro256pp::stream(
            self.cfg.seed,
            &[STREAM_NET, round, client, u64::from(attempt)],
        );
        let u = rng.next_f64();
        match rates::pick(
            u,
            &[
                self.cfg.drop,
                self.cfg.corrupt,
                self.cfg.duplicate,
                self.cfg.reorder,
                self.cfg.delay,
            ],
        ) {
            Some(0) => Some(NetFault::Drop),
            Some(1) => Some(NetFault::Corrupt {
                bit: rng.next_u64(),
            }),
            Some(2) => Some(NetFault::Duplicate),
            Some(3) => Some(NetFault::Reorder),
            Some(4) => Some(NetFault::Delay {
                rounds: 1 + rng.index(self.cfg.max_delay_rounds),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy_cfg(seed: u64) -> NetConfig {
        NetConfig {
            seed,
            drop: 0.1,
            corrupt: 0.05,
            duplicate: 0.05,
            reorder: 0.05,
            delay: 0.05,
            max_delay_rounds: 2,
        }
    }

    #[test]
    fn schedule_is_pure() {
        let a = NetPlan::new(lossy_cfg(7));
        let b = NetPlan::new(lossy_cfg(7));
        for round in 0..30 {
            for client in 0..10 {
                for attempt in 0..4 {
                    assert_eq!(
                        a.net_fault_for(round, client, attempt),
                        b.net_fault_for(round, client, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn attempts_draw_independently() {
        let plan = NetPlan::new(NetConfig {
            drop: 0.5,
            ..NetConfig::zero(3)
        });
        let differs =
            (0..40u64).any(|c| plan.net_fault_for(0, c, 0) != plan.net_fault_for(0, c, 1));
        assert!(differs, "attempts 0 and 1 agreed on 40 straight clients");
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let plan = NetPlan::zero(9);
        assert!(plan.is_zero());
        for round in 0..50 {
            for client in 0..10 {
                assert_eq!(plan.net_fault_for(round, client, 0), None);
            }
        }
    }

    #[test]
    fn delays_respect_the_cap() {
        let plan = NetPlan::new(NetConfig {
            delay: 1.0,
            max_delay_rounds: 3,
            ..NetConfig::zero(11)
        });
        for client in 0..100 {
            match plan.net_fault_for(0, client, 0) {
                Some(NetFault::Delay { rounds }) => assert!((1..=3).contains(&rounds)),
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_round_trips_the_readme_example() {
        let cfg = NetConfig::parse("drop:0.1,delay:2").expect("valid spec");
        assert_eq!(cfg.drop, 0.1);
        assert_eq!(cfg.max_delay_rounds, 2);
        assert_eq!(cfg.delay, 0.1, "delay:N implies a default delay rate");
        let cfg = NetConfig::parse("drop:0.2,delayp:0.3,delay:4,seed:42").expect("valid spec");
        assert_eq!(cfg.delay, 0.3);
        assert_eq!(cfg.max_delay_rounds, 4);
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(NetConfig::parse("drop").is_err());
        assert!(NetConfig::parse("drop:x").is_err());
        assert!(NetConfig::parse("warp:0.1").is_err());
        assert!(NetConfig::parse("drop:0.9,corrupt:0.9").is_err());
        assert!(NetConfig::parse("drop:-0.1").is_err());
    }

    #[test]
    #[should_panic]
    fn rates_over_one_rejected() {
        NetPlan::new(NetConfig {
            drop: 0.9,
            corrupt: 0.9,
            ..NetConfig::zero(1)
        });
    }
}
