//! Integration tests for the pluggable aggregation cadences:
//!
//! * buffered-K with `K` = the full cohort is bitwise identical to the
//!   synchronous barrier on a fault-free run;
//! * buffered-K and fully-async runs are bitwise deterministic across
//!   thread counts, faults included;
//! * a buffered/async run killed mid-stream resumes bitwise identically
//!   through FWCK v3 bytes, aggregation buffer included;
//! * resuming a checkpoint under a different cadence is refused;
//! * hand-built FWCK **v2** bytes (pre-cadence) still parse, back-fill
//!   the new columns, and resume as a synchronous run.

use fedwcm_data::dataset::Dataset;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_faults::{FaultConfig, FaultPlan};
use fedwcm_fl::algorithm::{
    server_step, state_from_vec, state_to_vec, uniform_average, RoundInput, RoundLog, StateError,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_fl::{
    Cadence, CheckpointError, FederatedAlgorithm, FlConfig, History, ServerCheckpoint, Simulation,
};
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::models::mlp;
use fedwcm_nn::serialize::{put_bytes, put_f32s, put_str, put_u32, put_u64};
use fedwcm_stats::Xoshiro256pp;

/// Momentum-carrying test algorithm (FedCM-shaped): cross-round server
/// state makes any resume or cadence bug visible immediately.
struct MiniMomentum {
    beta: f32,
    momentum: Vec<f32>,
}

impl MiniMomentum {
    fn new() -> Self {
        MiniMomentum {
            beta: 0.7,
            momentum: Vec::new(),
        }
    }
}

impl FederatedAlgorithm for MiniMomentum {
    fn name(&self) -> String {
        "mini-momentum".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        run_local_sgd(env, global, &spec, |_, _, _| {})
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        if self.momentum.is_empty() {
            self.momentum = vec![0.0f32; global.len()];
        }
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        for (m, d) in self.momentum.iter_mut().zip(&dir) {
            *m = self.beta * *m + (1.0 - self.beta) * d;
        }
        let step = self.momentum.clone();
        server_step(global, &step, input.cfg, input.mean_batches());
        RoundLog::default()
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(state_from_vec(&self.momentum))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.momentum = state_to_vec(bytes)?;
        Ok(())
    }
}

fn make_data(seed: u64) -> (Dataset, Dataset) {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 60, 0.5);
    (spec.generate_train(&counts, seed), spec.generate_test(seed))
}

/// 6 clients at 0.5 participation: a 3-client cohort per round.
fn make_cfg(rounds: usize, cadence: Cadence) -> FlConfig {
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 6;
    cfg.participation = 0.5;
    cfg.rounds = rounds;
    cfg.local_epochs = 1;
    cfg.batch_size = 20;
    cfg.eval_every = 2;
    cfg.seed = 77;
    cfg.cadence = cadence;
    cfg
}

fn build_sim<'a>(train: &'a Dataset, test: &'a Dataset, cfg: FlConfig) -> Simulation<'a> {
    let views = paper_partition(train, cfg.clients, 0.5, cfg.seed).views(train);
    Simulation::new(
        cfg,
        train,
        test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(4242);
            mlp(64, &[24], 10, &mut rng)
        }),
    )
}

fn busy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        dropout: 0.2,
        straggler: 0.2,
        max_delay: 3,
        corruption: 0.1,
        replay: 0.1,
        ..FaultConfig::zero(seed)
    })
}

fn assert_bitwise_eq(a: &History, b: &History, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: round counts");
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.round, y.round, "{label}");
        assert_eq!(
            x.train_loss.map(f64::to_bits),
            y.train_loss.map(f64::to_bits),
            "{label}: round {} train_loss",
            x.round
        );
        assert_eq!(
            x.update_norm.to_bits(),
            y.update_norm.to_bits(),
            "{label}: round {} update_norm",
            x.round
        );
        assert_eq!(
            x.test_acc.map(f64::to_bits),
            y.test_acc.map(f64::to_bits),
            "{label}: round {} test_acc",
            x.round
        );
        assert_eq!(
            x.alpha.map(f64::to_bits),
            y.alpha.map(f64::to_bits),
            "{label}: round {} alpha",
            x.round
        );
        assert_eq!(x.aggregations, y.aggregations, "{label}: round {}", x.round);
        assert_eq!(x.dropped_updates, y.dropped_updates, "{label}");
        assert_eq!(x.faults, y.faults, "{label}: round {} faults", x.round);
    }
}

/// With `K` = the cohort size and no faults, every round buffers exactly
/// one cohort and flushes it whole: the same updates reach the algorithm
/// in the same order with zero staleness, so the trajectory is bitwise
/// the synchronous one.
#[test]
fn buffered_full_cohort_matches_sync_bitwise() {
    let (train, test) = make_data(201);
    let sync = build_sim(&train, &test, make_cfg(6, Cadence::Sync)).run(&mut MiniMomentum::new());
    let buffered = build_sim(&train, &test, make_cfg(6, Cadence::BufferedK { k: 3 }))
        .run(&mut MiniMomentum::new());
    assert_bitwise_eq(&sync, &buffered, "buffered:3 vs sync");
    assert!(sync.records.iter().all(|r| r.aggregations == 1));
}

/// Buffered and async runs — under a plan exercising every fault type —
/// must not depend on the worker thread count.
#[test]
fn buffered_and_async_deterministic_across_threads() {
    let (train, test) = make_data(202);
    for cadence in [
        Cadence::BufferedK { k: 4 },
        Cadence::Async { max_in_flight: 2 },
    ] {
        let mut histories = Vec::new();
        for threads in [1usize, 4] {
            let mut cfg = make_cfg(8, cadence);
            cfg.threads = threads;
            let h = build_sim(&train, &test, cfg)
                .with_fault_plan(busy_plan(0xFA))
                .run(&mut MiniMomentum::new());
            histories.push(h);
        }
        assert_bitwise_eq(
            &histories[0],
            &histories[1],
            &format!("{} threads 1 vs 4", cadence.label()),
        );
    }
}

/// Kill a buffered/async chaos run at round 3, round-trip the checkpoint
/// through FWCK v3 bytes, and finish: the history must be bitwise the
/// uninterrupted run's. `k`/`max_in_flight` are chosen so the
/// aggregation buffer is non-empty at the kill point — the v3 field this
/// exercises.
#[test]
fn buffered_and_async_resume_is_bitwise_identical() {
    let (train, test) = make_data(203);
    for cadence in [
        Cadence::BufferedK { k: 4 },
        Cadence::Async { max_in_flight: 2 },
    ] {
        let label = cadence.label();
        let cfg = make_cfg(8, cadence);
        let full = build_sim(&train, &test, cfg.clone())
            .with_fault_plan(busy_plan(0xC4))
            .run(&mut MiniMomentum::new());

        let sim = build_sim(&train, &test, cfg.clone()).with_fault_plan(busy_plan(0xC4));
        let ckpt = sim
            .run_until(&mut MiniMomentum::new(), 3)
            .unwrap_or_else(|e| panic!("{label}: checkpoint failed: {e}"));
        assert_eq!(ckpt.cadence(), cadence);
        let bytes = ckpt.to_bytes();
        let restored = ServerCheckpoint::from_bytes(&bytes)
            .unwrap_or_else(|e| panic!("{label}: parse failed: {e}"));
        assert_eq!(
            restored.to_bytes(),
            bytes,
            "{label}: serialize → parse → serialize must be the identity"
        );

        let sim2 = build_sim(&train, &test, cfg).with_fault_plan(busy_plan(0xC4));
        let resumed = sim2
            .resume(&mut MiniMomentum::new(), &restored)
            .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"));
        assert_bitwise_eq(&full, &resumed, &format!("{label}: full vs resumed"));
    }
}

/// The aggregation buffer's batch boundaries are cadence-dependent, so a
/// checkpoint must not silently resume under a different cadence.
#[test]
fn cadence_mismatch_on_resume_is_rejected() {
    let (train, test) = make_data(204);
    let ckpt = build_sim(&train, &test, make_cfg(6, Cadence::BufferedK { k: 4 }))
        .run_until(&mut MiniMomentum::new(), 2)
        .expect("checkpoint");
    let sync_sim = build_sim(&train, &test, make_cfg(6, Cadence::Sync));
    assert_eq!(
        sync_sim
            .resume(&mut MiniMomentum::new(), &ckpt)
            .expect_err("cadence mismatch must be refused"),
        CheckpointError::ConfigMismatch
    );
}

/// `max_in_flight` bounds the per-round application window: a cohort of
/// 3 against a window of 1 applies exactly one update per round and
/// carries the rest as backlog — and the run is still a run (the model
/// moves every round).
#[test]
fn async_window_rate_limits_applications() {
    let (train, test) = make_data(205);
    let h = build_sim(
        &train,
        &test,
        make_cfg(5, Cadence::Async { max_in_flight: 1 }),
    )
    .run(&mut MiniMomentum::new());
    for r in &h.records {
        assert_eq!(r.aggregations, 1, "round {}: window of 1", r.round);
        assert!(r.update_norm > 0.0, "round {}: model must move", r.round);
    }
}

/// A buffer threshold larger than the whole run's upload count never
/// flushes: no aggregation, no model movement — by design, not by crash.
#[test]
fn buffered_threshold_above_total_never_flushes() {
    let (train, test) = make_data(206);
    let h = build_sim(&train, &test, make_cfg(4, Cadence::BufferedK { k: 100 }))
        .run(&mut MiniMomentum::new());
    for r in &h.records {
        assert_eq!(r.aggregations, 0, "round {}", r.round);
        assert_eq!(r.update_norm, 0.0, "round {}", r.round);
    }
}

/// Serialize a minimal FWCK **v2** checkpoint by hand (pre-cadence wire
/// format: no cadence tag, no aggregations/late_requeued columns, no
/// aggregation buffer).
fn v2_bytes(fingerprint: [u64; 4], global: &[f32], records: &[(usize, f64)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"FWCK");
    put_u32(&mut out, 2);
    for &f in &fingerprint {
        put_u64(&mut out, f);
    }
    put_u64(&mut out, records.len() as u64); // next_round
    put_f32s(&mut out, global);
    put_str(&mut out, "mini-momentum");
    put_bytes(&mut out, &state_from_vec(&[]));
    put_str(&mut out, "mini-momentum"); // history name
    put_u64(&mut out, records.len() as u64);
    for &(round, update_norm) in records {
        put_u64(&mut out, round as u64);
        put_u32(&mut out, 0); // train_loss: None
        out.extend_from_slice(&update_norm.to_le_bytes());
        put_u32(&mut out, 0); // test_acc: None
        put_u32(&mut out, 0); // alpha: None
        put_u64(&mut out, 0); // dropped_updates
        for _ in 0..5 {
            put_u32(&mut out, 0); // dropouts..replays
        }
        put_u32(&mut out, 0); // quorum_failed
    }
    put_u64(&mut out, 0); // metrics entries
    put_u64(&mut out, 0); // pending
    put_u64(&mut out, 0); // replay cache
    out
}

/// v2 bytes still parse: cadence defaults to sync, `late_requeued` to
/// zero, and `aggregations` is back-filled from whether the model moved.
#[test]
fn v2_checkpoint_parses_with_backfilled_columns() {
    let bytes = v2_bytes([77, 6, 6, 10], &[0.5f32; 10], &[(0, 0.25), (1, 0.0)]);
    let ckpt = ServerCheckpoint::from_bytes(&bytes).expect("v2 parses");
    assert_eq!(ckpt.cadence(), Cadence::Sync);
    assert_eq!(ckpt.next_round(), 2);
    let recs = &ckpt.history().records;
    assert_eq!(recs[0].aggregations, 1, "moved ⇒ one sync aggregation");
    assert_eq!(recs[1].aggregations, 0, "skipped ⇒ none");
    assert!(recs.iter().all(|r| r.faults.late_requeued == 0));
    // Re-serializing upgrades to the current version: the bytes change,
    // but the parsed state round-trips.
    let v3 = ckpt.to_bytes();
    assert_ne!(v3, bytes);
    let reparsed = ServerCheckpoint::from_bytes(&v3).expect("v3 re-parse");
    assert_eq!(reparsed.to_bytes(), v3);
}

/// A pre-round-0 v2 checkpoint resumes into a run bitwise identical to a
/// fresh one — the v2 read path feeds the same engine state.
#[test]
fn v2_checkpoint_resumes_as_sync_run() {
    let (train, test) = make_data(207);
    let cfg = make_cfg(4, Cadence::Sync);
    let fresh = build_sim(&train, &test, cfg.clone()).run(&mut MiniMomentum::new());

    let mut rng = Xoshiro256pp::seed_from(4242);
    let initial = mlp(64, &[24], 10, &mut rng).params().to_vec();
    let fingerprint = [
        cfg.seed,
        cfg.clients as u64,
        cfg.rounds as u64,
        initial.len() as u64,
    ];
    let ckpt =
        ServerCheckpoint::from_bytes(&v2_bytes(fingerprint, &initial, &[])).expect("v2 parses");
    let resumed = build_sim(&train, &test, cfg)
        .resume(&mut MiniMomentum::new(), &ckpt)
        .expect("v2 resume");
    assert_bitwise_eq(&fresh, &resumed, "v2 resume vs fresh");
}
