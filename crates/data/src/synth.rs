//! Synthetic vision-like dataset generators and per-paper-dataset presets.
//!
//! Each class has a fixed Gaussian prototype; a sample is the prototype
//! plus isotropic noise, with an optional label-flip rate that caps the
//! attainable accuracy (standing in for the irreducible error of the real
//! benchmark). Image-mode presets generate spatially-smooth prototypes
//! (low-resolution patterns upsampled 2×) so convolutional models have
//! genuine spatial structure to exploit.
//!
//! The class-separation parameter is specified in noise-σ units and is
//! converted to a prototype scale analytically, which keeps the difficulty
//! comparable across feature dimensionalities.

use crate::dataset::Dataset;
use fedwcm_stats::dist::Normal;
use fedwcm_stats::rng::{Rng, Xoshiro256pp};
use fedwcm_tensor::Tensor;

/// Stream labels for seed splitting.
const STREAM_PROTO: u64 = 0xDA7A_0001;
const STREAM_TRAIN: u64 = 0xDA7A_0002;
const STREAM_TEST: u64 = 0xDA7A_0003;

/// Feature layout of a synthetic dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeatureShape {
    /// Flat feature vector of the given dimensionality (MLP presets).
    Flat(usize),
    /// Image `[channels, height, width]` (CNN presets).
    Image(usize, usize, usize),
}

impl FeatureShape {
    /// Total feature count.
    pub fn dim(&self) -> usize {
        match *self {
            FeatureShape::Flat(d) => d,
            FeatureShape::Image(c, h, w) => c * h * w,
        }
    }
}

/// Full specification of a synthetic dataset family.
#[derive(Clone, Debug)]
pub struct SyntheticSpec {
    /// Human-readable name (matches the paper dataset it stands in for).
    pub name: &'static str,
    /// Number of classes.
    pub classes: usize,
    /// Feature layout.
    pub shape: FeatureShape,
    /// Class separation in units of noise σ (larger = easier).
    pub separation: f64,
    /// Per-sample isotropic noise std.
    pub noise_std: f64,
    /// Probability that a training label is flipped to a random class.
    pub label_flip: f64,
    /// Default training-set size used by experiment presets.
    pub default_train_total: usize,
    /// Balanced test samples per class.
    pub test_per_class: usize,
}

/// Which paper dataset a preset substitutes for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetPreset {
    /// Fashion-MNIST stand-in (flat features, MLP model).
    FashionMnist,
    /// SVHN stand-in (easier image preset).
    Svhn,
    /// CIFAR-10 stand-in (primary evaluation dataset).
    Cifar10,
    /// CIFAR-100 stand-in (100 classes, harder).
    Cifar100,
    /// ImageNet stand-in (100 classes, hardest).
    ImageNetLite,
}

impl DatasetPreset {
    /// All presets in the paper's table order.
    pub fn all() -> [DatasetPreset; 5] {
        [
            DatasetPreset::FashionMnist,
            DatasetPreset::Svhn,
            DatasetPreset::Cifar10,
            DatasetPreset::Cifar100,
            DatasetPreset::ImageNetLite,
        ]
    }

    /// The synthetic specification for this preset.
    pub fn spec(self) -> SyntheticSpec {
        match self {
            DatasetPreset::FashionMnist => SyntheticSpec {
                name: "fashion-mnist",
                classes: 10,
                shape: FeatureShape::Flat(64),
                separation: 2.6,
                noise_std: 1.0,
                label_flip: 0.04,
                default_train_total: 4_000,
                test_per_class: 60,
            },
            DatasetPreset::Svhn => SyntheticSpec {
                name: "svhn",
                classes: 10,
                shape: FeatureShape::Image(3, 8, 8),
                separation: 3.0,
                noise_std: 1.0,
                label_flip: 0.02,
                default_train_total: 4_000,
                test_per_class: 60,
            },
            DatasetPreset::Cifar10 => SyntheticSpec {
                name: "cifar-10",
                classes: 10,
                shape: FeatureShape::Image(3, 8, 8),
                separation: 2.2,
                noise_std: 1.0,
                label_flip: 0.08,
                default_train_total: 4_000,
                test_per_class: 60,
            },
            DatasetPreset::Cifar100 => SyntheticSpec {
                name: "cifar-100",
                classes: 100,
                shape: FeatureShape::Image(3, 8, 8),
                separation: 2.0,
                noise_std: 1.0,
                label_flip: 0.15,
                default_train_total: 8_000,
                test_per_class: 10,
            },
            DatasetPreset::ImageNetLite => SyntheticSpec {
                name: "imagenet-lite",
                classes: 100,
                shape: FeatureShape::Image(3, 8, 8),
                separation: 1.7,
                noise_std: 1.0,
                label_flip: 0.25,
                default_train_total: 8_000,
                test_per_class: 10,
            },
        }
    }
}

impl SyntheticSpec {
    /// Prototype scale that realises `separation` in σ units: two random
    /// prototypes with i.i.d. `N(0, s²)` coordinates sit `s·√(2d)` apart in
    /// expectation, so `s = separation · 2σ / √(2d)` gives a pairwise
    /// margin of `separation` noise-σ's between class means.
    pub fn prototype_scale(&self) -> f64 {
        let d = self.shape.dim() as f64;
        self.separation * 2.0 * self.noise_std / (2.0 * d).sqrt()
    }

    /// Deterministic class prototypes `[classes, dim]` for a dataset seed.
    pub fn prototypes(&self, seed: u64) -> Tensor {
        let mut rng = Xoshiro256pp::stream(seed, &[STREAM_PROTO]);
        let d = self.shape.dim();
        let s = self.prototype_scale() as f32;
        let mut protos = Tensor::zeros(&[self.classes, d]);
        match self.shape {
            FeatureShape::Flat(_) => {
                let mut normal = Normal::new(0.0, s as f64);
                normal.fill_f32(&mut rng, protos.as_mut_slice());
            }
            FeatureShape::Image(c, h, w) => {
                // Low-res pattern upsampled 2× (nearest) per channel →
                // spatially smooth prototypes that convolutions can exploit.
                assert!(h % 2 == 0 && w % 2 == 0, "image dims must be even");
                let (lh, lw) = (h / 2, w / 2);
                // Upsampling duplicates each low-res value into a 2×2
                // block; per-pixel std `s` keeps the total vector-norm
                // calibration identical to the flat case.
                let mut normal = Normal::new(0.0, s as f64);
                let mut low = vec![0.0f32; lh * lw];
                for cls in 0..self.classes {
                    let row = protos.row_mut(cls);
                    for ch in 0..c {
                        for v in low.iter_mut() {
                            *v = normal.sample(&mut rng) as f32;
                        }
                        let chan = &mut row[ch * h * w..(ch + 1) * h * w];
                        for y in 0..h {
                            for x in 0..w {
                                chan[y * w + x] = low[(y / 2) * lw + (x / 2)];
                            }
                        }
                    }
                }
            }
        }
        protos
    }

    /// Materialise a training set with the given per-class counts.
    ///
    /// Samples are laid out class-by-class then shuffled; labels are
    /// flipped to a uniformly random *other* class with probability
    /// `label_flip`.
    pub fn generate_train(&self, counts: &[usize], seed: u64) -> Dataset {
        assert_eq!(counts.len(), self.classes, "counts/classes mismatch");
        self.generate(
            counts,
            Xoshiro256pp::stream(seed, &[STREAM_TRAIN]),
            self.label_flip,
            seed,
        )
    }

    /// Materialise the balanced test set (no label noise).
    pub fn generate_test(&self, seed: u64) -> Dataset {
        let counts = vec![self.test_per_class; self.classes];
        self.generate(
            &counts,
            Xoshiro256pp::stream(seed, &[STREAM_TEST]),
            0.0,
            seed,
        )
    }

    fn generate(&self, counts: &[usize], mut rng: Xoshiro256pp, flip: f64, seed: u64) -> Dataset {
        let protos = self.prototypes(seed);
        let d = self.shape.dim();
        let total: usize = counts.iter().sum();
        let mut features = Vec::with_capacity(total * d);
        let mut labels = Vec::with_capacity(total);
        let mut noise = Normal::new(0.0, self.noise_std);
        for (c, &n) in counts.iter().enumerate() {
            let proto = protos.row(c);
            for _ in 0..n {
                for &p in proto {
                    features.push(p + noise.sample(&mut rng) as f32);
                }
                let label = if flip > 0.0 && rng.bernoulli(flip) {
                    // Uniform over the other classes.
                    let mut other = rng.index(self.classes - 1);
                    if other >= c {
                        other += 1;
                    }
                    other
                } else {
                    c
                };
                labels.push(label);
            }
        }
        // Shuffle samples so index order carries no class information.
        let mut order: Vec<usize> = (0..total).collect();
        rng.shuffle(&mut order);
        let mut shuffled = Vec::with_capacity(total * d);
        let mut shuffled_labels = Vec::with_capacity(total);
        for &i in &order {
            shuffled.extend_from_slice(&features[i * d..(i + 1) * d]);
            shuffled_labels.push(labels[i]);
        }
        Dataset::new(
            Tensor::from_vec(shuffled, &[total, d]),
            shuffled_labels,
            self.classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longtail::longtail_counts;

    #[test]
    fn presets_have_consistent_dims() {
        for p in DatasetPreset::all() {
            let spec = p.spec();
            assert!(spec.classes >= 10);
            assert!(spec.shape.dim() >= 64);
            assert!(spec.separation > 0.0);
        }
    }

    #[test]
    fn prototypes_deterministic_per_seed() {
        let spec = DatasetPreset::Cifar10.spec();
        let a = spec.prototypes(7);
        let b = spec.prototypes(7);
        let c = spec.prototypes(8);
        assert_eq!(a, b);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn prototype_separation_close_to_target() {
        let spec = DatasetPreset::Cifar10.spec();
        let protos = spec.prototypes(3);
        // Mean pairwise distance should be ≈ separation · 2σ.
        let mut total = 0.0f64;
        let mut pairs = 0usize;
        for i in 0..spec.classes {
            for j in (i + 1)..spec.classes {
                let d2: f32 = protos
                    .row(i)
                    .iter()
                    .zip(protos.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                total += (d2 as f64).sqrt();
                pairs += 1;
            }
        }
        let mean_dist = total / pairs as f64;
        let target = spec.separation * 2.0 * spec.noise_std;
        assert!(
            (mean_dist - target).abs() / target < 0.25,
            "mean pairwise {mean_dist} vs target {target}"
        );
    }

    #[test]
    fn image_prototypes_are_spatially_smooth() {
        let spec = DatasetPreset::Svhn.spec();
        let protos = spec.prototypes(1);
        // Nearest-neighbour 2× upsampling ⇒ 2×2 blocks are constant.
        let row = protos.row(0);
        let (h, w) = (8usize, 8usize);
        for ch in 0..3 {
            let chan = &row[ch * 64..(ch + 1) * 64];
            for y in (0..h).step_by(2) {
                for x in (0..w).step_by(2) {
                    let v = chan[y * w + x];
                    assert_eq!(chan[y * w + x + 1], v);
                    assert_eq!(chan[(y + 1) * w + x], v);
                    assert_eq!(chan[(y + 1) * w + x + 1], v);
                }
            }
        }
    }

    #[test]
    fn train_counts_respected_up_to_flips() {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 200, 0.1);
        let ds = spec.generate_train(&counts, 42);
        assert_eq!(ds.len(), counts.iter().sum::<usize>());
        // Flips move ~4% of labels; class counts stay close to the target.
        let got = ds.class_counts();
        for (g, c) in got.iter().zip(&counts) {
            let drift = (*g as f64 - *c as f64).abs();
            assert!(drift <= 0.05 * ds.len() as f64 + 5.0, "class drift {drift}");
        }
    }

    #[test]
    fn test_set_balanced_and_clean() {
        let spec = DatasetPreset::Cifar10.spec();
        let ds = spec.generate_test(42);
        assert_eq!(ds.len(), 10 * spec.test_per_class);
        assert!(ds.class_counts().iter().all(|&n| n == spec.test_per_class));
    }

    #[test]
    fn dataset_is_learnable_by_nearest_prototype() {
        // The generator must produce a dataset where the Bayes-ish
        // nearest-prototype rule clearly beats chance.
        let spec = DatasetPreset::Cifar10.spec();
        let protos = spec.prototypes(9);
        let test = spec.generate_test(9);
        let mut correct = 0usize;
        for i in 0..test.len() {
            let x = test.feature_row(i);
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..spec.classes {
                let d: f32 = protos
                    .row(c)
                    .iter()
                    .zip(x)
                    .map(|(p, v)| (p - v) * (p - v))
                    .sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best == test.label(i) {
                correct += 1;
            }
        }
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.55, "nearest-prototype accuracy {acc}");
    }

    #[test]
    fn different_seeds_give_different_data() {
        let spec = DatasetPreset::FashionMnist.spec();
        let a = spec.generate_train(&[10; 10], 1);
        let b = spec.generate_train(&[10; 10], 2);
        assert_ne!(a.feature_row(0), b.feature_row(0));
    }
}
