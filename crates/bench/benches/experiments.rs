//! One bench target per paper table/figure: each measures regenerating a
//! smoke-scale *cell* of that artifact (full artifacts come from the
//! `fedwcm-experiments` binaries; these benches keep every experiment
//! path exercised and timed under `cargo bench`).

use criterion::{criterion_group, criterion_main, Criterion};
use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::collapse::run_with_concentration;
use fedwcm_experiments::report::{run_cell, run_history};
use fedwcm_experiments::{Cli, ExpConfig, Method, Scale};
use fedwcm_he::protocol::aggregate_distributions;
use fedwcm_he::rlwe::RlweParams;
use fedwcm_stats::rng::{Rng, Xoshiro256pp};
use std::hint::black_box;

fn smoke_cli() -> Cli {
    Cli {
        scale: Scale::Smoke,
        ..Cli::default()
    }
}

fn smoke_exp(imbalance: f64, beta: f64) -> ExpConfig {
    // Fashion-MNIST preset: the cheapest model, keeps cell benches fast.
    ExpConfig::new(
        DatasetPreset::FashionMnist,
        imbalance,
        beta,
        Scale::Smoke,
        42,
    )
}

fn bench_cells(c: &mut Criterion) {
    let cli = smoke_cli();

    c.bench_function("fig2_partition_cell", |b| {
        let exp = smoke_exp(0.1, 0.1);
        b.iter(|| {
            let task = exp.prepare();
            black_box(task.partition.counts_matrix(&task.train))
        });
    });
    c.bench_function("fig3_motivation_cell", |b| {
        let exp = smoke_exp(0.1, 0.1);
        b.iter(|| black_box(run_history(&exp, Method::FedCm, &cli)));
    });
    c.bench_function("fig4_fig17_concentration_cell", |b| {
        let exp = smoke_exp(0.1, 0.1);
        b.iter(|| black_box(run_with_concentration(&exp, Method::FedCm, &cli, 2)));
    });
    c.bench_function("table1_table7_cell", |b| {
        let exp = smoke_exp(0.1, 0.6);
        b.iter(|| black_box(run_cell(&exp, Method::FedWcm, &cli)));
    });
    c.bench_function("table2_cell", |b| {
        let exp = smoke_exp(0.1, 0.6);
        b.iter(|| black_box(run_cell(&exp, Method::FedGrab, &cli)));
    });
    c.bench_function("fig7_convergence_cell", |b| {
        let exp = smoke_exp(0.1, 0.6);
        b.iter(|| black_box(run_history(&exp, Method::FedWcm, &cli)));
    });
    c.bench_function("fig8_per_label_cell", |b| {
        let exp = smoke_exp(0.1, 0.6);
        b.iter(|| {
            let task = exp.prepare();
            let sim = task.simulation();
            let mut algo = fedwcm_experiments::build_method(Method::FedAvg, &task);
            let (_, mut model) = sim.run_returning_model(algo.as_mut());
            black_box(fedwcm_analysis::per_class::head_tail_summary(
                &mut model,
                &task.test,
                &task.global_counts(),
            ))
        });
    });
    c.bench_function("table3_sampling_cell", |b| {
        let mut exp = smoke_exp(0.1, 0.6);
        exp.participation = 0.25;
        b.iter(|| black_box(run_cell(&exp, Method::FedAvg, &cli)));
    });
    c.bench_function("fig9_clients_cell", |b| {
        let mut exp = smoke_exp(0.1, 0.6);
        exp.clients = 12;
        b.iter(|| black_box(run_cell(&exp, Method::FedAvg, &cli)));
    });
    c.bench_function("fig10_epochs_cell", |b| {
        let mut exp = smoke_exp(0.1, 0.6);
        exp.local_epochs = 2;
        b.iter(|| black_box(run_cell(&exp, Method::FedCm, &cli)));
    });
    c.bench_function("table4_beta_if_cell", |b| {
        let exp = smoke_exp(0.04, 0.1);
        b.iter(|| black_box(run_cell(&exp, Method::FedWcm, &cli)));
    });
    c.bench_function("fig11_fig12_table5_fedgrab_partition_cell", |b| {
        let mut exp = smoke_exp(0.1, 0.1);
        exp.fedgrab_partition = true;
        b.iter(|| black_box(run_cell(&exp, Method::FedWcmX, &cli)));
    });
    c.bench_function("fig13_16_layer_concentration_cell", |b| {
        let exp = smoke_exp(0.1, 0.1);
        b.iter(|| black_box(run_with_concentration(&exp, Method::FedWcm, &cli, 2)));
    });
    c.bench_function("fig18_19_hetero_cell", |b| {
        let exp = smoke_exp(1.0, 0.1);
        b.iter(|| black_box(run_history(&exp, Method::Scaffold, &cli)));
    });
    c.bench_function("table6_he_cell", |b| {
        let mut rng = Xoshiro256pp::seed_from(5);
        let counts: Vec<Vec<usize>> = (0..20)
            .map(|_| (0..10).map(|_| rng.index(50)).collect())
            .collect();
        b.iter(|| {
            black_box(aggregate_distributions(
                black_box(&counts),
                RlweParams::test_params(),
                7,
            ))
        });
    });
    c.bench_function("thm61_rate_cell", |b| {
        use fedwcm_fl::quadratic::{run_quadratic_fedcm, QuadRunConfig, QuadraticProblem};
        let p = QuadraticProblem::random(6, 8, 1.0, 0.3, 9);
        let cfg = QuadRunConfig {
            local_steps: 4,
            rounds: 50,
            local_lr: 0.03,
            alpha: 0.2,
            seed: 3,
        };
        b.iter(|| black_box(run_quadratic_fedcm(&p, &cfg)));
    });
}

criterion_group!(
    name = experiments;
    config = Criterion::default().sample_size(10);
    targets = bench_cells
);
criterion_main!(experiments);
