//! Communication-cost accounting.
//!
//! Appendix C argues the HE distribution-exchange cost is "negligible
//! compared to model transmission overhead in a typical federated
//! learning round"; this module quantifies that model-transmission side
//! so the comparison (and any bandwidth budgeting) is concrete. All
//! counters are `u64`: a paper-scale run (hundreds of clients, ResNet-18
//! parameters, hundreds of rounds) overflows 32-bit byte counts.
//!
//! **Nominal** volumes are cadence-independent: every sampled client
//! downloads the model and uploads one delta per round regardless of
//! *when* the server applies it, so the buffered-K and async cadences
//! ([`crate::Cadence`]) move exactly the same bytes as the synchronous
//! barrier — they only shift the aggregation schedule. That claim
//! covers nominal volume only: a lossy wire transport adds
//! retransmissions on top, which depend on the network plan, not the
//! cadence. Fold those in with [`CommReport::with_transport`], which
//! keeps the books balanced as `total = nominal + retransmitted`.

use crate::config::FlConfig;
use crate::engine::sampled_clients_for;
use fedwcm_faults::{FaultKind, FaultPlan};
use fedwcm_transport::NetCounters;

/// Bytes moved in one direction for one client exchanging a full model
/// (f32 parameters).
pub fn model_bytes(param_len: usize) -> u64 {
    param_len as u64 * 4
}

/// Per-round and full-run communication volumes for a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommReport {
    /// Clients sampled per round.
    pub sampled_per_round: u64,
    /// Nominal download bytes per round (server → sampled clients: the
    /// global model, plus the global momentum for momentum methods).
    pub down_bytes_per_round: u64,
    /// Nominal upload bytes per round (clients → server: one delta each,
    /// before any injected faults).
    pub up_bytes_per_round: u64,
    /// Total bytes over the whole run. Under a fault plan this is the
    /// *actual* volume: dropped uploads never transit, straggler
    /// retransmissions transit twice.
    pub total_bytes: u64,
    /// Upload bytes that arrived stale — straggler retransmissions
    /// delivered rounds late, plus replayed duplicate deltas. Zero
    /// without a fault plan.
    pub stale_upload_bytes: u64,
    /// Upload bytes that never transited because the client dropped out.
    /// Zero without a fault plan.
    pub dropped_upload_bytes: u64,
    /// Upload bytes re-transmitted by the wire transport after a Nack
    /// or timeout. Zero without a network plan (measured at runtime,
    /// folded in via [`CommReport::with_transport`]).
    pub retransmitted_bytes: u64,
    /// Upload bytes that arrived in frames the receiver rejected
    /// (checksum or framing damage). Zero without a network plan.
    pub rejected_bytes: u64,
}

impl CommReport {
    /// Fold measured transport counters into a nominal report: the
    /// retransmitted bytes join `total_bytes` (they really crossed the
    /// wire) and both runtime tallies become visible, so
    /// `total = nominal + retransmitted` holds by construction.
    pub fn with_transport(mut self, net: &NetCounters) -> CommReport {
        self.retransmitted_bytes = net.retransmitted_bytes;
        self.rejected_bytes = net.rejected_bytes;
        self.total_bytes = self.total_bytes.saturating_add(net.retransmitted_bytes);
        self
    }
}

/// Compute the fault-free communication profile of a run.
///
/// `momentum_broadcast` adds one extra model-sized download per client
/// per round (FedCM/FedWCM ship `Δ_r` alongside the parameters).
pub fn communication_report(
    cfg: &FlConfig,
    param_len: usize,
    momentum_broadcast: bool,
) -> CommReport {
    let sampled = cfg.sampled_per_round() as u64;
    let model = model_bytes(param_len);
    let down_per_client = model * if momentum_broadcast { 2 } else { 1 };
    let down = down_per_client * sampled;
    let up = model * sampled;
    CommReport {
        sampled_per_round: sampled,
        down_bytes_per_round: down,
        up_bytes_per_round: up,
        total_bytes: (down + up) * cfg.rounds as u64,
        stale_upload_bytes: 0,
        dropped_upload_bytes: 0,
        retransmitted_bytes: 0,
        rejected_bytes: 0,
    }
}

/// Like [`communication_report`], but walks the fault plan's actual
/// schedule round by round (via [`sampled_clients_for`], so the
/// accounting agrees exactly with what the engine injects):
///
/// * a **dropout** never uploads — its bytes move from the total into
///   `dropped_upload_bytes`;
/// * a **straggler** uploads twice — the timed-out original plus the late
///   retransmission, which also counts as stale;
/// * a **replay** uploads a duplicate stale delta (same size, stale);
/// * **corruption** damages bytes in transit without changing volume.
pub fn communication_report_with_faults(
    cfg: &FlConfig,
    param_len: usize,
    momentum_broadcast: bool,
    plan: &FaultPlan,
) -> CommReport {
    let mut report = communication_report(cfg, param_len, momentum_broadcast);
    let model = model_bytes(param_len);
    let mut total = report
        .down_bytes_per_round
        .saturating_mul(cfg.rounds as u64);
    for round in 0..cfg.rounds {
        for client in sampled_clients_for(cfg, round) {
            match plan.fault_for(round, client) {
                Some(FaultKind::Dropout) => {
                    report.dropped_upload_bytes = report.dropped_upload_bytes.saturating_add(model)
                }
                Some(FaultKind::Straggler { .. }) => {
                    total += 2 * model;
                    report.stale_upload_bytes = report.stale_upload_bytes.saturating_add(model);
                }
                Some(FaultKind::Replay) => {
                    total += model;
                    report.stale_upload_bytes = report.stale_upload_bytes.saturating_add(model);
                }
                Some(FaultKind::Corrupt(_)) | None => total += model,
            }
        }
    }
    report.total_bytes = total;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_faults::FaultConfig;

    #[test]
    fn fedavg_round_volume() {
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 100;
        cfg.participation = 0.1;
        cfg.rounds = 500;
        let r = communication_report(&cfg, 11_000_000, false); // ResNet-18-ish
        assert_eq!(r.sampled_per_round, 10);
        assert_eq!(r.up_bytes_per_round, 10 * 44_000_000);
        assert_eq!(r.down_bytes_per_round, r.up_bytes_per_round);
        assert_eq!(r.total_bytes, 500 * 2 * 10 * 44_000_000);
    }

    #[test]
    fn counters_survive_paper_scale_volumes() {
        // 500 clients × full participation × ResNet-18 × 1000 rounds is
        // ~88 TB — far past u32 (and past usize on 32-bit targets).
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 500;
        cfg.participation = 1.0;
        cfg.rounds = 1000;
        let r = communication_report(&cfg, 11_000_000, true);
        assert!(r.total_bytes > u64::from(u32::MAX));
        assert_eq!(
            r.total_bytes,
            (r.down_bytes_per_round + r.up_bytes_per_round) * 1000
        );
    }

    #[test]
    fn momentum_broadcast_doubles_downlink_only() {
        let cfg = FlConfig::default_sim();
        let plain = communication_report(&cfg, 1000, false);
        let momentum = communication_report(&cfg, 1000, true);
        assert_eq!(
            momentum.down_bytes_per_round,
            2 * plain.down_bytes_per_round
        );
        assert_eq!(momentum.up_bytes_per_round, plain.up_bytes_per_round);
    }

    #[test]
    fn he_overhead_is_negligible_vs_model_traffic() {
        // The Appendix-C claim, checked quantitatively: 100 clients with a
        // ResNet-18-sized model move ~880 MB/round; the one-off HE
        // exchange is ~65 KB per client (6.5 MB total) — well under 1% of
        // a single round.
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 100;
        cfg.participation = 1.0;
        let round = communication_report(&cfg, 11_000_000, false);
        let he_total = 100 * 65_536u64;
        assert!(
            (he_total as f64) < 0.01 * round.up_bytes_per_round as f64,
            "HE {} vs round {}",
            he_total,
            round.up_bytes_per_round
        );
    }

    #[test]
    fn zero_rate_plan_matches_plain_report() {
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 20;
        cfg.participation = 0.5;
        cfg.rounds = 30;
        let plain = communication_report(&cfg, 5000, true);
        let faulted =
            communication_report_with_faults(&cfg, 5000, true, &FaultPlan::zero(cfg.seed));
        assert_eq!(plain, faulted);
    }

    #[test]
    fn fault_plan_accounting_balances() {
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 20;
        cfg.participation = 0.5;
        cfg.rounds = 40;
        let plan = FaultPlan::new(FaultConfig {
            dropout: 0.3,
            straggler: 0.2,
            replay: 0.1,
            corruption: 0.1,
            ..FaultConfig::zero(7)
        });
        let model = model_bytes(5000);
        let plain = communication_report(&cfg, 5000, false);
        let r = communication_report_with_faults(&cfg, 5000, false, &plan);

        // Count the schedule independently and check the books balance:
        // total = nominal − dropped + one extra transit per straggler.
        let (mut dropouts, mut stragglers, mut replays) = (0u64, 0u64, 0u64);
        for round in 0..cfg.rounds {
            for client in sampled_clients_for(&cfg, round) {
                match plan.fault_for(round, client) {
                    Some(FaultKind::Dropout) => dropouts += 1,
                    Some(FaultKind::Straggler { .. }) => stragglers += 1,
                    Some(FaultKind::Replay) => replays += 1,
                    _ => {}
                }
            }
        }
        assert!(
            dropouts > 0 && stragglers > 0 && replays > 0,
            "schedule too sparse to exercise accounting"
        );
        assert_eq!(r.dropped_upload_bytes, dropouts * model);
        assert_eq!(r.stale_upload_bytes, (stragglers + replays) * model);
        assert_eq!(
            r.total_bytes,
            plain.total_bytes - dropouts * model + stragglers * model
        );
    }

    #[test]
    fn transport_books_balance() {
        let cfg = FlConfig::default_sim();
        let nominal = communication_report(&cfg, 1000, true);
        let net = NetCounters {
            frames_sent: 40,
            retries: 6,
            retransmitted_bytes: 6 * 4000,
            rejected_frames: 2,
            rejected_bytes: 2 * 4000,
            ..NetCounters::default()
        };
        let r = nominal.with_transport(&net);
        assert_eq!(r.retransmitted_bytes, 24_000);
        assert_eq!(r.rejected_bytes, 8_000);
        // total = nominal + retransmitted, exactly.
        assert_eq!(r.total_bytes, nominal.total_bytes + 24_000);
        // Nominal per-round figures are untouched by the transport.
        assert_eq!(r.up_bytes_per_round, nominal.up_bytes_per_round);
        assert_eq!(r.down_bytes_per_round, nominal.down_bytes_per_round);
    }

    #[test]
    fn fault_free_transport_changes_nothing() {
        let cfg = FlConfig::default_sim();
        let nominal = communication_report(&cfg, 1000, false);
        assert_eq!(nominal.with_transport(&NetCounters::default()), nominal);
    }
}
