//! `float-reduction-order` — order-sensitive float accumulation.
//!
//! Float addition is not associative, so the *order* of an
//! accumulation decides the bits of its result. Sequential loops have
//! a fixed order and are fine; what breaks bitwise determinism is
//! accumulating across **parallel closure invocations**, where the
//! interleaving depends on thread scheduling. The blessed pattern is
//! to return a per-item value from the closure and combine in index
//! order on the caller thread (`parallel_map_reduce` /
//! `parallel_map` + sequential fold), which `fedwcm-parallel` and
//! `fedwcm-stats` implement — those two crates are therefore exempt.
//!
//! Two shapes are flagged in every other library crate:
//!
//! 1. a compound assignment (`+=`, `-=`, `*=`, `/=`) to state
//!    *captured* by a closure passed to a parallel entry point, when
//!    the accumulated value is (or may be) `f32`/`f64`;
//! 2. a call, from inside such a closure, to a function (resolved
//!    through the call graph, across files) that accumulates into one
//!    of its own `&mut f32/f64`-typed parameters.
//!
//! The final fold closure of `parallel_map_reduce` runs on the caller
//! thread in index order and is exempt.

use crate::ast::{is_float_ty, Expr, FnDef, TypeEnv};
use crate::callgraph::{CallGraph, FnId};
use crate::engine::{Diagnostic, FileCtx};

const RULE: &str = "float-reduction-order";

/// Functions that run a closure across worker threads. The last
/// closure argument of `parallel_map_reduce` is its index-ordered
/// caller-thread fold and is exempt.
const PARALLEL_ENTRIES: &[&str] = &[
    "parallel_for_each",
    "parallel_map",
    "parallel_map_reduce",
    "parallel_over_rows",
];

/// Crates whose internals are the blessed index-ordered reduce
/// helpers; the rule does not apply inside them.
const BLESSED_CRATES: &[&str] = &["parallel", "stats"];

/// Run the rule over the parsed workspace.
pub fn check_float_order(files: &[FileCtx], cg: &CallGraph<'_>, diags: &mut Vec<Diagnostic>) {
    // Pass 1: which functions accumulate into a float out-parameter?
    let accumulators: Vec<bool> = cg
        .fns
        .iter()
        .map(|&(_, f)| accumulates_into_float_param(f))
        .collect();

    // Pass 2: inspect every parallel closure in non-blessed lib crates.
    for (id, &(fi, f)) in cg.fns.iter().enumerate() {
        let ctx = &files[fi];
        if !ctx.is_lib_crate()
            || ctx
                .crate_name
                .as_deref()
                .is_some_and(|c| BLESSED_CRATES.contains(&c))
            || ctx.is_test_line(f.line)
        {
            continue;
        }
        let env = TypeEnv::of(f);
        f.body.walk(&mut |e| {
            let (name, args) = match e {
                Expr::Call { callee, args, .. } => match callee.base_ident() {
                    Some(n) => (n, args),
                    None => return,
                },
                Expr::MethodCall { method, args, .. } => (method.as_str(), args),
                _ => return,
            };
            let Some(entry) = PARALLEL_ENTRIES.iter().find(|&&p| p == name) else {
                return;
            };
            let closure_args: Vec<&Expr> = args
                .iter()
                .filter(|a| matches!(a, Expr::Closure { .. }))
                .collect();
            for (k, arg) in closure_args.iter().enumerate() {
                // parallel_map_reduce's trailing fold closure runs
                // sequentially on the caller thread.
                if *entry == "parallel_map_reduce" && k + 1 == closure_args.len() {
                    continue;
                }
                let Expr::Closure { params, body, .. } = arg else {
                    continue;
                };
                check_closure(ctx, cg, id, entry, params, body, &env, &accumulators, diags);
            }
        });
    }
}

/// Names bound locally inside a closure body (its parameters plus any
/// `let` bindings) — assignments to these are per-invocation state,
/// not shared accumulation.
fn closure_locals(params: &[crate::ast::Param], body: &Expr) -> std::collections::BTreeSet<String> {
    let mut locals: std::collections::BTreeSet<String> =
        params.iter().map(|p| p.name.clone()).collect();
    body.walk(&mut |e| {
        if let Expr::BlockExpr(b) = e {
            for s in &b.stmts {
                if let crate::ast::Stmt::Let { name, .. } = s {
                    locals.insert(name.clone());
                }
            }
        }
        if let Expr::Closure { params, .. } = e {
            for p in params {
                locals.insert(p.name.clone());
            }
        }
    });
    locals
}

#[allow(clippy::too_many_arguments)]
fn check_closure(
    ctx: &FileCtx,
    cg: &CallGraph<'_>,
    caller: FnId,
    entry: &str,
    params: &[crate::ast::Param],
    body: &Expr,
    env: &TypeEnv,
    accumulators: &[bool],
    diags: &mut Vec<Diagnostic>,
) {
    let locals = closure_locals(params, body);
    body.walk(&mut |e| match e {
        Expr::Assign {
            op,
            target,
            value,
            line,
        } if matches!(op.as_str(), "+=" | "-=" | "*=" | "/=") => {
            let Some(base) = target.base_ident() else {
                return;
            };
            if locals.contains(base) {
                return;
            }
            if !float_involved(env, target, value) {
                return;
            }
            let place = target.place_text().unwrap_or_else(|| base.to_string());
            diags.push(ctx.diag(
                RULE,
                *line,
                format!(
                    "`{place} {op}` accumulates into state captured by a closure passed to \
                     `{entry}` — float accumulation order then depends on thread interleaving; \
                     return per-item values and combine them in index order \
                     (`parallel_map_reduce`) instead"
                ),
            ));
        }
        Expr::Call { line, .. } | Expr::MethodCall { line, .. } => {
            if let Some(target) = cg.resolve(caller, e) {
                if accumulators[target] {
                    let callee = &cg.fns[target].1.name;
                    diags.push(ctx.diag(
                        RULE,
                        *line,
                        format!(
                            "`{callee}` accumulates into a `&mut` float parameter and is called \
                             from a closure passed to `{entry}` — accumulation order across \
                             parallel invocations is nondeterministic; return partial values and \
                             combine them in index order instead"
                        ),
                    ));
                }
            }
        }
        _ => {}
    });
}

/// Does the accumulation involve floats? Yes when the target's type is
/// float, or — when the target's type is unknown — when the value side
/// shows float evidence (a float literal or float-typed operand).
/// A provably integer target is order-insensitive and exempt.
fn float_involved(env: &TypeEnv, target: &Expr, value: &Expr) -> bool {
    if let Some(t) = target.base_ident().and_then(|b| env.get(b)) {
        return is_float_ty(t);
    }
    if let Some(t) = env.type_of(value) {
        return is_float_ty(&t);
    }
    let mut float = false;
    value.walk(&mut |e| {
        if let Expr::Lit { text, .. } = e {
            if text.starts_with(|c: char| c.is_ascii_digit())
                && (text.contains('.') || text.ends_with("f32") || text.ends_with("f64"))
            {
                float = true;
            }
        }
    });
    float
}

/// True when `f` compound-assigns into one of its own parameters whose
/// declared type is `&mut f32/f64` (scalar or slice).
fn accumulates_into_float_param(f: &FnDef) -> bool {
    let float_params: std::collections::BTreeSet<&str> = f
        .params
        .iter()
        .filter(|p| p.ty.contains("mut") && is_float_ty(&p.ty))
        .map(|p| p.name.as_str())
        .collect();
    if float_params.is_empty() {
        return false;
    }
    let mut hit = false;
    f.body.walk(&mut |e| {
        if let Expr::Assign { op, target, .. } = e {
            if matches!(op.as_str(), "+=" | "-=" | "*=" | "/=")
                && target
                    .base_ident()
                    .is_some_and(|b| float_params.contains(b))
            {
                hit = true;
            }
        }
    });
    hit
}
