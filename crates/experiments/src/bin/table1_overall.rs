//! Tables 1 and 7: overall accuracy comparison across datasets,
//! imbalance factors IF ∈ {1, 0.5, 0.1, 0.05, 0.01}, heterogeneity
//! β ∈ {0.6, 0.1}, for the 8 methods (Table 1's seven + FedGrab, i.e. the
//! Table 7 superset). `--dataset NAME` restricts to one preset
//! (`table7` = `table1_overall --dataset cifar-10`).

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_table, run_cell};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let methods = [
        Method::FedAvg,
        Method::BalanceFl,
        Method::FedGrab,
        Method::FedCm,
        Method::FedCmFocal,
        Method::FedCmBalanceLoss,
        Method::FedCmBalanceSampler,
        Method::FedWcm,
    ];
    let headers: Vec<String> = methods.iter().map(|m| m.label().to_string()).collect();
    let ifs = [1.0, 0.5, 0.1, 0.05, 0.01];

    for preset in DatasetPreset::all() {
        let name = preset.spec().name;
        if let Some(filter) = &cli.dataset {
            if !name.contains(filter.as_str()) {
                continue;
            }
        }
        for beta in [0.6, 0.1] {
            let mut rows = Vec::new();
            for imbalance in ifs {
                let exp = ExpConfig::new(preset, imbalance, beta, cli.scale, cli.seed);
                let values: Vec<f64> = methods.iter().map(|&m| run_cell(&exp, m, &cli)).collect();
                rows.push((format!("IF={imbalance}"), values));
                console.info(format!("[table1] {name} beta={beta} IF={imbalance} done"));
            }
            print_table(&format!("Table 1/7 — {name}, beta={beta}"), &headers, &rows);
        }
    }
    println!(
        "\nExpected shape (paper Tables 1/7): FedWCM best or tied in most\n\
         cells; FedCM and its +Focal/+Balance variants collapse at small IF;\n\
         FedAvg/BalanceFL degrade gracefully; FedGrab weak at beta=0.1."
    );
}
