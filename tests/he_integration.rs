//! Integration: the HE aggregation protocol plugged into FedWCM's
//! global-information-gathering phase must be transparent — identical
//! scores, temperature, and weights as the clear-text path.

use fedwcm_suite::core::{client_scores, imbalance_degree, temperature};
use fedwcm_suite::he::protocol::aggregate_distributions;
use fedwcm_suite::he::rlwe::RlweParams;
use fedwcm_suite::prelude::*;

#[test]
fn he_distribution_matches_cleartext_everywhere() {
    let spec = DatasetPreset::Cifar10.spec();
    let counts = longtail_counts(10, 120, 0.1);
    let train = spec.generate_train(&counts, 55);
    let views = paper_partition(&train, 15, 0.1, 55).views(&train);

    // Clear-text path.
    let clear = fedwcm_suite::core::global_distribution(&views, 10);

    // Encrypted path.
    let payloads: Vec<Vec<usize>> = views.iter().map(|v| v.class_counts().to_vec()).collect();
    let (agg, report) = aggregate_distributions(&payloads, RlweParams::default_params(), 55);
    let total: usize = agg.iter().sum();
    let he_dist: Vec<f64> = agg.iter().map(|&n| n as f64 / total as f64).collect();

    for (a, b) in clear.iter().zip(&he_dist) {
        assert!((a - b).abs() < 1e-12, "distributions differ: {a} vs {b}");
    }
    assert_eq!(report.clients, 15);

    // Downstream quantities are identical too.
    let target = vec![0.1f64; 10];
    let s_clear = client_scores(&views, &clear, &target);
    let s_he = client_scores(&views, &he_dist, &target);
    assert_eq!(s_clear, s_he);
    assert_eq!(temperature(&clear, &target), temperature(&he_dist, &target));
    assert!(imbalance_degree(&he_dist, &target) > 0.1);
}

#[test]
fn he_protocol_scales_to_hundred_classes() {
    let spec = DatasetPreset::Cifar100.spec();
    let counts = longtail_counts(100, 60, 0.05);
    let train = spec.generate_train(&counts, 56);
    let views = paper_partition(&train, 10, 0.1, 56).views(&train);
    let payloads: Vec<Vec<usize>> = views.iter().map(|v| v.class_counts().to_vec()).collect();
    let (agg, report) = aggregate_distributions(&payloads, RlweParams::default_params(), 56);
    assert_eq!(agg, train.class_counts());
    // Ciphertext size independent of class count (Table 6's key row).
    assert_eq!(
        report.ciphertext_bytes,
        RlweParams::default_params().ciphertext_bytes()
    );
}
