//! `fedwcm-lint` — zero-dependency static analysis for the FedWCM
//! workspace.
//!
//! PR 1 made the repo's headline guarantee *bitwise determinism across
//! thread counts* and introduced the workspace's only `unsafe` code
//! (disjoint-slot writes in `fedwcm-parallel`). Those invariants used
//! to live in comments and differential tests; this crate turns them
//! into machine-checked gates that run in CI on every change:
//!
//! | rule | enforces |
//! |------|----------|
//! | `unsafe-safety` | every `unsafe` is immediately preceded by `// SAFETY:` |
//! | `determinism-collections` | no `HashMap`/`HashSet` in library crates |
//! | `determinism-time` | no `Instant::now`/`SystemTime::now` in library crates |
//! | `determinism-env` | no `env::var` outside the blessed config module |
//! | `determinism-threads` | no `available_parallelism` outside `fedwcm-parallel` |
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!`/`unimplemented!`/`todo!` in non-test library code |
//! | `doc-coverage` | public items in `tensor`/`fl`/`core`/`parallel` carry rustdoc |
//! | `float-reduction-order` | no float accumulation across parallel closure invocations outside the blessed index-ordered reducers |
//! | `rng-stream-hygiene` | named RNG streams are never mixed in one function or passed across unaudited crate boundaries |
//! | `lock-order` | the static `lock_recover`/`wait_recover` acquisition graph is acyclic |
//! | `cast-soundness` | no lossy `as` casts / unchecked byte-counter arithmetic in the serializing crates |
//! | `checkpoint-symmetry` | every `to_bytes` write sequence matches its `from_bytes` read sequence op for op |
//! | `discount-once` | every update flowing from the fault pipeline into aggregation crosses `staleness_discount` exactly once |
//! | `metrics-registry` | span/metric names at call sites resolve to `fedwcm_trace::names` constants; no literals, typos, or dead taxonomy |
//! | `parallel-escape-capture` | closures passed to parallel entry points never write through captured shared state |
//! | `parallel-escape-index` | indexed writes to captured state are provably derived from the closure's own index parameter |
//! | `parallel-escape-send-sync` | every `unsafe impl Send`/`Sync` states a disjointness argument in its `// SAFETY:` comment |
//!
//! Run it locally with `cargo run -p fedwcm-lint` (add `--format json`
//! for machine-readable findings); see the binary's `--help` for rule
//! toggles. Findings are suppressed — never silenced — with scoped
//! `// lint:allow(<rule>) <reason>` markers; a marker without a reason
//! is itself a hard error.
//!
//! The crate has **zero external dependencies** (this build environment
//! has no reachable crates.io registry) and hand-rolls the lexer in
//! [`lexer`]. The v1 rules are token-sequence patterns over its
//! output, so they never fire inside comments, strings, raw strings,
//! or char literals. The v2 rules go further: [`parser`] builds a
//! recovering item/expression tree ([`ast`]) for each file — lexed and
//! parsed exactly once per run — and [`callgraph`] resolves calls
//! across files so the stream-hygiene, reduction-order, and lock-order
//! analyses can follow values through the workspace. The v3 rules sit
//! on top of [`dataflow`], a small forward-dataflow framework (join
//! lattices, branch joins, bounded loop fixpoints, interprocedural
//! summaries) that powers the protocol-conformance analyses
//! (`checkpoint-symmetry`, `discount-once`). The concurrency family
//! (`parallel-escape-*`) reuses all three layers as the static half of
//! the `race_check` sanitizer's soundness story (DESIGN.md §15). See
//! DESIGN.md §9 and `--rules` for the full taxonomy with per-rule
//! escape hatches.

pub mod ast;
pub mod callgraph;
pub mod dataflow;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use engine::{
    lint_file, lint_sources, lint_workspace, Diagnostic, FileCtx, LintConfig, LintRun, RuleInfo,
    ALL_RULES, DOC_CRATES, LIB_CRATES, MARKER_RULE, RULE_INFO,
};
pub use rules::{Blessing, BLESSINGS};
