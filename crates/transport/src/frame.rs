//! Length-prefixed frame codec with a CRC32 integrity trailer.
//!
//! Every frame is `header ‖ payload ‖ crc32(header ‖ payload)`:
//!
//! | offset | size | field                                  |
//! |-------:|-----:|----------------------------------------|
//! | 0      | 4    | magic `b"FWTP"`                        |
//! | 4      | 1    | protocol version (currently 1)         |
//! | 5      | 1    | message type                           |
//! | 6      | 2    | Nack reason (0 for every other type)   |
//! | 8      | 8    | sequence number (LE)                   |
//! | 16     | 4    | payload length in bytes (LE)           |
//! | 20     | n    | payload                                |
//! | 20+n   | 4    | CRC32 (IEEE) over header + payload (LE)|
//!
//! The codec's contract is **byte-exact round-tripping**: for every
//! [`Message`], `decode(encode(m)) == Ok(m)`, and every frame
//! [`decode`] accepts is exactly the canonical [`encode`] output of its
//! message — non-canonical-but-checksummed variants (a nonzero reason
//! on a non-Nack, a payload on a control frame) are rejected. Any
//! single flipped bit anywhere in a frame makes [`decode`] return an
//! error (never a mis-parse): flips in the magic, version, or length
//! prefix fail their structural check, and every other flip fails the
//! checksum.

/// Frame magic: "FedWcm Transport Protocol".
pub const MAGIC: [u8; 4] = *b"FWTP";

/// Current protocol version.
pub const VERSION: u8 = 1;

/// Fixed header size in bytes (everything before the payload).
pub const HEADER_LEN: usize = 20;

/// CRC trailer size in bytes.
pub const TRAILER_LEN: usize = 4;

/// Maximum payload size a frame may carry. Far above any model delta in
/// the workspace, but small enough that a corrupted length prefix can
/// never drive a pathological allocation.
pub const MAX_PAYLOAD: usize = 1 << 30;

const TYPE_MODEL_DOWN: u8 = 0;
const TYPE_DELTA_UP: u8 = 1;
const TYPE_ACK: u8 = 2;
const TYPE_NACK: u8 = 3;

/// Why a receiver refused a delivery (carried in a [`Message::Nack`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NackReason {
    /// The frame's CRC32 did not match: damaged in transit.
    Checksum,
    /// The frame parsed structurally wrong (bad type, bad length, …).
    Malformed,
}

impl NackReason {
    fn code(self) -> u16 {
        match self {
            NackReason::Checksum => 1,
            NackReason::Malformed => 2,
        }
    }

    fn from_code(code: u16) -> Option<Self> {
        match code {
            1 => Some(NackReason::Checksum),
            2 => Some(NackReason::Malformed),
            _ => None,
        }
    }
}

/// A typed transport message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Server → client: the global model (and momentum) broadcast.
    ModelDown {
        /// Delivery sequence number.
        seq: u64,
        /// Serialized model payload.
        payload: Vec<u8>,
    },
    /// Client → server: one local-training delta upload.
    DeltaUp {
        /// Delivery sequence number.
        seq: u64,
        /// Serialized upload payload.
        payload: Vec<u8>,
    },
    /// Receiver → sender: the identified frame arrived intact.
    Ack {
        /// Sequence number being acknowledged.
        seq: u64,
    },
    /// Receiver → sender: the identified frame was rejected.
    Nack {
        /// Sequence number being refused.
        seq: u64,
        /// Why the frame was refused.
        reason: NackReason,
    },
}

impl Message {
    /// The delivery sequence number this message refers to.
    pub fn seq(&self) -> u64 {
        match *self {
            Message::ModelDown { seq, .. }
            | Message::DeltaUp { seq, .. }
            | Message::Ack { seq }
            | Message::Nack { seq, .. } => seq,
        }
    }

    fn parts(&self) -> (u8, u16, u64, &[u8]) {
        match self {
            Message::ModelDown { seq, payload } => (TYPE_MODEL_DOWN, 0, *seq, payload.as_slice()),
            Message::DeltaUp { seq, payload } => (TYPE_DELTA_UP, 0, *seq, payload.as_slice()),
            Message::Ack { seq } => (TYPE_ACK, 0, *seq, &[]),
            Message::Nack { seq, reason } => (TYPE_NACK, reason.code(), *seq, &[]),
        }
    }
}

/// Why a byte buffer failed to decode as a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Shorter than its header + declared payload + trailer.
    Truncated,
    /// The magic bytes are wrong: not a frame at all.
    BadMagic,
    /// A protocol version this codec does not speak.
    UnsupportedVersion,
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized,
    /// Bytes remain past the declared frame end.
    TrailingBytes,
    /// The CRC32 trailer does not match the frame contents.
    ChecksumMismatch,
    /// An unknown message-type byte.
    UnknownType,
    /// A [`Message::Nack`] carrying an unknown reason code.
    UnknownReason,
    /// A structurally inconsistent frame (payload on a control message,
    /// nonzero reason outside a Nack): checksummed but non-canonical.
    Malformed,
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let what = match self {
            FrameError::Truncated => "truncated frame",
            FrameError::BadMagic => "bad frame magic",
            FrameError::UnsupportedVersion => "unsupported protocol version",
            FrameError::Oversized => "declared payload exceeds the frame size cap",
            FrameError::TrailingBytes => "trailing bytes past the frame end",
            FrameError::ChecksumMismatch => "frame checksum mismatch",
            FrameError::UnknownType => "unknown message type",
            FrameError::UnknownReason => "unknown nack reason",
            FrameError::Malformed => "structurally inconsistent frame",
        };
        write!(f, "{what}")
    }
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i: u32 = 0;
    while i < 256 {
        let mut c = i;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i as usize] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3 polynomial, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = (c ^ u32::from(b)) & 0xFF;
        c = CRC_TABLE[idx as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Encode `msg` into its canonical frame bytes. Fails only when the
/// payload exceeds [`MAX_PAYLOAD`].
pub fn encode(msg: &Message) -> Result<Vec<u8>, FrameError> {
    let (msg_type, reason, seq, payload) = msg.parts();
    if payload.len() > MAX_PAYLOAD {
        return Err(FrameError::Oversized);
    }
    let payload_len = u32::try_from(payload.len()).map_err(|_| FrameError::Oversized)?;
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(msg_type);
    out.extend_from_slice(&reason.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&payload_len.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out)
}

fn le_u16(frame: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([frame[at], frame[at + 1]])
}

fn le_u32(frame: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([frame[at], frame[at + 1], frame[at + 2], frame[at + 3]])
}

fn le_u64(frame: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&frame[at..at + 8]);
    u64::from_le_bytes(raw)
}

/// Decode one frame. Accepts exactly the canonical [`encode`] output;
/// every damaged, truncated, extended, or non-canonical buffer is
/// rejected with a specific [`FrameError`].
pub fn decode(frame: &[u8]) -> Result<Message, FrameError> {
    if frame.len() < HEADER_LEN + TRAILER_LEN {
        return Err(FrameError::Truncated);
    }
    if frame[..4] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if frame[4] != VERSION {
        return Err(FrameError::UnsupportedVersion);
    }
    let msg_type = frame[5];
    let reason_code = le_u16(frame, 6);
    let seq = le_u64(frame, 8);
    let payload_len = le_u32(frame, 16);
    let payload_len = usize::try_from(payload_len).map_err(|_| FrameError::Oversized)?;
    if payload_len > MAX_PAYLOAD {
        return Err(FrameError::Oversized);
    }
    let total = HEADER_LEN + payload_len + TRAILER_LEN;
    if frame.len() < total {
        return Err(FrameError::Truncated);
    }
    if frame.len() > total {
        return Err(FrameError::TrailingBytes);
    }
    let body_end = HEADER_LEN + payload_len;
    let declared_crc = le_u32(frame, body_end);
    if crc32(&frame[..body_end]) != declared_crc {
        return Err(FrameError::ChecksumMismatch);
    }
    if msg_type != TYPE_NACK && reason_code != 0 {
        return Err(FrameError::Malformed);
    }
    let payload = frame[HEADER_LEN..body_end].to_vec();
    match msg_type {
        TYPE_MODEL_DOWN => Ok(Message::ModelDown { seq, payload }),
        TYPE_DELTA_UP => Ok(Message::DeltaUp { seq, payload }),
        TYPE_ACK => {
            if payload.is_empty() {
                Ok(Message::Ack { seq })
            } else {
                Err(FrameError::Malformed)
            }
        }
        TYPE_NACK => {
            if !payload.is_empty() {
                return Err(FrameError::Malformed);
            }
            let reason = NackReason::from_code(reason_code).ok_or(FrameError::UnknownReason)?;
            Ok(Message::Nack { seq, reason })
        }
        _ => Err(FrameError::UnknownType),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::ModelDown {
                seq: 0,
                payload: vec![1, 2, 3, 4, 5],
            },
            Message::DeltaUp {
                seq: u64::MAX,
                payload: (0..=255).collect(),
            },
            Message::DeltaUp {
                seq: 7,
                payload: Vec::new(),
            },
            Message::Ack { seq: 42 },
            Message::Nack {
                seq: 9,
                reason: NackReason::Checksum,
            },
            Message::Nack {
                seq: 10,
                reason: NackReason::Malformed,
            },
        ]
    }

    #[test]
    fn crc32_known_answer() {
        // The canonical CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn round_trip_is_identity() {
        for msg in sample_messages() {
            let frame = encode(&msg).expect("encodable");
            let back = decode(&frame).expect("decodable");
            assert_eq!(back, msg);
            // Re-encoding the decoded message reproduces the bytes.
            assert_eq!(encode(&back).expect("encodable"), frame);
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let msg = Message::DeltaUp {
            seq: 0x0123_4567_89AB_CDEF,
            payload: vec![0xAA; 33],
        };
        let frame = encode(&msg).expect("encodable");
        for byte_index in 0..frame.len() {
            for bit in 0..8u8 {
                let mut damaged = frame.clone();
                damaged[byte_index] ^= 1 << bit;
                let got = decode(&damaged);
                assert!(
                    got.is_err(),
                    "flip at byte {byte_index} bit {bit} parsed as {got:?}"
                );
            }
        }
    }

    #[test]
    fn flips_outside_structural_fields_fail_the_checksum() {
        let frame = encode(&Message::Ack { seq: 3 }).expect("encodable");
        // Bytes 8..16 are the sequence number: covered only by the CRC.
        for byte_index in 8..16 {
            let mut damaged = frame.clone();
            damaged[byte_index] ^= 0x80;
            assert_eq!(decode(&damaged), Err(FrameError::ChecksumMismatch));
        }
    }

    #[test]
    fn truncation_and_extension_rejected() {
        let frame = encode(&Message::DeltaUp {
            seq: 1,
            payload: vec![9; 16],
        })
        .expect("encodable");
        for keep in 0..frame.len() {
            assert!(decode(&frame[..keep]).is_err(), "prefix of {keep} accepted");
        }
        let mut extended = frame.clone();
        extended.push(0);
        assert_eq!(decode(&extended), Err(FrameError::TrailingBytes));
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut frame = encode(&Message::DeltaUp {
            seq: 1,
            payload: vec![0; 4],
        })
        .expect("encodable");
        // Declare a payload far past the cap; the length field is at 16.
        frame[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&frame), Err(FrameError::Oversized));
    }

    #[test]
    fn oversized_payload_refused_at_encode() {
        // Construct without materialising MAX_PAYLOAD+1 real bytes is not
        // possible through the typed API, so this allocates briefly.
        let msg = Message::DeltaUp {
            seq: 0,
            payload: vec![0u8; MAX_PAYLOAD + 1],
        };
        assert_eq!(encode(&msg), Err(FrameError::Oversized));
    }

    #[test]
    fn non_canonical_frames_rejected() {
        // Nonzero reason on a DeltaUp, with a recomputed (valid) CRC.
        let mut frame = encode(&Message::DeltaUp {
            seq: 5,
            payload: vec![1, 2],
        })
        .expect("encodable");
        frame[6] = 1;
        let body_end = frame.len() - TRAILER_LEN;
        let crc = crc32(&frame[..body_end]);
        frame[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&frame), Err(FrameError::Malformed));

        // Unknown type byte, CRC fixed up.
        let mut frame = encode(&Message::Ack { seq: 5 }).expect("encodable");
        frame[5] = 200;
        let body_end = frame.len() - TRAILER_LEN;
        let crc = crc32(&frame[..body_end]);
        frame[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode(&frame), Err(FrameError::UnknownType));
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let frame = encode(&Message::Ack { seq: 1 }).expect("encodable");
        let mut bad_magic = frame.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode(&bad_magic), Err(FrameError::BadMagic));
        let mut bad_version = frame;
        bad_version[4] = VERSION + 1;
        assert_eq!(decode(&bad_version), Err(FrameError::UnsupportedVersion));
    }
}
