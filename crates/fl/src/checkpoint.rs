//! Server-state checkpointing: crash a long run at round `r`, restart
//! from the round-`r` checkpoint, and finish with a bitwise-identical
//! history and global model.
//!
//! A [`ServerCheckpoint`] captures everything the engine needs to
//! continue a run: the round counter, global parameters, the full
//! round-by-round history, the algorithm's internal state (via
//! [`FederatedAlgorithm::save_state`]), and the resilience machinery —
//! the straggler buffer, the aggregation buffer of the buffered/async
//! cadences, and the replay cache — so even a chaos run resumes
//! exactly.
//!
//! # Wire format
//!
//! Magic `b"FWCK"`, version (u32 LE), then length-prefixed fields in a
//! fixed order, all little-endian, built on the byte helpers in
//! `fedwcm_nn::serialize`. Float bit patterns are preserved exactly, so
//! serialize → deserialize → serialize is the identity on bytes.
//!
//! Version 4 (current) added the transport state: the logical-clock
//! tick counter after the cadence, eight per-round network counters
//! after the fault columns, and a `via_net` flag on each straggler-
//! buffer entry — so a run killed mid-retry resumes with identical
//! backoff clocks and books. Version 3 added the cadence tag after the
//! fingerprint, the `aggregations`/`late_requeued` record columns, and
//! the aggregation buffer after the replay cache. Version 2
//! checkpoints (no cadence — always synchronous, empty aggregation
//! buffer, `aggregations` back-filled from `update_norm`) still parse;
//! pre-v4 fields default to zero transport activity.

use crate::algorithm::{FederatedAlgorithm, StateError};
use crate::cadence::Cadence;
use crate::client::ClientUpdate;
use crate::engine::{BufferedUpdate, PendingUpdate, RunState, Simulation};
use crate::metrics::{History, RoundFaults, RoundRecord};
use fedwcm_nn::serialize::{
    put_bytes, put_f32, put_f32s, put_f64, put_str, put_u32, put_u64, ByteReader,
};
use fedwcm_trace::{HistogramSnapshot, MetricEntry, MetricValue, MetricsSnapshot};
use fedwcm_transport::NetCounters;

const MAGIC: &[u8; 4] = b"FWCK";
// Version 2 added the metrics snapshot after the history records;
// version 3 the cadence tag, per-round aggregation counts, re-queue
// tallies, and the aggregation buffer; version 4 the transport tick
// counter, per-round network counters, and per-pending via_net flags.
const VERSION: u32 = 4;
/// Oldest version [`ServerCheckpoint::from_bytes`] still parses.
const MIN_VERSION: u32 = 2;

/// Why a checkpoint could not be captured, parsed, or restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The algorithm does not implement state capture
    /// ([`FederatedAlgorithm::save_state`] returned `None`), so resuming
    /// it would silently reset momentum/variates. Refused loudly instead.
    AlgorithmStateUnsupported,
    /// The checkpoint was produced by a different algorithm than the one
    /// resuming it.
    AlgorithmMismatch {
        /// Algorithm name recorded in the checkpoint.
        expected: String,
        /// Name of the algorithm attempting to resume.
        found: String,
    },
    /// The simulation's configuration fingerprint (seed, client count,
    /// round count, parameter arity) does not match the checkpoint's.
    ConfigMismatch,
    /// The byte buffer does not parse as a checkpoint (bad magic,
    /// unsupported version, truncation, or corrupt lengths).
    Malformed,
    /// The algorithm rejected the recorded state blob.
    State(StateError),
}

impl core::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CheckpointError::AlgorithmStateUnsupported => {
                write!(f, "algorithm does not support state capture")
            }
            CheckpointError::AlgorithmMismatch { expected, found } => {
                write!(f, "checkpoint is for '{expected}', not '{found}'")
            }
            CheckpointError::ConfigMismatch => {
                write!(f, "simulation configuration does not match the checkpoint")
            }
            CheckpointError::Malformed => write!(f, "malformed checkpoint bytes"),
            CheckpointError::State(e) => write!(f, "algorithm state rejected: {e:?}"),
        }
    }
}

/// A captured server state: the full resumable snapshot of a run after
/// some prefix of its rounds.
#[derive(Clone, Debug)]
pub struct ServerCheckpoint {
    /// Next round to execute on resume.
    next_round: usize,
    /// Global model parameters.
    global: Vec<f32>,
    /// Display name of the algorithm that produced the state blob.
    algo_name: String,
    /// Opaque algorithm state from [`FederatedAlgorithm::save_state`].
    algo_state: Vec<u8>,
    /// History of the executed rounds.
    history: History,
    /// Buffered straggler uploads not yet merged.
    pending: Vec<PendingUpdate>,
    /// Aggregation buffer of the buffered-K/async cadences (empty under
    /// sync and in pre-v3 checkpoints).
    agg_buffer: Vec<BufferedUpdate>,
    /// Per-client last-received uploads (replay-fault machinery).
    replay_cache: Vec<Option<Vec<f32>>>,
    /// Aggregation cadence the run was using (always [`Cadence::Sync`]
    /// for pre-v3 checkpoints).
    cadence: Cadence,
    /// Transport logical-clock position (zero when no network plan was
    /// active, and for pre-v4 checkpoints).
    net_ticks: u64,
    /// Fingerprint of the producing simulation: seed, clients, rounds,
    /// parameter arity.
    fingerprint: [u64; 4],
}

impl ServerCheckpoint {
    /// The round a resume would execute next.
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// The aggregation cadence recorded at capture time.
    pub fn cadence(&self) -> Cadence {
        self.cadence
    }

    /// The recorded global parameters.
    pub fn global(&self) -> &[f32] {
        &self.global
    }

    /// The algorithm name recorded at capture time.
    pub fn algo_name(&self) -> &str {
        &self.algo_name
    }

    /// The history of the rounds executed before capture.
    pub fn history(&self) -> &History {
        &self.history
    }

    fn fingerprint_of(sim: &Simulation<'_>, param_len: usize) -> [u64; 4] {
        [
            sim.cfg.seed,
            sim.cfg.clients as u64,
            sim.cfg.rounds as u64,
            param_len as u64,
        ]
    }

    /// Capture the current server state of `sim` (internal; reached via
    /// [`Simulation::run_until`]).
    pub(crate) fn capture(
        sim: &Simulation<'_>,
        algo: &dyn FederatedAlgorithm,
        state: &RunState,
    ) -> Result<Self, CheckpointError> {
        let algo_state = algo
            .save_state()
            .ok_or(CheckpointError::AlgorithmStateUnsupported)?;
        Ok(ServerCheckpoint {
            next_round: state.next_round,
            global: state.global.clone(),
            algo_name: algo.name(),
            algo_state,
            history: state.history.clone(),
            pending: state.pending.clone(),
            agg_buffer: state.agg_buffer.clone(),
            replay_cache: state.replay_cache.clone(),
            cadence: sim.cfg.cadence,
            net_ticks: state.net_ticks,
            fingerprint: Self::fingerprint_of(sim, state.global.len()),
        })
    }

    /// Validate against `sim`, load the algorithm state, and rebuild the
    /// engine's run state (internal; reached via [`Simulation::resume`]).
    pub(crate) fn restore(
        &self,
        sim: &Simulation<'_>,
        algo: &mut dyn FederatedAlgorithm,
    ) -> Result<RunState, CheckpointError> {
        if algo.name() != self.algo_name {
            return Err(CheckpointError::AlgorithmMismatch {
                expected: self.algo_name.clone(),
                found: algo.name(),
            });
        }
        if Self::fingerprint_of(sim, self.global.len()) != self.fingerprint {
            return Err(CheckpointError::ConfigMismatch);
        }
        // The aggregation buffer's batch boundaries depend on the
        // cadence, so resuming under a different one would silently
        // reinterpret the buffered state.
        if sim.cfg.cadence != self.cadence {
            return Err(CheckpointError::ConfigMismatch);
        }
        algo.load_state(&self.algo_state)
            .map_err(CheckpointError::State)?;
        // Reload the attached registry so resumed accumulation continues
        // exactly where the checkpointed run stopped.
        if let Some(reg) = &sim.obs.metrics {
            reg.load(&self.history.metrics);
        }
        Ok(RunState {
            next_round: self.next_round,
            global: self.global.clone(),
            history: self.history.clone(),
            pending: self.pending.clone(),
            agg_buffer: self.agg_buffer.clone(),
            replay_cache: self.replay_cache.clone(),
            net_ticks: self.net_ticks,
        })
    }

    /// Serialize to the `FWCK` byte format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, VERSION);
        for &f in &self.fingerprint {
            put_u64(&mut out, f);
        }
        let (cadence_tag, cadence_param) = self.cadence.tag_param();
        put_u32(&mut out, cadence_tag);
        put_u64(&mut out, cadence_param);
        put_u64(&mut out, self.net_ticks);
        put_u64(&mut out, self.next_round as u64);
        put_f32s(&mut out, &self.global);
        put_str(&mut out, &self.algo_name);
        put_bytes(&mut out, &self.algo_state);

        // History.
        put_str(&mut out, &self.history.name);
        put_u64(&mut out, self.history.records.len() as u64);
        for r in &self.history.records {
            put_u64(&mut out, r.round as u64);
            put_opt_f64(&mut out, r.train_loss);
            put_f64(&mut out, r.update_norm);
            put_opt_f64(&mut out, r.test_acc);
            put_opt_f64(&mut out, r.alpha);
            put_u32(&mut out, r.aggregations);
            put_u64(&mut out, r.dropped_updates as u64);
            put_u32(&mut out, r.faults.dropouts);
            put_u32(&mut out, r.faults.stragglers);
            put_u32(&mut out, r.faults.late_merged);
            put_u32(&mut out, r.faults.late_requeued);
            put_u32(&mut out, r.faults.corruptions);
            put_u32(&mut out, r.faults.replays);
            put_u32(&mut out, r.faults.quorum_failed as u32);
            put_u64(&mut out, r.net.frames_sent);
            put_u64(&mut out, r.net.retries);
            put_u64(&mut out, r.net.rejected_frames);
            put_u64(&mut out, r.net.duplicates);
            put_u64(&mut out, r.net.delayed);
            put_u64(&mut out, r.net.degraded);
            put_u64(&mut out, r.net.retransmitted_bytes);
            put_u64(&mut out, r.net.rejected_bytes);
        }
        put_metrics(&mut out, &self.history.metrics);

        // Straggler buffer.
        put_u64(&mut out, self.pending.len() as u64);
        for p in &self.pending {
            put_u64(&mut out, p.arrival_round as u64);
            put_u64(&mut out, p.staleness as u64);
            put_u32(&mut out, u32::from(p.via_net));
            put_update(&mut out, &p.update);
        }

        // Replay cache.
        put_u64(&mut out, self.replay_cache.len() as u64);
        for slot in &self.replay_cache {
            match slot {
                Some(delta) => {
                    put_u32(&mut out, 1);
                    put_f32s(&mut out, delta);
                }
                None => put_u32(&mut out, 0),
            }
        }

        // Aggregation buffer (buffered-K/async cadences).
        put_u64(&mut out, self.agg_buffer.len() as u64);
        for b in &self.agg_buffer {
            put_u64(&mut out, b.base_round as u64);
            put_update(&mut out, &b.update);
        }
        out
    }

    /// Parse a checkpoint serialized by [`ServerCheckpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let body = bytes
            .strip_prefix(MAGIC.as_slice())
            .ok_or(CheckpointError::Malformed)?;
        let mut r = ByteReader::new(body);
        let version = r.u32().ok_or(CheckpointError::Malformed)?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(CheckpointError::Malformed);
        }
        let mut fingerprint = [0u64; 4];
        for f in fingerprint.iter_mut() {
            *f = r.u64().ok_or(CheckpointError::Malformed)?;
        }
        let cadence = if version >= 3 {
            let tag = r.u32().ok_or(CheckpointError::Malformed)?;
            let param = r.u64().ok_or(CheckpointError::Malformed)?;
            Cadence::from_tag_param(tag, param).ok_or(CheckpointError::Malformed)?
        } else {
            // v2 predates cadences: every run was round-synchronous.
            Cadence::Sync
        };
        let net_ticks = if version >= 4 {
            r.u64().ok_or(CheckpointError::Malformed)?
        } else {
            // Pre-v4 runs had no transport: clock never advanced.
            0
        };
        let next_round = read_usize(&mut r)?;
        let global = r.f32s().ok_or(CheckpointError::Malformed)?;
        let algo_name = r.str().ok_or(CheckpointError::Malformed)?;
        let algo_state = r.bytes().ok_or(CheckpointError::Malformed)?;

        let mut history = History::new(r.str().ok_or(CheckpointError::Malformed)?);
        let n_records = read_usize(&mut r)?;
        for _ in 0..n_records {
            let round = read_usize(&mut r)?;
            let train_loss = read_opt_f64(&mut r)?;
            let update_norm = r.f64().ok_or(CheckpointError::Malformed)?;
            let test_acc = read_opt_f64(&mut r)?;
            let alpha = read_opt_f64(&mut r)?;
            let aggregations = if version >= 3 {
                r.u32().ok_or(CheckpointError::Malformed)?
            } else {
                // v2 rounds were synchronous: one aggregation whenever
                // the global model moved.
                u32::from(update_norm > 0.0)
            };
            let dropped_updates = read_usize(&mut r)?;
            let faults = RoundFaults {
                dropouts: r.u32().ok_or(CheckpointError::Malformed)?,
                stragglers: r.u32().ok_or(CheckpointError::Malformed)?,
                late_merged: r.u32().ok_or(CheckpointError::Malformed)?,
                late_requeued: if version >= 3 {
                    r.u32().ok_or(CheckpointError::Malformed)?
                } else {
                    0
                },
                corruptions: r.u32().ok_or(CheckpointError::Malformed)?,
                replays: r.u32().ok_or(CheckpointError::Malformed)?,
                quorum_failed: r.u32().ok_or(CheckpointError::Malformed)? != 0,
            };
            let net = if version >= 4 {
                NetCounters {
                    frames_sent: r.u64().ok_or(CheckpointError::Malformed)?,
                    retries: r.u64().ok_or(CheckpointError::Malformed)?,
                    rejected_frames: r.u64().ok_or(CheckpointError::Malformed)?,
                    duplicates: r.u64().ok_or(CheckpointError::Malformed)?,
                    delayed: r.u64().ok_or(CheckpointError::Malformed)?,
                    degraded: r.u64().ok_or(CheckpointError::Malformed)?,
                    retransmitted_bytes: r.u64().ok_or(CheckpointError::Malformed)?,
                    rejected_bytes: r.u64().ok_or(CheckpointError::Malformed)?,
                }
            } else {
                NetCounters::default()
            };
            history.records.push(RoundRecord {
                round,
                train_loss,
                update_norm,
                test_acc,
                alpha,
                aggregations,
                dropped_updates,
                faults,
                net,
            });
        }
        history.metrics = read_metrics(&mut r)?;

        let n_pending = read_usize(&mut r)?;
        let mut pending = Vec::with_capacity(n_pending.min(1 << 16));
        for _ in 0..n_pending {
            let arrival_round = read_usize(&mut r)?;
            let staleness = read_usize(&mut r)?;
            let via_net = if version >= 4 {
                match r.u32().ok_or(CheckpointError::Malformed)? {
                    0 => false,
                    1 => true,
                    _ => return Err(CheckpointError::Malformed),
                }
            } else {
                false
            };
            let update = read_update(&mut r)?;
            pending.push(PendingUpdate {
                arrival_round,
                staleness,
                via_net,
                update,
            });
        }

        let n_cache = read_usize(&mut r)?;
        let mut replay_cache = Vec::with_capacity(n_cache.min(1 << 16));
        for _ in 0..n_cache {
            let tag = r.u32().ok_or(CheckpointError::Malformed)?;
            replay_cache.push(match tag {
                0 => None,
                1 => Some(r.f32s().ok_or(CheckpointError::Malformed)?),
                _ => return Err(CheckpointError::Malformed),
            });
        }

        let mut agg_buffer = Vec::new();
        if version >= 3 {
            let n_buffered = read_usize(&mut r)?;
            agg_buffer.reserve(n_buffered.min(1 << 16));
            for _ in 0..n_buffered {
                let base_round = read_usize(&mut r)?;
                let update = read_update(&mut r)?;
                agg_buffer.push(BufferedUpdate { base_round, update });
            }
        }

        if !r.is_exhausted() {
            return Err(CheckpointError::Malformed);
        }
        Ok(ServerCheckpoint {
            next_round,
            global,
            algo_name,
            algo_state,
            history,
            pending,
            agg_buffer,
            replay_cache,
            cadence,
            net_ticks,
            fingerprint,
        })
    }
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            put_u32(out, 1);
            put_f64(out, x);
        }
        None => put_u32(out, 0),
    }
}

fn read_opt_f64(r: &mut ByteReader<'_>) -> Result<Option<f64>, CheckpointError> {
    match r.u32().ok_or(CheckpointError::Malformed)? {
        0 => Ok(None),
        1 => Ok(Some(r.f64().ok_or(CheckpointError::Malformed)?)),
        _ => Err(CheckpointError::Malformed),
    }
}

fn read_usize(r: &mut ByteReader<'_>) -> Result<usize, CheckpointError> {
    usize::try_from(r.u64().ok_or(CheckpointError::Malformed)?)
        .map_err(|_| CheckpointError::Malformed)
}

fn put_metrics(out: &mut Vec<u8>, snap: &MetricsSnapshot) {
    put_u64(out, snap.entries.len() as u64);
    for e in &snap.entries {
        put_str(out, &e.name);
        match &e.value {
            MetricValue::Counter(c) => {
                put_u32(out, 0);
                put_u64(out, *c);
            }
            MetricValue::Gauge(g) => {
                put_u32(out, 1);
                put_f64(out, *g);
            }
            MetricValue::Histogram(h) => {
                put_u32(out, 2);
                put_u64(out, h.bounds.len() as u64);
                for &b in &h.bounds {
                    put_f64(out, b);
                }
                put_u64(out, h.counts.len() as u64);
                for &c in &h.counts {
                    put_u64(out, c);
                }
                put_u64(out, h.total);
                put_f64(out, h.sum);
                put_u64(out, h.nan_rejected);
            }
        }
    }
}

fn read_metrics(r: &mut ByteReader<'_>) -> Result<MetricsSnapshot, CheckpointError> {
    let n = read_usize(r)?;
    let mut entries = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let name = r.str().ok_or(CheckpointError::Malformed)?;
        let value = match r.u32().ok_or(CheckpointError::Malformed)? {
            0 => MetricValue::Counter(r.u64().ok_or(CheckpointError::Malformed)?),
            1 => MetricValue::Gauge(r.f64().ok_or(CheckpointError::Malformed)?),
            2 => {
                let n_bounds = read_usize(r)?;
                let mut bounds = Vec::with_capacity(n_bounds.min(1 << 16));
                for _ in 0..n_bounds {
                    bounds.push(r.f64().ok_or(CheckpointError::Malformed)?);
                }
                let n_counts = read_usize(r)?;
                if n_counts != n_bounds + 1 {
                    return Err(CheckpointError::Malformed);
                }
                let mut counts = Vec::with_capacity(n_counts.min(1 << 16));
                for _ in 0..n_counts {
                    counts.push(r.u64().ok_or(CheckpointError::Malformed)?);
                }
                MetricValue::Histogram(HistogramSnapshot {
                    bounds,
                    counts,
                    total: r.u64().ok_or(CheckpointError::Malformed)?,
                    sum: r.f64().ok_or(CheckpointError::Malformed)?,
                    nan_rejected: r.u64().ok_or(CheckpointError::Malformed)?,
                })
            }
            _ => return Err(CheckpointError::Malformed),
        };
        entries.push(MetricEntry { name, value });
    }
    Ok(MetricsSnapshot { entries })
}

fn put_update(out: &mut Vec<u8>, u: &ClientUpdate) {
    put_u64(out, u.client as u64);
    put_u64(out, u.num_samples as u64);
    put_u64(out, u.num_batches as u64);
    put_f32(out, u.avg_loss);
    put_f32s(out, &u.delta);
    match &u.extra {
        Some(extra) => {
            put_u32(out, 1);
            put_f32s(out, extra);
        }
        None => put_u32(out, 0),
    }
}

fn read_update(r: &mut ByteReader<'_>) -> Result<ClientUpdate, CheckpointError> {
    let client = read_usize(r)?;
    let num_samples = read_usize(r)?;
    let num_batches = read_usize(r)?;
    let avg_loss = r.f32().ok_or(CheckpointError::Malformed)?;
    let delta = r.f32s().ok_or(CheckpointError::Malformed)?;
    let extra = match r.u32().ok_or(CheckpointError::Malformed)? {
        0 => None,
        1 => Some(r.f32s().ok_or(CheckpointError::Malformed)?),
        _ => return Err(CheckpointError::Malformed),
    };
    Ok(ClientUpdate {
        client,
        num_samples,
        num_batches,
        avg_loss,
        delta,
        extra,
    })
}
