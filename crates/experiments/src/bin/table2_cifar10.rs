//! Table 2: CIFAR-10 slice — FedAvg vs FedGrab vs FedWCM under
//! β ∈ {0.6, 0.1} and IF ∈ {1, 0.5, 0.1, 0.05, 0.01}.

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_table, run_cell};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let methods = [Method::FedAvg, Method::FedGrab, Method::FedWcm];
    let ifs = [1.0, 0.5, 0.1, 0.05, 0.01];
    let mut headers = Vec::new();
    for m in methods {
        for beta in [0.6, 0.1] {
            headers.push(format!("{} b={beta}", m.label()));
        }
    }
    let mut rows = Vec::new();
    for imbalance in ifs {
        let mut values = Vec::new();
        for m in methods {
            for beta in [0.6, 0.1] {
                let exp =
                    ExpConfig::new(DatasetPreset::Cifar10, imbalance, beta, cli.scale, cli.seed);
                values.push(run_cell(&exp, m, &cli));
            }
        }
        console.info(format!("[table2] IF={imbalance} done"));
        rows.push((format!("IF={imbalance}"), values));
    }
    print_table(
        "Table 2 — CIFAR-10: FedAvg / FedGrab / FedWCM",
        &headers,
        &rows,
    );
    println!(
        "\nExpected shape (paper Table 2): FedGrab competitive at IF≥0.5,\n\
         collapsing at small IF (especially beta=0.1); FedWCM best overall."
    );
}
