//! Probability distributions built on the [`crate::rng`] generator.
//!
//! The FedWCM pipeline needs: Normal draws (synthetic feature generation,
//! HE noise), Gamma/Dirichlet (the paper's `p_{k,c} ~ Dir(β)` client
//! partition), Beta (quantity-skew experiments), and fast Categorical
//! sampling (class assignment when materialising datasets).

use crate::rng::Rng;

/// Normal distribution `N(mean, std²)` sampled via the Box–Muller
/// transform. Caches the second variate, so consecutive draws cost one
/// transcendental pair per two samples.
#[derive(Clone, Debug)]
pub struct Normal {
    mean: f64,
    std: f64,
    spare: Option<f64>,
}

impl Normal {
    /// Create a normal sampler. `std` must be finite and non-negative.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std.is_finite() && std >= 0.0, "std must be ≥ 0, got {std}");
        Normal {
            mean,
            std,
            spare: None,
        }
    }

    /// Standard normal `N(0,1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&mut self, rng: &mut R) -> f64 {
        if let Some(z) = self.spare.take() {
            return self.mean + self.std * z;
        }
        // Box–Muller: u ∈ (0,1], v ∈ [0,1).
        let u = 1.0 - rng.next_f64();
        let v = rng.next_f64();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        let (s, c) = theta.sin_cos();
        self.spare = Some(r * s);
        self.mean + self.std * (r * c)
    }

    /// Fill a slice with f32 samples (weight init, synthetic features).
    pub fn fill_f32<R: Rng>(&mut self, rng: &mut R, out: &mut [f32]) {
        for x in out {
            *x = self.sample(rng) as f32;
        }
    }
}

/// Gamma distribution with shape `alpha > 0` and scale 1, via the
/// Marsaglia–Tsang (2000) squeeze method; the `alpha < 1` case uses the
/// standard boosting identity `Γ(α) = Γ(α+1) · U^{1/α}`.
#[derive(Clone, Debug)]
pub struct Gamma {
    alpha: f64,
}

impl Gamma {
    /// Create a Gamma(alpha, 1) sampler. `alpha` must be positive.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha.is_finite(),
            "alpha must be > 0, got {alpha}"
        );
        Gamma { alpha }
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.alpha < 1.0 {
            // Boost: sample Gamma(alpha + 1) and scale down.
            let boosted = Gamma::new(self.alpha + 1.0).sample(rng);
            let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
            return boosted * u.powf(1.0 / self.alpha);
        }
        let d = self.alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let mut normal = Normal::standard();
        loop {
            let x = normal.sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
            // Squeeze then full acceptance test.
            if u < 1.0 - 0.0331 * (x * x) * (x * x)
                || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln())
            {
                return d * v3;
            }
        }
    }
}

/// Beta(a, b) via two Gamma draws.
#[derive(Clone, Debug)]
pub struct Beta {
    ga: Gamma,
    gb: Gamma,
}

impl Beta {
    /// Create a Beta sampler; both shapes must be positive.
    pub fn new(a: f64, b: f64) -> Self {
        Beta {
            ga: Gamma::new(a),
            gb: Gamma::new(b),
        }
    }

    /// Draw one sample in `(0, 1)`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let x = self.ga.sample(rng);
        let y = self.gb.sample(rng);
        x / (x + y)
    }
}

/// Symmetric or general Dirichlet distribution.
///
/// This realises the paper's partition rule `p_{k,c} ~ Dir(β)`: a draw is a
/// probability vector over classes (or clients, depending on orientation).
#[derive(Clone, Debug)]
pub struct Dirichlet {
    alphas: Vec<f64>,
}

impl Dirichlet {
    /// General Dirichlet with per-component concentrations.
    pub fn new(alphas: Vec<f64>) -> Self {
        assert!(!alphas.is_empty(), "Dirichlet needs ≥ 1 component");
        assert!(
            alphas.iter().all(|&a| a > 0.0 && a.is_finite()),
            "Dirichlet concentrations must be positive"
        );
        Dirichlet { alphas }
    }

    /// Symmetric Dirichlet with `dim` components of concentration `beta` —
    /// the form used throughout the paper.
    pub fn symmetric(beta: f64, dim: usize) -> Self {
        Self::new(vec![beta; dim])
    }

    /// Number of components.
    pub fn dim(&self) -> usize {
        self.alphas.len()
    }

    /// Draw one probability vector (sums to 1).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let mut draws: Vec<f64> = self
            .alphas
            .iter()
            .map(|&a| Gamma::new(a).sample(rng).max(f64::MIN_POSITIVE))
            .collect();
        let total: f64 = draws.iter().sum();
        for d in &mut draws {
            *d /= total;
        }
        draws
    }
}

/// O(1) categorical sampling via Walker's alias method.
///
/// Built once per class distribution, then used to draw many labels when
/// materialising a synthetic dataset split.
#[derive(Clone, Debug)]
pub struct Categorical {
    prob: Vec<f64>,  // scaled probabilities in [0,1]
    alias: Vec<u32>, // alias table
}

impl Categorical {
    /// Build from (unnormalised) non-negative weights. At least one weight
    /// must be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Categorical needs ≥ 1 weight");
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");

        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w / total * n as f64).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l as u32;
            prob[l] = (prob[l] + prob[s]) - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: both stacks drain to probability 1.
        for l in large {
            prob[l] = 1.0;
        }
        for s in small {
            prob[s] = 1.0;
        }
        Categorical { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True if there is exactly one category (sampling is then constant).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one category index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let i = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    fn mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        (m, v)
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256pp::seed_from(1);
        let mut d = Normal::new(2.0, 3.0);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = mean_var(&xs);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        assert!((v - 9.0).abs() < 0.2, "var {v}");
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = Xoshiro256pp::seed_from(1);
        let mut d = Normal::new(5.0, 0.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn gamma_moments_shape_above_one() {
        let mut rng = Xoshiro256pp::seed_from(2);
        let d = Gamma::new(4.5);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = mean_var(&xs);
        assert!((m - 4.5).abs() < 0.05, "mean {m}");
        assert!((v - 4.5).abs() < 0.15, "var {v}");
    }

    #[test]
    fn gamma_moments_shape_below_one() {
        let mut rng = Xoshiro256pp::seed_from(3);
        let d = Gamma::new(0.3);
        let xs: Vec<f64> = (0..300_000).map(|_| d.sample(&mut rng)).collect();
        let (m, v) = mean_var(&xs);
        assert!((m - 0.3).abs() < 0.02, "mean {m}");
        assert!((v - 0.3).abs() < 0.05, "var {v}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn beta_moments() {
        let mut rng = Xoshiro256pp::seed_from(4);
        let d = Beta::new(2.0, 5.0);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (m, _) = mean_var(&xs);
        assert!((m - 2.0 / 7.0).abs() < 0.01, "mean {m}");
        assert!(xs.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn dirichlet_sums_to_one_and_mean_matches() {
        let mut rng = Xoshiro256pp::seed_from(5);
        let d = Dirichlet::new(vec![1.0, 2.0, 3.0]);
        let mut acc = [0.0f64; 3];
        let n = 50_000;
        for _ in 0..n {
            let p = d.sample(&mut rng);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            for (a, &x) in acc.iter_mut().zip(&p) {
                *a += x;
            }
        }
        let expect = [1.0 / 6.0, 2.0 / 6.0, 3.0 / 6.0];
        for (a, e) in acc.iter().zip(&expect) {
            assert!((a / n as f64 - e).abs() < 0.01);
        }
    }

    #[test]
    fn dirichlet_low_beta_is_skewed() {
        // Small β concentrates mass on few components — the paper's high
        // heterogeneity regime. Check that the max component dominates.
        let mut rng = Xoshiro256pp::seed_from(6);
        let d = Dirichlet::symmetric(0.1, 10);
        let mut max_mean = 0.0;
        let n = 5_000;
        for _ in 0..n {
            let p = d.sample(&mut rng);
            max_mean += p.iter().cloned().fold(0.0, f64::max);
        }
        max_mean /= n as f64;
        assert!(max_mean > 0.6, "Dir(0.1) max share {max_mean}");
    }

    #[test]
    fn dirichlet_high_beta_is_flat() {
        let mut rng = Xoshiro256pp::seed_from(7);
        let d = Dirichlet::symmetric(100.0, 10);
        let p = d.sample(&mut rng);
        for &x in &p {
            assert!((x - 0.1).abs() < 0.05, "component {x}");
        }
    }

    #[test]
    fn categorical_frequencies_match_weights() {
        let mut rng = Xoshiro256pp::seed_from(8);
        let weights = [1.0, 2.0, 3.0, 4.0];
        let cat = Categorical::new(&weights);
        let mut counts = [0usize; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[cat.sample(&mut rng)] += 1;
        }
        for (c, w) in counts.iter().zip(&weights) {
            let frac = *c as f64 / n as f64;
            assert!((frac - w / 10.0).abs() < 0.01, "freq {frac} for weight {w}");
        }
    }

    #[test]
    fn categorical_zero_weight_never_sampled() {
        let mut rng = Xoshiro256pp::seed_from(9);
        let cat = Categorical::new(&[0.0, 1.0, 0.0]);
        for _ in 0..10_000 {
            assert_eq!(cat.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic]
    fn categorical_all_zero_panics() {
        let _ = Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn gamma_nonpositive_shape_panics() {
        let _ = Gamma::new(0.0);
    }
}
