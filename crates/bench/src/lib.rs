//! Benchmark support crate.
//!
//! The benches live in `benches/`:
//!
//! * `kernels.rs` — tensor/BLAS kernel throughput (incl. the blocked-vs-
//!   naive matmul ablation from DESIGN.md §4);
//! * `fl_round.rs` — per-round federated costs: local training,
//!   aggregation, FedWCM's weighting/temperature computation;
//! * `he.rs` — RLWE encrypt/add/decrypt and full-protocol costs;
//! * `experiments.rs` — one bench target per paper table/figure, each
//!   regenerating a smoke-scale cell of that artifact (the full artifacts
//!   are produced by the `fedwcm-experiments` binaries).
//!
//! Shared helpers for constructing bench fixtures live here.

use fedwcm_data::dataset::Dataset;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::synth::DatasetPreset;

/// A small fixed federated dataset for benchmarking.
pub fn bench_dataset(imbalance: f64) -> (Dataset, Dataset) {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 60, imbalance);
    (spec.generate_train(&counts, 7777), spec.generate_test(7777))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let (train, test) = bench_dataset(0.1);
        assert!(train.len() > 100);
        assert_eq!(test.classes(), 10);
    }
}
