//! Privacy-preserving global-distribution gathering (paper §5.5 /
//! Appendix C): clients encrypt their local class counts with the RLWE
//! additively-homomorphic scheme; the server aggregates ciphertexts
//! without decrypting; a designated key-holder recovers only the global
//! distribution — which then drives FedWCM's scores and temperature.
//!
//! ```sh
//! cargo run --release --example private_distribution
//! ```

use fedwcm_suite::he::protocol::aggregate_distributions;
use fedwcm_suite::he::rlwe::RlweParams;
use fedwcm_suite::prelude::*;

fn main() {
    // A federated task whose clients hold skewed slices of a long tail.
    let spec = DatasetPreset::Cifar10.spec();
    let counts = longtail_counts(10, 150, 0.1);
    let train = spec.generate_train(&counts, 7);
    let partition = paper_partition(&train, 10, 0.1, 7);
    let views = partition.views(&train);

    // Each client's private payload: its local class-count vector.
    let client_counts: Vec<Vec<usize>> = views.iter().map(|v| v.class_counts().to_vec()).collect();
    println!(
        "client 0 local counts (stays private): {:?}",
        client_counts[0]
    );

    // Run the protocol.
    let params = RlweParams::default_params();
    let (global, report) = aggregate_distributions(&client_counts, params, 7);

    // The server/key-holder learns only the aggregate.
    println!("\nrecovered global counts: {global:?}");
    let truth = train.class_counts();
    assert_eq!(global, truth, "HE aggregation must be exact");
    println!("matches ground truth: true");

    println!("\nprotocol accounting (Table 6 quantities):");
    println!("  clients:                 {}", report.clients);
    println!("  plaintext per client:    {} B", report.plaintext_bytes);
    println!("  ciphertext per client:   {} B", report.ciphertext_bytes);
    println!(
        "  total upload:            {:.2} MB",
        report.total_upload_bytes as f64 / 1e6
    );
    println!(
        "  encrypt time per client: {:.4} ms",
        report.encrypt_seconds_per_client * 1e3
    );
    println!(
        "  aggregate+decrypt time:  {:.4} ms",
        report.aggregate_seconds * 1e3
    );

    // Feed the (privately obtained) distribution into FedWCM's scoring.
    let classes = train.classes();
    let total: usize = global.iter().sum();
    let dist: Vec<f64> = global.iter().map(|&n| n as f64 / total as f64).collect();
    let target = vec![1.0 / classes as f64; classes];
    let scores = fedwcm_suite::core::client_scores(&views, &dist, &target);
    println!("\nFedWCM scarcity scores derived from the private aggregate:");
    for (k, s) in scores.iter().enumerate() {
        println!("  client {k}: {s:.4}");
    }
}
