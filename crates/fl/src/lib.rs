//! Federated-learning simulation engine.
//!
//! This crate is the substrate every algorithm (FedAvg, FedCM, FedWCM, …)
//! plugs into. It owns the round loop: sample a client subset `P_r`, train
//! each sampled client **in parallel** (deterministically seeded per
//! `(seed, round, client)`), hand the collected updates to the algorithm's
//! aggregation step, apply the server update, and periodically evaluate on
//! the held-out test set.
//!
//! # Delta convention
//!
//! The paper's Algorithm 1 writes `Δ_k = x_B − x_r` and then
//! `x_{r+1} = x_r − η_g Δ_{r+1}`, which taken literally ascends; we adopt
//! the standard FedCM convention instead. A client update's `delta` is the
//! **gradient-scale normalised direction**
//!
//! ```text
//! delta_k = (x_r − x_B) / (η_l · B_k)
//! ```
//!
//! so `delta` has the magnitude of a single mini-batch gradient. The global
//! momentum `Δ` fed back into clients is an aggregation of these, and the
//! server step is `x ← x − η_g · η_l · B̄ · Δ`, which for `η_g = 1` and
//! uniform weights recovers exact model averaging (FedAvg).
//!
//! Modules: [`config`], [`cadence`] (when the server aggregates),
//! [`client`] (local-training helpers),
//! [`algorithm`] (the [`algorithm::FederatedAlgorithm`] trait),
//! [`engine`] (the round loop), [`checkpoint`] (crash/resume snapshots),
//! [`metrics`] (histories and resilience reports),
//! [`quadratic`] (a convex testbed for the Theorem 6.1 rate check), and
//! [`wire`] (payload codec for the fault-tolerant transport).

#![warn(missing_docs)]

pub mod algorithm;
pub mod cadence;
pub mod checkpoint;
pub mod client;
pub mod comms;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod quadratic;
pub mod wire;

pub use algorithm::{FederatedAlgorithm, RoundInput, RoundLog, StateError};
pub use cadence::Cadence;
pub use checkpoint::{CheckpointError, ServerCheckpoint};
pub use client::{ClientEnv, ClientUpdate, LocalSgdSpec};
pub use config::FlConfig;
pub use engine::{
    evaluate_accuracy, evaluate_accuracy_threads, per_class_accuracy, per_class_accuracy_threads,
    sampled_clients_for, Observability, Simulation,
};
pub use fedwcm_transport::{NetConfig, NetCounters, NetPlan, RetryPolicy};
pub use metrics::{History, ResilienceReport, RoundFaults, RoundRecord};
