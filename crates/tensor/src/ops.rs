//! BLAS-1 style slice kernels.
//!
//! These operate on plain `&[f32]` / `&mut [f32]` so the NN parameter arena
//! and the FL aggregation code can use them directly on flat parameter
//! vectors. Federated aggregation (`Δ_{r+1} = Σ_k w_k Δ_k`, server steps,
//! momentum mixing) is built entirely from these kernels.

/// `y += alpha * x` (axpy).
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` (scal).
#[inline]
pub fn scal(alpha: f32, x: &mut [f32]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Dot product.
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    // Four-way unrolled accumulation: breaks the serial FP dependency chain
    // so the compiler can keep multiple FMAs in flight.
    let mut acc = [0.0f32; 4];
    let chunks = x.len() / 4;
    for i in 0..chunks {
        let b = i * 4;
        acc[0] += x[b] * y[b];
        acc[1] += x[b + 1] * y[b + 1];
        acc[2] += x[b + 2] * y[b + 2];
        acc[3] += x[b + 3] * y[b + 3];
    }
    let mut tail = 0.0f32;
    for i in chunks * 4..x.len() {
        tail += x[i] * y[i];
    }
    acc[0] + acc[1] + acc[2] + acc[3] + tail
}

/// Squared L2 norm.
#[inline]
pub fn norm_sq(x: &[f32]) -> f32 {
    dot(x, x)
}

/// L2 norm.
#[inline]
pub fn norm(x: &[f32]) -> f32 {
    norm_sq(x).sqrt()
}

/// `out = a - b` elementwise.
#[inline]
pub fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(
        a.len() == b.len() && b.len() == out.len(),
        "sub length mismatch"
    );
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// `out = a + b` elementwise.
#[inline]
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    assert!(
        a.len() == b.len() && b.len() == out.len(),
        "add length mismatch"
    );
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// `y = alpha * x + beta * y` (axpby) — the momentum blend
/// `v = α·g + (1−α)·Δ` from Eq. (2)/(6) in one pass.
#[inline]
pub fn axpby(alpha: f32, x: &[f32], beta: f32, y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

/// Copy `src` into `dst`.
#[inline]
pub fn copy(src: &[f32], dst: &mut [f32]) {
    dst.copy_from_slice(src);
}

/// Set all elements to zero.
#[inline]
pub fn zero(x: &mut [f32]) {
    x.fill(0.0);
}

/// Clip the L2 norm of `x` to at most `max_norm`; returns the pre-clip
/// norm. Used by FedGrab's gradient balancer and available for stability.
pub fn clip_norm(x: &mut [f32], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let n = norm(x);
    if n > max_norm {
        scal(max_norm / n, x);
    }
    n
}

/// Cosine similarity of two vectors; 0 when either has zero norm.
pub fn cosine(x: &[f32], y: &[f32]) -> f32 {
    let nx = norm(x);
    let ny = norm(y);
    if nx == 0.0 || ny == 0.0 {
        return 0.0;
    }
    dot(x, y) / (nx * ny)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpby_matches_momentum_formula() {
        let g = [1.0, -2.0];
        let mut v = [4.0, 8.0]; // holds Δ on entry
        let alpha = 0.1;
        axpby(alpha, &g, 1.0 - alpha, &mut v);
        assert!((v[0] - (0.1 * 1.0 + 0.9 * 4.0)).abs() < 1e-6);
        assert!((v[1] - (0.1 * -2.0 + 0.9 * 8.0)).abs() < 1e-6);
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        for n in [0usize, 1, 3, 4, 5, 8, 17, 100] {
            let x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.5 - 1.0).collect();
            let y: Vec<f32> = (0..n).map(|i| (i as f32) * -0.25 + 2.0).collect();
            let naive: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            assert!((dot(&x, &y) - naive).abs() < 1e-3, "n={n}");
        }
    }

    #[test]
    fn scal_and_zero() {
        let mut x = [2.0, 4.0];
        scal(0.5, &mut x);
        assert_eq!(x, [1.0, 2.0]);
        zero(&mut x);
        assert_eq!(x, [0.0, 0.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = [5.0, 7.0];
        let b = [2.0, 3.0];
        let mut d = [0.0; 2];
        sub(&a, &b, &mut d);
        assert_eq!(d, [3.0, 4.0]);
        let mut s = [0.0; 2];
        add(&d, &b, &mut s);
        assert_eq!(s, a);
    }

    #[test]
    fn clip_norm_clips_only_when_needed() {
        let mut x = [3.0, 4.0];
        let pre = clip_norm(&mut x, 10.0);
        assert_eq!(pre, 5.0);
        assert_eq!(x, [3.0, 4.0]);
        let pre = clip_norm(&mut x, 1.0);
        assert_eq!(pre, 5.0);
        assert!((norm(&x) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_cases() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn axpy_length_mismatch_panics() {
        let mut y = [0.0; 2];
        axpy(1.0, &[1.0; 3], &mut y);
    }
}
