//! Number-theoretic transform over the Goldilocks prime
//! `p = 2^64 − 2^32 + 1`, with negacyclic convolution support.
//!
//! The main scheme ([`crate::rlwe`]) gets away with `O(N·wt(s))` sparse
//! products because the secret is sparse ternary. Dense-secret variants —
//! and any future multiplicative extension — need fast full polynomial
//! products: that is what this module provides, at `O(N log N)`.
//!
//! `p` has 2^32 | p − 1, so primitive `2N`-th roots of unity exist for all
//! `N ≤ 2^31`; multiplying inputs by powers of a `2N`-th root before an
//! `N`-point NTT ("twisting") turns cyclic convolution into **negacyclic**
//! convolution mod `x^N + 1` — exactly the RLWE ring.

/// The Goldilocks prime `2^64 − 2^32 + 1`.
pub const P: u64 = 0xFFFF_FFFF_0000_0001;

/// `7` generates the multiplicative group of `Z_p`.
const GENERATOR: u64 = 7;

/// Addition mod p.
#[inline]
pub fn addp(a: u64, b: u64) -> u64 {
    let (s, c) = a.overflowing_add(b);
    let mut s = s;
    if c || s >= P {
        s = s.wrapping_sub(P);
    }
    s
}

/// Subtraction mod p.
#[inline]
pub fn subp(a: u64, b: u64) -> u64 {
    let (d, borrow) = a.overflowing_sub(b);
    if borrow {
        d.wrapping_add(P)
    } else {
        d
    }
}

/// Multiplication mod p via u128.
#[inline]
pub fn mulp(a: u64, b: u64) -> u64 {
    reduce128((a as u128) * (b as u128))
}

/// Reduce a 128-bit value mod the Goldilocks prime using its special
/// form: `2^64 ≡ 2^32 − 1 (mod p)`.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    // lint:allow(cast-soundness) truncation to the low 64 bits is the point of this decomposition
    let lo = x as u64;
    let hi = (x >> 64) as u64;
    let hi_lo = hi & 0xFFFF_FFFF; // hi low 32 bits
    let hi_hi = hi >> 32; // hi high 32 bits
                          // x = lo + hi_lo·2^64 + hi_hi·2^96
                          //   ≡ lo + hi_lo·(2^32 − 1) − hi_hi  (mod p), since 2^96 ≡ −1.
    let mut r = subp(lo, hi_hi);
    let t = (hi_lo << 32).wrapping_sub(hi_lo); // hi_lo·(2^32−1) < p
    r = addp(r, t);
    r
}

/// Modular exponentiation.
pub fn powp(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= P;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mulp(acc, base);
        }
        base = mulp(base, base);
        exp >>= 1;
    }
    acc
}

/// Multiplicative inverse via Fermat.
pub fn invp(a: u64) -> u64 {
    assert!(!a.is_multiple_of(P), "zero has no inverse");
    powp(a, P - 2)
}

/// A primitive `n`-th root of unity (n must divide p − 1 and be a power
/// of two here).
pub fn root_of_unity(n: u64) -> u64 {
    assert!(n.is_power_of_two() && n <= 1 << 32, "unsupported NTT size");
    powp(GENERATOR, (P - 1) / n)
}

/// In-place iterative radix-2 DIT NTT. `data.len()` must be a power of
/// two; `root` must be a primitive `data.len()`-th root of unity.
pub fn ntt_in_place(data: &mut [u64], root: u64) {
    let n = data.len();
    assert!(n.is_power_of_two(), "NTT length must be a power of two");
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2usize;
    while len <= n {
        let w_len = powp(root, (n / len) as u64);
        for start in (0..n).step_by(len) {
            let mut w = 1u64;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = mulp(data[start + k + len / 2], w);
                data[start + k] = addp(u, v);
                data[start + k + len / 2] = subp(u, v);
                w = mulp(w, w_len);
            }
        }
        len <<= 1;
    }
}

/// Inverse NTT (scales by 1/n).
pub fn intt_in_place(data: &mut [u64], root: u64) {
    let n = data.len() as u64;
    ntt_in_place(data, invp(root));
    let n_inv = invp(n % P);
    for x in data.iter_mut() {
        *x = mulp(*x, n_inv);
    }
}

/// Negacyclic convolution mod `x^N + 1` over `Z_p`: returns `a ⊛ b`.
///
/// Implemented via the twist: `c(x) = ψ^{-i}·NTT⁻¹(NTT(ψ^i a_i)·NTT(ψ^i b_i))`
/// with `ψ` a primitive `2N`-th root of unity.
pub fn negacyclic_mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len();
    assert_eq!(n, b.len(), "operand length mismatch");
    assert!(n.is_power_of_two(), "length must be a power of two");
    let psi = root_of_unity(2 * n as u64);
    let root = mulp(psi, psi); // primitive N-th root

    let mut at: Vec<u64> = Vec::with_capacity(n);
    let mut bt: Vec<u64> = Vec::with_capacity(n);
    let mut w = 1u64;
    for i in 0..n {
        at.push(mulp(a[i] % P, w));
        bt.push(mulp(b[i] % P, w));
        w = mulp(w, psi);
    }
    ntt_in_place(&mut at, root);
    ntt_in_place(&mut bt, root);
    for (x, y) in at.iter_mut().zip(&bt) {
        *x = mulp(*x, *y);
    }
    intt_in_place(&mut at, root);
    // Untwist.
    let psi_inv = invp(psi);
    let mut w = 1u64;
    for x in at.iter_mut() {
        *x = mulp(*x, w);
        w = mulp(w, psi_inv);
    }
    at
}

/// Reference O(N²) negacyclic product for differential testing.
pub fn negacyclic_mul_naive(a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len();
    assert_eq!(n, b.len());
    let mut out = vec![0u64; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let prod = mulp(ai % P, bj % P);
            let k = i + j;
            if k < n {
                out[k] = addp(out[k], prod);
            } else {
                out[k - n] = subp(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_stats::rng::{Rng, Xoshiro256pp};

    #[test]
    fn field_arithmetic_basics() {
        assert_eq!(addp(P - 1, 1), 0);
        assert_eq!(subp(0, 1), P - 1);
        assert_eq!(mulp(P - 1, P - 1), 1); // (−1)² = 1
        assert_eq!(mulp(invp(12345), 12345), 1);
        assert_eq!(powp(5, 0), 1);
    }

    #[test]
    fn reduce128_matches_modulo() {
        let mut rng = Xoshiro256pp::seed_from(1);
        for _ in 0..10_000 {
            let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            assert_eq!(reduce128(x) as u128, x % P as u128);
        }
    }

    #[test]
    fn roots_have_exact_order() {
        for logn in [1u32, 4, 12] {
            let n = 1u64 << logn;
            let w = root_of_unity(n);
            assert_eq!(powp(w, n), 1);
            assert_ne!(powp(w, n / 2), 1, "root order too small for n={n}");
        }
    }

    #[test]
    fn ntt_roundtrip() {
        let mut rng = Xoshiro256pp::seed_from(2);
        for n in [8usize, 64, 1024] {
            let original: Vec<u64> = (0..n).map(|_| rng.next_u64() % P).collect();
            let root = root_of_unity(n as u64);
            let mut data = original.clone();
            ntt_in_place(&mut data, root);
            assert_ne!(data, original);
            intt_in_place(&mut data, root);
            assert_eq!(data, original, "n={n}");
        }
    }

    #[test]
    fn negacyclic_matches_naive() {
        let mut rng = Xoshiro256pp::seed_from(3);
        for n in [8usize, 32, 256] {
            let a: Vec<u64> = (0..n).map(|_| rng.next_u64() % P).collect();
            let b: Vec<u64> = (0..n).map(|_| rng.next_u64() % P).collect();
            assert_eq!(
                negacyclic_mul(&a, &b),
                negacyclic_mul_naive(&a, &b),
                "n={n}"
            );
        }
    }

    #[test]
    fn negacyclic_wraparound_sign() {
        // x^{N-1} · x = x^N = −1.
        let n = 16usize;
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        let c = negacyclic_mul(&a, &b);
        let mut expect = vec![0u64; n];
        expect[0] = P - 1; // −1
        assert_eq!(c, expect);
    }

    #[test]
    fn convolution_is_commutative_and_linear() {
        let mut rng = Xoshiro256pp::seed_from(4);
        let n = 64usize;
        let a: Vec<u64> = (0..n).map(|_| rng.next_u64() % P).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.next_u64() % P).collect();
        let c: Vec<u64> = (0..n).map(|_| rng.next_u64() % P).collect();
        assert_eq!(negacyclic_mul(&a, &b), negacyclic_mul(&b, &a));
        // a ⊛ (b + c) = a ⊛ b + a ⊛ c
        let bc: Vec<u64> = b.iter().zip(&c).map(|(&x, &y)| addp(x, y)).collect();
        let lhs = negacyclic_mul(&a, &bc);
        let rhs: Vec<u64> = negacyclic_mul(&a, &b)
            .iter()
            .zip(&negacyclic_mul(&a, &c))
            .map(|(&x, &y)| addp(x, y))
            .collect();
        assert_eq!(lhs, rhs);
    }
}
