//! Typed trace records and the strict JSONL parser.
//!
//! [`parse_trace`] turns `JsonlSink` output back into the records the
//! sink encoded — and nothing else. Every line must be a flat JSON
//! object opening with the fixed `t`, `ev`, `name` header keys, every
//! field value must be a scalar, and [`TraceRecord::to_json_line`]
//! re-encodes to the *identical bytes* (property-tested against the
//! real encoder in `tests/roundtrip.rs`). Non-finite floats encode as
//! `null` on the wire, so they come back as [`TraceValue::Null`] — the
//! one deliberate (and documented) lossy spot in the encoding.

use crate::error::ObsError;
use crate::json::{self, Json};

/// A typed field value as reconstructed from the wire.
///
/// Integers keep the encoder's sign split (`U64` for non-negative,
/// `I64` for negative); a number with a fraction or exponent is `F64`.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceValue {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Finite float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
    /// JSON `null` — the wire encoding of a non-finite float.
    Null,
}

impl TraceValue {
    fn write(&self, out: &mut String) {
        match self {
            TraceValue::U64(x) => out.push_str(&x.to_string()),
            TraceValue::I64(x) => out.push_str(&x.to_string()),
            TraceValue::F64(x) => json::write_f64(*x, out),
            TraceValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            TraceValue::Str(s) => json::write_str(s, out),
            TraceValue::Null => out.push_str("null"),
        }
    }

    /// The value as `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            TraceValue::U64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TraceValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// What a record marks — mirrors `fedwcm_trace::EventKind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecordKind {
    /// A span opened.
    Start,
    /// A span closed.
    End,
    /// An instantaneous event.
    Point,
}

impl RecordKind {
    /// The wire tag (`"start"` / `"end"` / `"point"`).
    pub fn tag(self) -> &'static str {
        match self {
            RecordKind::Start => "start",
            RecordKind::End => "end",
            RecordKind::Point => "point",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "start" => Some(RecordKind::Start),
            "end" => Some(RecordKind::End),
            "point" => Some(RecordKind::Point),
            _ => None,
        }
    }
}

/// One reconstructed trace record: the typed mirror of
/// `fedwcm_trace::Event` on the consumer side.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    /// Timestamp in the recording clock's ticks.
    pub t: u64,
    /// Start / end / point.
    pub kind: RecordKind,
    /// Span or event name.
    pub name: String,
    /// Ordered key/value fields, exactly as recorded.
    pub fields: Vec<(String, TraceValue)>,
}

impl TraceRecord {
    /// Re-encode as one JSON line (no trailing newline) — byte-for-byte
    /// what `JsonlSink` wrote for this record.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"t\":");
        out.push_str(&self.t.to_string());
        out.push_str(",\"ev\":\"");
        out.push_str(self.kind.tag());
        out.push_str("\",\"name\":");
        json::write_str(&self.name, &mut out);
        for (k, v) in &self.fields {
            out.push(',');
            json::write_str(k, &mut out);
            out.push(':');
            v.write(&mut out);
        }
        out.push('}');
        out
    }

    /// The record's value for field `key`, if present (first match).
    pub fn field(&self, key: &str) -> Option<&TraceValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Parse a whole JSONL trace (one record per line; a trailing newline
/// is allowed, interior blank lines are not). Strict: any deviation
/// from the sink's encoding is a typed error naming the line.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, ObsError> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            return Err(ObsError::Record {
                line: lineno,
                msg: "blank line inside trace".to_string(),
            });
        }
        records.push(parse_line(line, lineno)?);
    }
    Ok(records)
}

/// Parse one JSONL line into a [`TraceRecord`].
pub fn parse_line(line: &str, lineno: usize) -> Result<TraceRecord, ObsError> {
    let v = json::parse(line, lineno)?;
    let Json::Obj(entries) = v else {
        return Err(bad(lineno, "record is not a JSON object"));
    };
    let mut it = entries.into_iter();
    let t = match it.next() {
        Some((k, Json::U64(t))) if k == "t" => t,
        _ => return Err(bad(lineno, "first key must be \"t\" with an unsigned tick")),
    };
    let kind = match it.next() {
        Some((k, Json::Str(tag))) if k == "ev" => match RecordKind::from_tag(&tag) {
            Some(kind) => kind,
            None => return Err(bad(lineno, "\"ev\" must be start, end, or point")),
        },
        _ => return Err(bad(lineno, "second key must be \"ev\" with a kind tag")),
    };
    let name = match it.next() {
        Some((k, Json::Str(name))) if k == "name" => name,
        _ => return Err(bad(lineno, "third key must be \"name\" with a string")),
    };
    let mut fields = Vec::new();
    for (k, v) in it {
        if k == "t" || k == "ev" || k == "name" {
            return Err(bad(lineno, "duplicate header key in fields"));
        }
        let value = match v {
            Json::U64(x) => TraceValue::U64(x),
            Json::I64(x) => TraceValue::I64(x),
            Json::F64(x) => TraceValue::F64(x),
            Json::Bool(b) => TraceValue::Bool(b),
            Json::Str(s) => TraceValue::Str(s),
            Json::Null => TraceValue::Null,
            Json::Arr(_) | Json::Obj(_) => {
                return Err(bad(lineno, "field values must be scalars"));
            }
        };
        fields.push((k, value));
    }
    Ok(TraceRecord {
        t,
        kind,
        name,
        fields,
    })
}

fn bad(line: usize, msg: &str) -> ObsError {
    ObsError::Record {
        line,
        msg: msg.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_real_span_line() {
        let line = "{\"t\":3,\"ev\":\"start\",\"name\":\"client_update\",\"round\":0,\
                    \"client\":1,\"batches\":6,\"loss\":2.008634328842163}";
        let r = parse_line(line, 1).expect("parses");
        assert_eq!(r.t, 3);
        assert_eq!(r.kind, RecordKind::Start);
        assert_eq!(r.name, "client_update");
        assert_eq!(r.field("client"), Some(&TraceValue::U64(1)));
        assert_eq!(r.field("loss"), Some(&TraceValue::F64(2.008634328842163)));
        assert_eq!(r.to_json_line(), line);
    }

    #[test]
    fn parses_end_and_point_records() {
        let end = parse_line("{\"t\":8,\"ev\":\"end\",\"name\":\"round\"}", 1).expect("end");
        assert_eq!(end.kind, RecordKind::End);
        assert!(end.fields.is_empty());
        let point = parse_line(
            "{\"t\":9,\"ev\":\"point\",\"name\":\"fault\",\"kind\":\"dropout\",\"ok\":true}",
            1,
        )
        .expect("point");
        assert_eq!(point.kind, RecordKind::Point);
        assert_eq!(
            point.field("kind").and_then(TraceValue::as_str),
            Some("dropout")
        );
        assert_eq!(point.field("ok"), Some(&TraceValue::Bool(true)));
    }

    #[test]
    fn null_fields_come_back_as_null() {
        // Non-finite floats encode as null on the wire.
        let r =
            parse_line("{\"t\":0,\"ev\":\"point\",\"name\":\"x\",\"v\":null}", 1).expect("parses");
        assert_eq!(r.field("v"), Some(&TraceValue::Null));
        assert_eq!(
            r.to_json_line(),
            "{\"t\":0,\"ev\":\"point\",\"name\":\"x\",\"v\":null}"
        );
    }

    #[test]
    fn negative_integers_are_i64() {
        let r =
            parse_line("{\"t\":0,\"ev\":\"point\",\"name\":\"x\",\"v\":-3}", 1).expect("parses");
        assert_eq!(r.field("v"), Some(&TraceValue::I64(-3)));
    }

    #[test]
    fn rejects_header_violations() {
        for line in [
            "{\"ev\":\"point\",\"t\":0,\"name\":\"x\"}", // wrong key order
            "{\"t\":0,\"ev\":\"point\"}",                // missing name
            "{\"t\":-1,\"ev\":\"point\",\"name\":\"x\"}", // negative tick
            "{\"t\":0,\"ev\":\"begin\",\"name\":\"x\"}", // unknown tag
            "{\"t\":0,\"ev\":\"point\",\"name\":\"x\",\"t\":1}", // duplicate header
            "{\"t\":0,\"ev\":\"point\",\"name\":\"x\",\"v\":[1]}", // non-scalar field
            "[1,2]",                                     // not an object
        ] {
            assert!(parse_line(line, 1).is_err(), "should reject {line}");
        }
    }

    #[test]
    fn parse_trace_reports_the_failing_line() {
        let text = "{\"t\":0,\"ev\":\"point\",\"name\":\"a\"}\nnot json\n";
        match parse_trace(text) {
            Err(ObsError::Json { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_trace_rejects_blank_interior_lines() {
        let text = "{\"t\":0,\"ev\":\"point\",\"name\":\"a\"}\n\n";
        match parse_trace(text) {
            Err(ObsError::Record { line, .. }) => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_trace_accepts_trailing_newline_and_counts_records() {
        let text = "{\"t\":0,\"ev\":\"start\",\"name\":\"round\"}\n\
                    {\"t\":1,\"ev\":\"end\",\"name\":\"round\"}\n";
        let rs = parse_trace(text).expect("parses");
        assert_eq!(rs.len(), 2);
    }
}
