//! Round-by-round histories and summary statistics.

/// One round's record.
#[derive(Clone, Debug)]
pub struct RoundRecord {
    /// Round index.
    pub round: usize,
    /// Mean local training loss across sampled clients.
    pub train_loss: f64,
    /// L2 norm of the applied server direction.
    pub update_norm: f64,
    /// Test accuracy, if this round was evaluated.
    pub test_acc: Option<f64>,
    /// Momentum value α used (momentum methods only).
    pub alpha: Option<f64>,
    /// Client updates discarded this round for containing non-finite
    /// values (failure containment; see `engine`).
    pub dropped_updates: usize,
}

/// A full training trajectory for one algorithm run.
#[derive(Clone, Debug)]
pub struct History {
    /// Algorithm display name.
    pub name: String,
    /// Per-round records.
    pub records: Vec<RoundRecord>,
}

impl History {
    /// New empty history.
    pub fn new(name: impl Into<String>) -> Self {
        History {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// All `(round, accuracy)` evaluation points.
    pub fn accuracy_series(&self) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter_map(|r| r.test_acc.map(|a| (r.round, a)))
            .collect()
    }

    /// Mean accuracy over the last `window` evaluations (the reported
    /// "final accuracy"; robust to single-round noise).
    pub fn final_accuracy(&self, window: usize) -> f64 {
        let series = self.accuracy_series();
        if series.is_empty() {
            return 0.0;
        }
        let take = window.max(1).min(series.len());
        let tail = &series[series.len() - take..];
        tail.iter().map(|&(_, a)| a).sum::<f64>() / take as f64
    }

    /// Best accuracy observed at any evaluation.
    pub fn best_accuracy(&self) -> f64 {
        self.accuracy_series()
            .iter()
            .map(|&(_, a)| a)
            .fold(0.0, f64::max)
    }

    /// First round at which accuracy reached `threshold`, if ever.
    pub fn rounds_to_reach(&self, threshold: f64) -> Option<usize> {
        self.accuracy_series()
            .iter()
            .find(|&&(_, a)| a >= threshold)
            .map(|&(r, _)| r)
    }

    /// Standard deviation of accuracy over the last `window` evaluations —
    /// large values indicate the oscillation/non-convergence signature the
    /// paper reports for FedCM under long tails.
    pub fn tail_accuracy_std(&self, window: usize) -> f64 {
        let series = self.accuracy_series();
        if series.len() < 2 {
            return 0.0;
        }
        let take = window.max(2).min(series.len());
        let tail: Vec<f64> = series[series.len() - take..]
            .iter()
            .map(|&(_, a)| a)
            .collect();
        fedwcm_stats::describe::stddev(&tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_with(accs: &[(usize, f64)]) -> History {
        let mut h = History::new("test");
        for &(round, acc) in accs {
            h.records.push(RoundRecord {
                round,
                train_loss: 1.0,
                update_norm: 0.5,
                test_acc: Some(acc),
                alpha: None,
                dropped_updates: 0,
            });
        }
        h
    }

    #[test]
    fn final_accuracy_averages_tail() {
        let h = history_with(&[(0, 0.1), (5, 0.5), (10, 0.7), (15, 0.9)]);
        assert!((h.final_accuracy(2) - 0.8).abs() < 1e-12);
        assert!((h.final_accuracy(100) - 0.55).abs() < 1e-12);
        assert_eq!(History::new("x").final_accuracy(3), 0.0);
    }

    #[test]
    fn best_and_threshold() {
        let h = history_with(&[(0, 0.2), (5, 0.8), (10, 0.6)]);
        assert_eq!(h.best_accuracy(), 0.8);
        assert_eq!(h.rounds_to_reach(0.7), Some(5));
        assert_eq!(h.rounds_to_reach(0.9), None);
    }

    #[test]
    fn tail_std_detects_oscillation() {
        let stable = history_with(&[(0, 0.70), (1, 0.71), (2, 0.70), (3, 0.71)]);
        let unstable = history_with(&[(0, 0.1), (1, 0.6), (2, 0.15), (3, 0.5)]);
        assert!(unstable.tail_accuracy_std(4) > stable.tail_accuracy_std(4) * 5.0);
    }

    #[test]
    fn unevaluated_rounds_skipped() {
        let mut h = History::new("x");
        h.records.push(RoundRecord {
            round: 0,
            train_loss: 1.0,
            update_norm: 0.1,
            test_acc: None,
            alpha: None,
            dropped_updates: 0,
        });
        assert!(h.accuracy_series().is_empty());
    }
}
