//! Deterministic random-number generation and probability distributions.
//!
//! Everything stochastic in the FedWCM reproduction flows through this
//! crate. We implement the generators from scratch (xoshiro256++ seeded via
//! splitmix64) instead of depending on an external RNG so that every
//! experiment is bit-reproducible across library versions, platforms, and
//! thread counts.
//!
//! The crate provides:
//!
//! * [`rng::Xoshiro256pp`] — the core generator, plus [`rng::split_seed`]
//!   for deriving independent per-(round, client, purpose) streams;
//! * [`dist`] — Normal (Box–Muller), Gamma (Marsaglia–Tsang), Dirichlet,
//!   Beta, and Categorical (alias-method) samplers, which back the paper's
//!   Dirichlet data partitions and synthetic datasets;
//! * [`describe`] — descriptive statistics (mean/variance/quantiles/Gini)
//!   used by the analysis and experiment crates.

#![warn(missing_docs)]

pub mod describe;
pub mod dist;
pub mod rng;

pub use dist::{Categorical, Dirichlet, Gamma, Normal};
pub use rng::{split_seed, Rng, Xoshiro256pp};
