//! Property-based tests for the data pipeline: partition invariants that
//! must hold for arbitrary client counts, β, and imbalance factors.

use fedwcm_data::longtail::{longtail_counts, longtail_counts_with_total, measured_if};
use fedwcm_data::partition::{fedgrab_partition, paper_partition};
use fedwcm_data::synth::DatasetPreset;
use proptest::prelude::*;

fn dataset(imbalance: f64, seed: u64) -> fedwcm_data::Dataset {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 120, imbalance);
    spec.generate_train(&counts, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn longtail_counts_monotone_and_positive(
        classes in 2usize..60, head in 10usize..2000, imb in 0.01f64..1.0,
    ) {
        let c = longtail_counts(classes, head, imb);
        prop_assert_eq!(c.len(), classes);
        prop_assert!(c.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(c.iter().all(|&n| n >= 1));
        prop_assert_eq!(c[0], head);
    }

    #[test]
    fn longtail_total_scaling_exact(classes in 2usize..40, total in 200usize..5000, imb in 0.01f64..1.0) {
        prop_assume!(total >= classes);
        let c = longtail_counts_with_total(classes, total, imb);
        prop_assert_eq!(c.iter().sum::<usize>(), total);
        prop_assert!(c.iter().all(|&n| n >= 1));
        prop_assert!(measured_if(&c) <= 1.0);
    }

    #[test]
    fn paper_partition_invariants(clients in 2usize..25, beta in 0.05f64..5.0, imb in 0.05f64..1.0, seed in any::<u64>()) {
        let ds = dataset(imb, seed);
        let p = paper_partition(&ds, clients, beta, seed);
        // Exhaustive, disjoint cover.
        let mut seen = vec![false; ds.len()];
        for k in 0..clients {
            for &i in p.client(k) {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Near-equal quantities.
        let sizes = p.client_sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= ds.len() / clients / 3 + 3, "sizes {min}..{max}");
        // Exact class marginals.
        let m = p.counts_matrix(&ds);
        let class_counts = ds.class_counts();
        for c in 0..ds.classes() {
            prop_assert_eq!(m.iter().map(|r| r[c]).sum::<usize>(), class_counts[c]);
        }
    }

    #[test]
    fn fedgrab_partition_invariants(clients in 2usize..25, beta in 0.05f64..5.0, seed in any::<u64>()) {
        let ds = dataset(0.1, seed);
        let p = fedgrab_partition(&ds, clients, beta, seed);
        prop_assert!(p.client_sizes().iter().all(|&s| s >= 1));
        prop_assert_eq!(p.client_sizes().iter().sum::<usize>(), ds.len());
        let m = p.counts_matrix(&ds);
        let class_counts = ds.class_counts();
        for c in 0..ds.classes() {
            prop_assert_eq!(m.iter().map(|r| r[c]).sum::<usize>(), class_counts[c]);
        }
    }

    #[test]
    fn generated_datasets_respect_class_range(imb in 0.02f64..1.0, seed in any::<u64>()) {
        let ds = dataset(imb, seed);
        prop_assert!(ds.labels().iter().all(|&y| y < ds.classes()));
        prop_assert_eq!(ds.class_counts().iter().sum::<usize>(), ds.len());
        // Every feature is finite.
        for i in (0..ds.len()).step_by(97) {
            prop_assert!(ds.feature_row(i).iter().all(|x| x.is_finite()));
        }
    }
}
