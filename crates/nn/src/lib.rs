//! A from-scratch neural-network library for the FedWCM reproduction.
//!
//! Substitutes for the paper's PyTorch stack. The design centres on a
//! **flat parameter vector**: a [`model::Model`] owns one `Vec<f32>` of
//! parameters and produces gradients into an equally-shaped buffer, so all
//! federated-learning arithmetic (deltas, momentum blending, weighted
//! aggregation) is plain BLAS-1 over flat slices — no tree walking, no
//! per-layer bookkeeping in the FL code.
//!
//! Modules:
//! * [`layer`] — the [`layer::Layer`] trait plus ReLU;
//! * [`dense`] — fully-connected layer;
//! * [`conv`] — Conv2d (im2col-lowered), average pooling, global pooling;
//! * [`residual`] — residual blocks (the "ResLite" CNN backbone);
//! * [`model`] — sequential model with forward/backward over the arena;
//! * [`models`] — architecture presets matching the paper's per-dataset
//!   choices (MLP for Fashion-MNIST-like, ResLite for the CIFAR-likes);
//! * [`loss`] — cross-entropy, Focal, Balanced-Softmax (PriorCE), LDAM;
//! * [`opt`] — SGD-style parameter updates used by every FL algorithm;
//! * [`gradcheck`] — finite-difference validation utilities.

#![warn(missing_docs)]

pub mod conv;
pub mod dense;
pub mod gradcheck;
pub mod layer;
pub mod loss;
pub mod model;
pub mod models;
pub mod opt;
pub mod residual;
pub mod serialize;

pub use layer::{Layer, Relu};
pub use loss::{BalancedSoftmax, CrossEntropy, FocalLoss, LdamLoss, Loss};
pub use model::Model;
