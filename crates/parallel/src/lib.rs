//! Deterministic data-parallel utilities on a persistent worker pool.
//!
//! The FL engine trains the clients sampled in a round concurrently; each
//! client's work is independent (own RNG stream, own model copy), so the
//! natural shape is an indexed parallel map whose results are collected
//! **in index order** — making the subsequent server aggregation bitwise
//! deterministic regardless of thread count or scheduling.
//!
//! All primitives run on one process-wide pool of persistent workers
//! (see [`pool`]): submitting work is a queue push, not a per-call burst
//! of `thread::spawn`, and results land in **disjoint, index-owned
//! slots** — each index is claimed by exactly one participant, so no
//! lock guards the result vector.
//!
//! Two levels of parallelism share the budget without oversubscription:
//! [`ThreadBudget`] splits a round's threads between *client-level*
//! fan-out and *intra-client* kernels (row-parallel GEMM in
//! `fedwcm-tensor`), and [`with_intra_threads`] carries the inner share
//! to the kernels through a scoped thread-local.
//!
//! When the machine exposes a single core — or `FEDWCM_THREADS=1` —
//! everything runs inline on the caller thread, which also keeps stack
//! traces simple.

use std::cell::{Cell, UnsafeCell};
use std::num::NonZeroUsize;

mod pool;
pub mod shadow;
pub mod sync;

pub use pool::{pool_stats, PoolStats};

/// Resolve the worker count: the `FEDWCM_THREADS` env var if set (≥1),
/// otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    // lint:allow(determinism-env) FEDWCM_THREADS only selects the worker
    // count, and every primitive in this crate is bitwise deterministic
    // across thread counts, so this read cannot change simulation output.
    if let Ok(v) = std::env::var("FEDWCM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

thread_local! {
    /// Thread budget available to *intra-task* kernels on this thread.
    static INTRA_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// The thread budget kernels (GEMM, reductions) may use on the current
/// thread. Defaults to 1; scoped via [`with_intra_threads`].
pub fn intra_threads() -> usize {
    INTRA_THREADS.with(Cell::get)
}

/// Run `f` with the current thread's intra-task budget set to `threads`,
/// restoring the previous value afterwards (also on panic).
pub fn with_intra_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            INTRA_THREADS.with(|c| c.set(self.0));
        }
    }
    let prev = INTRA_THREADS.with(|c| c.replace(threads.max(1)));
    let _restore = Restore(prev);
    f()
}

/// Split of a total thread budget between task-level fan-out (`outer`)
/// and per-task kernels (`inner`), such that `outer * inner <= total` —
/// nested parallelism never oversubscribes the configured budget.
///
/// The split favours the outer level (independent clients scale better
/// than intra-GEMM rows) and gives the remainder to the inner level:
/// 8 threads over 3 clients → `outer = 3`, `inner = 2`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadBudget {
    outer: usize,
    inner: usize,
}

impl ThreadBudget {
    /// Split `total` threads across `outer_tasks` concurrent tasks.
    pub fn split(total: usize, outer_tasks: usize) -> Self {
        let total = total.max(1);
        let outer = total.min(outer_tasks.max(1));
        let inner = (total / outer).max(1);
        ThreadBudget { outer, inner }
    }

    /// Fully sequential budget (1 × 1).
    pub fn sequential() -> Self {
        ThreadBudget { outer: 1, inner: 1 }
    }

    /// Threads for task-level fan-out.
    pub fn outer(&self) -> usize {
        self.outer
    }

    /// Threads each task may use internally.
    pub fn inner(&self) -> usize {
        self.inner
    }
}

/// Run `f(i)` for every `i in 0..n` with up to `threads` participants
/// (the caller plus pool workers). No result collection; use this when
/// `f` writes through index-owned state of its own.
pub fn parallel_for_each<F>(n: usize, threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    pool::run_indexed(n, threads, &f);
}

/// A result slot owned by exactly one claimant (the participant that
/// claimed its index), hence safely shared without a lock.
struct Slot<T>(UnsafeCell<Option<T>>);

// SAFETY: `&Slot` is shared across participants, but the cell behind it
// is written through a **disjointness** discipline, not a lock: the
// pool's atomic claim counter hands index `i` to exactly one
// participant (`pool::run_items`, checked by `shadow::ClaimTable`), and
// that participant is the only writer of slot `i` for the job's
// lifetime (checked by `shadow::ShadowSlots::record_write`). The caller
// reads slots only after `pool::run_indexed` returns, i.e. after it
// observed `active == 0` under `done_lock` — the release/acquire edge
// that publishes every slot write (checked by `ShadowSlots::seal` /
// `assert_readable`). `T: Send` because the value crosses from the
// writing participant to the collecting caller.
unsafe impl<T: Send> Sync for Slot<T> {}

/// Apply `f` to every index in `0..n`, producing a `Vec` ordered by index.
///
/// Work is distributed dynamically (atomic claim counter), so
/// heterogeneous per-item costs — e.g. clients with different data
/// volumes in FedWCM-X — balance automatically. Each result is written
/// to a slot owned by its index's claimant: no lock, no contention, and
/// the collected order is always `0..n` regardless of thread count.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let slots: Vec<Slot<T>> = (0..n).map(|_| Slot(UnsafeCell::new(None))).collect();
    let slots_ref = &slots;
    let shadow = shadow::ShadowSlots::new(n);
    let shadow_ref = &shadow;
    pool::run_indexed(n, threads, &|i| {
        let value = f(i);
        if shadow::ENABLED {
            shadow_ref.record_write(i);
        }
        // SAFETY: the pool's claim counter hands index `i` to exactly one
        // participant, so for the job's lifetime this is the only `&mut`
        // derived from slot `i`'s cell (no other participant even forms
        // one — see `Slot`'s `Sync` impl). The write is published to the
        // collecting caller by the job's join. Both halves are checked
        // under `race_check`: `shadow_ref.record_write(i)` above panics
        // on a second writer before this store could alias.
        unsafe {
            *slots_ref[i].0.get() = Some(value);
        }
    });
    if shadow::ENABLED {
        shadow.seal();
    }

    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            if shadow::ENABLED {
                shadow.assert_readable(i);
            }
            slot.0.into_inner().unwrap_or_else(|| {
                // lint:allow(panic-freedom) unreachable unless the pool's
                // exactly-once claim invariant is broken; crashing loudly
                // beats silently returning corrupt results.
                panic!("parallel_map: result slot {i} was never written (claimant failed)")
            })
        })
        .collect()
}

/// Map then fold in **index order**: `fold(init, map(0), map(1), …)`.
///
/// The maps run in parallel; the fold runs on the caller thread over the
/// index-ordered results, so floating-point reductions are reproducible.
pub fn parallel_map_reduce<T, A, F, G>(n: usize, threads: usize, map: F, init: A, fold: G) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    G: FnMut(A, T) -> A,
{
    parallel_map(n, threads, map).into_iter().fold(init, fold)
}

/// Split `0..n` into at most `parts` contiguous chunks of near-equal size.
/// Returns `(start, end)` pairs; never returns empty chunks.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.max(1).min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// A disjoint mutable chunk handed to exactly one claimant.
struct Chunk<T>(*mut T, usize);

// SAFETY: a `Chunk` is a raw view of one `split_at_mut` region of the
// caller's buffer, so distinct chunks are pairwise-**disjoint** by
// construction (checked by `shadow::ShadowChunks::register`) and the
// region outlives the job: `parallel_over_rows` borrows the buffer for
// the whole call and `pool::run_indexed` joins before returning.
// Sending the chunk to a pool worker therefore moves exclusive access
// to a disjoint region, which is sound exactly when `T: Send`.
unsafe impl<T: Send> Send for Chunk<T> {}
// SAFETY: `&Chunk` is shared across participants, but the raw region
// behind it is turned into a `&mut` only by the **single claimant** of
// its index (`shadow::ShadowChunks::claim` panics on a second
// claimant), never concurrently — so shared access to the handle never
// becomes shared access to the elements. `T: Send` suffices for the
// same reason as the `Send` impl; no `&T` is ever shared cross-thread.
unsafe impl<T: Send> Sync for Chunk<T> {}

/// Partition `data` — a dense `rows × row_len` buffer — into at most
/// `threads` contiguous row chunks and run `f(row_start, row_end, chunk)`
/// on each in parallel.
///
/// Every chunk is a disjoint `&mut` region owned by one claimant, so
/// writes need no lock; because the chunking is by whole rows and `f`
/// computes rows independently, the result is **bitwise identical** to
/// running `f(0, rows, data)` sequentially.
pub fn parallel_over_rows<T, F>(data: &mut [T], row_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, usize, &mut [T]) + Sync,
{
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "data must be a whole number of rows"
    );
    let rows = data.len() / row_len;
    let ranges = chunk_ranges(rows, threads.max(1));
    if ranges.len() <= 1 {
        if rows > 0 {
            f(0, rows, data);
        }
        return;
    }

    let total = data.len();
    let mut shadow = shadow::ShadowChunks::new(total, ranges.len());
    let mut chunks: Vec<Chunk<T>> = Vec::with_capacity(ranges.len());
    let mut rest = data;
    for (ci, &(start, end)) in ranges.iter().enumerate() {
        let (head, tail) = rest.split_at_mut((end - start) * row_len);
        if shadow::ENABLED {
            shadow.register(ci, start * row_len, head.len());
        }
        chunks.push(Chunk(head.as_mut_ptr(), head.len()));
        rest = tail;
    }
    if shadow::ENABLED {
        shadow.assert_covering();
    }

    let chunks_ref = &chunks;
    let ranges_ref = &ranges;
    let shadow_ref = &shadow;
    parallel_for_each(ranges.len(), ranges.len(), |ci| {
        let Chunk(ptr, len) = chunks_ref[ci];
        if shadow::ENABLED {
            shadow_ref.claim(ci);
        }
        // SAFETY: chunk `ci` is one `split_at_mut` region — disjoint from
        // every other chunk and borrowed from a buffer that outlives this
        // call — and the pool hands index `ci` to exactly one participant,
        // so this is the only `&mut` ever materialised over the region.
        // Both halves are checked under `race_check`: `ShadowChunks`
        // verified bounds/disjointness/coverage at partition time, and
        // `shadow_ref.claim(ci)` above panics on a second claimant before
        // an aliasing `&mut` could exist.
        let chunk = unsafe { std::slice::from_raw_parts_mut(ptr, len) };
        let (start, end) = ranges_ref[ci];
        f(start, end, chunk);
    });
}

/// Parallel elementwise accumulation: `acc[i] += weight * parts[k][i]`
/// summed over `k` in index order within each disjoint range.
///
/// The output vector is chunked across threads; every thread owns a
/// disjoint slice, so there is no contention, and within a chunk the
/// addition order over `k` is fixed — deterministic result.
pub fn weighted_sum_into(acc: &mut [f32], parts: &[(&[f32], f32)], threads: usize) {
    for (p, _) in parts {
        assert_eq!(p.len(), acc.len(), "weighted_sum_into length mismatch");
    }
    if parts.is_empty() {
        return;
    }
    let n = acc.len();
    let threads = threads.max(1);
    if threads == 1 || n < 1 << 14 {
        for &(p, w) in parts {
            for (a, x) in acc.iter_mut().zip(p) {
                *a += w * x;
            }
        }
        return;
    }
    parallel_over_rows(acc, 1, threads, |start, _end, chunk| {
        for &(p, w) in parts {
            let src = &p[start..start + chunk.len()];
            for (a, x) in chunk.iter_mut().zip(src) {
                *a += w * x;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_reduce_deterministic_fp() {
        // Floating-point fold must be identical across thread counts.
        let gold = parallel_map_reduce(1000, 1, |i| (i as f32).sqrt() * 0.1, 0.0f32, |a, x| a + x);
        for threads in [2, 3, 8] {
            let v = parallel_map_reduce(
                1000,
                threads,
                |i| (i as f32).sqrt() * 0.1,
                0.0f32,
                |a, x| a + x,
            );
            assert_eq!(v.to_bits(), gold.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn repeated_jobs_reuse_the_pool() {
        // The pool is persistent: many small jobs must not accumulate
        // threads (regression guard for per-call spawning).
        for round in 0..200 {
            let out = parallel_map(8, 4, move |i| i + round);
            assert_eq!(out, (0..8).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_jobs_complete() {
        // Client-level fan-out with intra-client jobs underneath — the
        // shape every training round has after the budget split.
        let out = parallel_map(6, 3, |i| {
            let inner = parallel_map(5, 2, move |j| (i + 1) * (j + 1));
            inner.into_iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..6).map(|i| (i + 1) * 15).collect();
        assert_eq!(out, expect);
    }

    #[test]
    #[should_panic(expected = "boom at index 3")]
    fn worker_panic_propagates_to_caller() {
        parallel_map(16, 4, |i| {
            if i == 3 {
                panic!("boom at index 3");
            }
            i
        });
    }

    #[test]
    fn budget_split_never_oversubscribes() {
        for total in 1..=16 {
            for tasks in 1..=20 {
                let b = ThreadBudget::split(total, tasks);
                assert!(
                    b.outer() * b.inner() <= total.max(1),
                    "total={total} tasks={tasks}"
                );
                assert!(b.outer() >= 1 && b.inner() >= 1);
                assert!(b.outer() <= tasks.max(1));
            }
        }
        assert_eq!(
            ThreadBudget::split(8, 3),
            ThreadBudget { outer: 3, inner: 2 }
        );
        assert_eq!(
            ThreadBudget::split(4, 100),
            ThreadBudget { outer: 4, inner: 1 }
        );
        assert_eq!(
            ThreadBudget::sequential(),
            ThreadBudget { outer: 1, inner: 1 }
        );
    }

    #[test]
    fn intra_threads_scoped_and_restored() {
        assert_eq!(intra_threads(), 1);
        let inner = with_intra_threads(4, || {
            let nested = with_intra_threads(2, intra_threads);
            assert_eq!(nested, 2);
            intra_threads()
        });
        assert_eq!(inner, 4);
        assert_eq!(intra_threads(), 1);
    }

    #[test]
    fn parallel_over_rows_matches_sequential() {
        let rows = 37;
        let row_len = 13;
        let mut gold = vec![0.0f32; rows * row_len];
        let fill = |r0: usize, _r1: usize, chunk: &mut [f32]| {
            for (off, x) in chunk.iter_mut().enumerate() {
                let r = r0 + off / row_len;
                let c = off % row_len;
                *x = (r * 31 + c) as f32 * 0.25;
            }
        };
        fill(0, rows, &mut gold);
        for threads in [1, 2, 3, 8, 64] {
            let mut out = vec![0.0f32; rows * row_len];
            parallel_over_rows(&mut out, row_len, threads, fill);
            assert_eq!(out, gold, "threads={threads}");
        }
    }

    #[test]
    fn parallel_over_rows_empty_is_noop() {
        let mut empty: Vec<f32> = Vec::new();
        parallel_over_rows(&mut empty, 4, 3, |_, _, _| panic!("no rows to visit"));
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 17, 100] {
            for parts in [1usize, 2, 3, 7, 200] {
                let ranges = chunk_ranges(n, parts);
                let total: usize = ranges.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                // Contiguous and non-empty.
                let mut prev = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, prev);
                    assert!(e > s);
                    prev = e;
                }
                // Balanced within 1.
                if !ranges.is_empty() {
                    let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
                    let min = sizes.iter().min().unwrap();
                    let max = sizes.iter().max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn weighted_sum_matches_sequential() {
        let n = 40_000;
        let p1: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let p2: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
        // Reference: same part-by-part accumulation order the kernel defines.
        let mut gold = vec![0.5f32; n];
        for (a, x) in gold.iter_mut().zip(&p1) {
            *a += 0.3 * x;
        }
        for (a, y) in gold.iter_mut().zip(&p2) {
            *a += 0.7 * y;
        }
        for threads in [1, 2, 4] {
            let mut acc = vec![0.5f32; n];
            weighted_sum_into(&mut acc, &[(&p1, 0.3), (&p2, 0.7)], threads);
            for (a, g) in acc.iter().zip(&gold) {
                assert_eq!(a.to_bits(), g.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn weighted_sum_empty_parts_is_noop() {
        let mut acc = vec![1.0f32; 10];
        weighted_sum_into(&mut acc, &[], 4);
        assert!(acc.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn dynamic_scheduling_handles_skewed_costs() {
        // Items with wildly different costs still produce ordered output.
        let out = parallel_map(50, 4, |i| {
            if i % 10 == 0 {
                // Simulate a heavy client.
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_add(k.wrapping_mul(k));
                }
                (i, acc & 1)
            } else {
                (i, 0)
            }
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn default_threads_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
