//! Parameter-update primitives shared by every FL algorithm.
//!
//! FL methods differ in *what direction* they step along, not in the
//! stepping mechanics, so this module exposes small composable pieces: a
//! plain SGD step, weight decay, and the client-momentum blend of
//! Eq. (2)/(6).

use fedwcm_tensor::ops;

/// `params -= lr * direction`.
#[inline]
pub fn sgd_step(params: &mut [f32], direction: &[f32], lr: f32) {
    ops::axpy(-lr, direction, params);
}

/// In-place decoupled weight decay: `params *= (1 - lr*wd)`.
#[inline]
pub fn weight_decay(params: &mut [f32], lr: f32, wd: f32) {
    if wd != 0.0 {
        ops::scal(1.0 - lr * wd, params);
    }
}

/// Client-momentum direction of FedCM/FedWCM:
/// `v = alpha * grad + (1 - alpha) * global_momentum` written into `v`.
#[inline]
pub fn momentum_blend(v: &mut [f32], grad: &[f32], global_momentum: &[f32], alpha: f32) {
    assert!(
        (0.0..=1.0).contains(&alpha),
        "momentum value must be in [0,1], got {alpha}"
    );
    assert_eq!(v.len(), grad.len());
    assert_eq!(v.len(), global_momentum.len());
    for ((vi, gi), mi) in v.iter_mut().zip(grad).zip(global_momentum) {
        *vi = alpha * gi + (1.0 - alpha) * mi;
    }
}

/// Classic heavy-ball server momentum: `buf = beta*buf + delta`, returning
/// a reference to the updated buffer (FedAvgM / SlowMo-style).
#[inline]
pub fn server_momentum(buf: &mut [f32], delta: &[f32], beta: f32) {
    assert_eq!(buf.len(), delta.len());
    for (b, d) in buf.iter_mut().zip(delta) {
        *b = beta * *b + d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut p = vec![1.0, 2.0];
        sgd_step(&mut p, &[0.5, -0.5], 0.1);
        assert!((p[0] - 0.95).abs() < 1e-6);
        assert!((p[1] - 2.05).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks() {
        let mut p = vec![2.0];
        weight_decay(&mut p, 0.1, 0.5);
        assert!((p[0] - 2.0 * 0.95).abs() < 1e-6);
        weight_decay(&mut p, 0.1, 0.0); // no-op
        assert!((p[0] - 2.0 * 0.95).abs() < 1e-6);
    }

    #[test]
    fn momentum_blend_endpoints() {
        let g = [1.0, 2.0];
        let m = [10.0, 20.0];
        let mut v = [0.0; 2];
        momentum_blend(&mut v, &g, &m, 1.0);
        assert_eq!(v, g);
        momentum_blend(&mut v, &g, &m, 0.0);
        assert_eq!(v, m);
        momentum_blend(&mut v, &g, &m, 0.25);
        assert!((v[0] - (0.25 + 7.5)).abs() < 1e-6);
    }

    #[test]
    fn server_momentum_accumulates() {
        let mut buf = vec![0.0, 0.0];
        server_momentum(&mut buf, &[1.0, 2.0], 0.9);
        server_momentum(&mut buf, &[1.0, 2.0], 0.9);
        assert!((buf[0] - 1.9).abs() < 1e-6);
        assert!((buf[1] - 3.8).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn momentum_blend_rejects_bad_alpha() {
        let mut v = [0.0];
        momentum_blend(&mut v, &[1.0], &[1.0], 1.5);
    }
}
