//! `fedwcm-lint` — zero-dependency static analysis for the FedWCM
//! workspace.
//!
//! PR 1 made the repo's headline guarantee *bitwise determinism across
//! thread counts* and introduced the workspace's only `unsafe` code
//! (disjoint-slot writes in `fedwcm-parallel`). Those invariants used
//! to live in comments and differential tests; this crate turns them
//! into machine-checked gates that run in CI on every change:
//!
//! | rule | enforces |
//! |------|----------|
//! | `unsafe-safety` | every `unsafe` is immediately preceded by `// SAFETY:` |
//! | `determinism-collections` | no `HashMap`/`HashSet` in library crates |
//! | `determinism-time` | no `Instant::now`/`SystemTime::now` in library crates |
//! | `determinism-env` | no `env::var` outside the blessed config module |
//! | `determinism-threads` | no `available_parallelism` outside `fedwcm-parallel` |
//! | `panic-freedom` | no `unwrap`/`expect`/`panic!`/`unimplemented!`/`todo!` in non-test library code |
//! | `doc-coverage` | public items in `tensor`/`fl`/`core`/`parallel` carry rustdoc |
//!
//! Run it locally with `cargo run -p fedwcm-lint`; see the binary's
//! `--help` for rule toggles. Findings are suppressed — never silenced —
//! with scoped `// lint:allow(<rule>) <reason>` markers; a marker
//! without a reason is itself a hard error.
//!
//! The crate has **zero external dependencies** (this build environment
//! has no reachable crates.io registry) and hand-rolls the lexer in
//! [`lexer`]; rules are token-sequence patterns over its output, so
//! they never fire inside comments, strings, raw strings, or char
//! literals.

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{
    lint_file, lint_workspace, Diagnostic, FileCtx, LintConfig, ALL_RULES, DOC_CRATES, LIB_CRATES,
    MARKER_RULE,
};
