//! Long-tail class profiles parameterised by the imbalance factor.
//!
//! The paper defines `IF = n_1 / n_C` **with `n_1` the most frequent and
//! `n_C` the least frequent class** and uses `IF ≤ 1` (smaller IF = longer
//! tail, e.g. IF = 0.01 means the rarest class has 1% of the head class's
//! samples). Following the standard exponential profile (Cao et al.), the
//! count of class `c` (0-indexed) is `n_c = n_head · IF^{c/(C−1)}`.

/// Per-class sample counts for a long-tail profile.
///
/// * `classes` — number of classes `C`;
/// * `head_count` — samples in the most frequent class;
/// * `imbalance_factor` — the paper's `IF ∈ (0, 1]`; `IF = 1` is balanced.
///
/// Every class receives at least one sample.
pub fn longtail_counts(classes: usize, head_count: usize, imbalance_factor: f64) -> Vec<usize> {
    assert!(classes >= 1, "need at least one class");
    assert!(head_count >= 1, "head class needs samples");
    assert!(
        imbalance_factor > 0.0 && imbalance_factor <= 1.0,
        "IF must be in (0, 1], got {imbalance_factor}"
    );
    if classes == 1 {
        return vec![head_count];
    }
    (0..classes)
        .map(|c| {
            let exp = c as f64 / (classes - 1) as f64;
            let n = head_count as f64 * imbalance_factor.powf(exp);
            (n.round() as usize).max(1)
        })
        .collect()
}

/// Scale a long-tail profile so the total approximately equals `total`
/// (useful to keep dataset sizes comparable across IF settings).
pub fn longtail_counts_with_total(
    classes: usize,
    total: usize,
    imbalance_factor: f64,
) -> Vec<usize> {
    assert!(total >= classes, "need at least one sample per class");
    // First pass with a nominal head, then rescale.
    let nominal = longtail_counts(classes, 1_000_000, imbalance_factor);
    let nominal_total: f64 = nominal.iter().map(|&n| n as f64).sum();
    let scale = total as f64 / nominal_total;
    let mut counts: Vec<usize> = nominal
        .iter()
        .map(|&n| ((n as f64 * scale).round() as usize).max(1))
        .collect();
    // Fix rounding drift on the head class, keeping every class ≥ 1.
    let current: usize = counts.iter().sum();
    if current > total {
        let mut excess = current - total;
        for c in counts.iter_mut() {
            let take = excess.min(c.saturating_sub(1));
            *c -= take;
            excess -= take;
            if excess == 0 {
                break;
            }
        }
    } else {
        counts[0] += total - current;
    }
    counts
}

/// Empirical imbalance factor of a count vector: `min / max`.
pub fn measured_if(counts: &[usize]) -> f64 {
    let max = counts.iter().max().copied().unwrap_or(0);
    let min = counts.iter().min().copied().unwrap_or(0);
    if max == 0 {
        return 1.0;
    }
    min as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_when_if_is_one() {
        let c = longtail_counts(10, 500, 1.0);
        assert!(c.iter().all(|&n| n == 500));
    }

    #[test]
    fn monotone_decreasing() {
        let c = longtail_counts(10, 1000, 0.01);
        assert!(c.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(c[0], 1000);
        assert_eq!(c[9], 10); // 1000 * 0.01
    }

    #[test]
    fn tail_ratio_matches_if() {
        for target in [0.5, 0.1, 0.05, 0.01] {
            let c = longtail_counts(10, 10_000, target);
            let ratio = c[9] as f64 / c[0] as f64;
            assert!(
                (ratio - target).abs() / target < 0.05,
                "IF {target}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn all_classes_nonempty_even_extreme() {
        let c = longtail_counts(100, 50, 0.01);
        assert!(c.iter().all(|&n| n >= 1));
    }

    #[test]
    fn total_scaling_hits_target() {
        for inf in [1.0, 0.1, 0.01] {
            let c = longtail_counts_with_total(10, 5_000, inf);
            let total: usize = c.iter().sum();
            assert_eq!(total, 5_000, "IF {inf}");
            assert!(c.iter().all(|&n| n >= 1));
        }
    }

    #[test]
    fn measured_if_roundtrip() {
        let c = longtail_counts(10, 1000, 0.1);
        let m = measured_if(&c);
        assert!((m - 0.1).abs() < 0.01, "measured {m}");
        assert_eq!(measured_if(&[]), 1.0);
    }

    #[test]
    #[should_panic]
    fn if_above_one_rejected() {
        let _ = longtail_counts(10, 100, 2.0);
    }
}
