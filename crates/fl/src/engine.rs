//! The simulation round loop: sampling, parallel local training, fault
//! injection, straggler-aware aggregation, and checkpoint/resume.

use crate::algorithm::{FederatedAlgorithm, RoundInput};
use crate::cadence::Cadence;
use crate::checkpoint::{CheckpointError, ServerCheckpoint};
use crate::client::{ClientEnv, ClientUpdate, ModelFactory};
use crate::config::FlConfig;
use crate::metrics::{History, RoundFaults, RoundRecord};
use crate::wire;
use fedwcm_data::dataset::{ClientView, Dataset};
use fedwcm_faults::{corrupt_delta, staleness_discount, FaultKind, FaultPlan};
use fedwcm_nn::model::Model;
use fedwcm_parallel::{chunk_ranges, parallel_map, with_intra_threads, ThreadBudget};
use fedwcm_stats::rng::{Rng, Xoshiro256pp};
use fedwcm_tensor::invariants;
use fedwcm_trace::{local, names, MetricsRegistry, SpanBuffer, Tracer, Value};
use fedwcm_transport::{AttemptOutcome, Courier, NetCounters, NetPlan, RetryPolicy, Verdict};
use std::sync::Arc;

/// Stream label for per-round client sampling.
const STREAM_SAMPLE: u64 = 0x5A3B;

/// Evaluation batch size (memory bound, not a hyper-parameter).
const EVAL_BATCH: usize = 256;

/// Tick-delta buckets for the `fl.phase.*` / `fl.round_ticks`
/// histograms. Wide on purpose: a [`fedwcm_trace::LogicalClock`] yields
/// a handful of ticks per phase, a [`fedwcm_trace::WallClock`] yields
/// nanoseconds.
const PHASE_BOUNDS: [f64; 10] = [1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10];

/// Buckets for the per-round global-update-norm histogram.
const UPDATE_NORM_BOUNDS: [f64; 8] = [0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 100.0];

/// Buckets for the α-trajectory histogram (α ∈ (0, 1]).
const ALPHA_BOUNDS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Observability attachments for a [`Simulation`]: both default to off,
/// and an unattached simulation behaves (and performs) exactly as
/// before.
///
/// The tracer's clock is only ever ticked from the engine's serialized
/// round loop; client-local work records into per-task
/// [`SpanBuffer`]s that the engine replays in sampled-index order, so
/// traces are byte-identical across thread counts under a
/// [`fedwcm_trace::LogicalClock`].
#[derive(Default)]
pub struct Observability {
    /// Structured span/event stream (disabled tracer by default).
    pub tracer: Tracer,
    /// Metrics registry; its snapshot is merged into
    /// [`History::metrics`] at the end of every drive and restored on
    /// checkpoint resume.
    pub metrics: Option<Arc<MetricsRegistry>>,
}

/// The client ids sampled in round `round` under `cfg` (a pure function
/// of `(cfg.seed, round)`, so sampling, fault accounting, and
/// communication reports all agree without sharing state).
pub fn sampled_clients_for(cfg: &FlConfig, round: usize) -> Vec<usize> {
    let mut rng = Xoshiro256pp::stream(cfg.seed, &[STREAM_SAMPLE, round as u64]);
    rng.sample_indices(cfg.clients, cfg.sampled_per_round())
}

/// A late upload waiting in the server's straggler buffer.
#[derive(Clone, Debug)]
pub(crate) struct PendingUpdate {
    /// Round at which the buffered upload is merged.
    pub(crate) arrival_round: usize,
    /// Rounds of lateness (the staleness discount is `1/(1+staleness)`).
    pub(crate) staleness: usize,
    /// True when the lateness came from a transport-level delay (the
    /// network plan) rather than a client-level straggler fault. Carried
    /// through checkpoints so a resumed run replays the same trace.
    pub(crate) via_net: bool,
    /// The buffered client update.
    pub(crate) update: ClientUpdate,
}

/// An upload the server received this round: the **undiscounted**
/// client delta plus how many rounds late it arrived. The staleness
/// discount is applied by the cadence at *application* time — never at
/// receive time — so a re-queued or still-buffered upload keeps its
/// original signal.
#[derive(Clone, Debug)]
pub(crate) struct ReceivedUpdate {
    /// Rounds since the global model this delta was trained against
    /// (0 for a fresh upload from this round's cohort).
    pub(crate) staleness: usize,
    /// True once the upload has crossed the wire transport (delivered
    /// or delayed by the network plan). An upload transits the network
    /// exactly once; re-queued entries keep the flag.
    pub(crate) via_net: bool,
    /// The upload, delta undiscounted.
    pub(crate) update: ClientUpdate,
}

/// A healthy upload held in the server's aggregation buffer (buffered-K
/// and async cadences). First-class server state: `FWCK` v3 checkpoints
/// serialize it, so a resumed run flushes the exact same batches.
#[derive(Clone, Debug)]
pub(crate) struct BufferedUpdate {
    /// Round whose global model this delta was trained against; the
    /// discount at application in round `r` is
    /// `staleness_discount(r - base_round)`.
    pub(crate) base_round: usize,
    /// The buffered upload, delta undiscounted.
    pub(crate) update: ClientUpdate,
}

/// Mutable server-side state of a run: everything a checkpoint captures
/// besides the algorithm's own internals.
pub(crate) struct RunState {
    /// Next round to execute.
    pub(crate) next_round: usize,
    /// Current global parameters.
    pub(crate) global: Vec<f32>,
    /// Records of the rounds executed so far.
    pub(crate) history: History,
    /// Straggler buffer (insertion order — deterministic).
    pub(crate) pending: Vec<PendingUpdate>,
    /// Aggregation buffer of the buffered-K and async cadences
    /// (insertion order — deterministic; always empty under sync).
    pub(crate) agg_buffer: Vec<BufferedUpdate>,
    /// Per-client copy of the last upload the server received; maintained
    /// only when the fault plan can schedule replays.
    pub(crate) replay_cache: Vec<Option<Vec<f32>>>,
    /// Transport logical-clock position (0 when no network plan is in
    /// effect). Checkpointed so a kill-mid-run resume continues the
    /// transport tick sequence exactly where the interrupted run left
    /// off instead of restarting it at zero.
    pub(crate) net_ticks: u64,
}

/// What a cadence did with this round's received uploads; the common
/// round tail turns it into a [`RoundRecord`].
struct CadenceOutcome {
    /// Mean local-training loss over the uploads applied (sync
    /// aggregate / buffer flushes / async applies) or — on a skipped
    /// sync round — over the uploads received; `None` when neither.
    train_loss: Option<f64>,
    /// L2 norm of the round's net global-parameter movement.
    update_norm: f64,
    /// α reported by the algorithm's last aggregation this round.
    alpha: Option<f64>,
    /// Aggregation events applied this round.
    aggregations: u32,
}

/// Mean of `avg_loss` over `updates`, accumulated in `f64` — the one
/// loss-averaging path shared by every cadence and branch, so reports
/// and checkpoints agree bit for bit regardless of which branch
/// produced them.
pub(crate) fn mean_loss_f64<'u>(updates: impl Iterator<Item = &'u ClientUpdate>) -> Option<f64> {
    let mut sum = 0.0f64;
    let mut n = 0usize;
    for u in updates {
        sum += f64::from(u.avg_loss);
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

/// L2 norm of the parameter movement from `before` to `after`,
/// accumulated in `f64` in index order (bitwise thread-invariant).
fn update_norm_between(before: &[f32], after: &[f32]) -> f64 {
    before
        .iter()
        .zip(after)
        .map(|(a, b)| {
            let d = (a - b) as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Consume a received upload, applying its staleness discount to the
/// delta (identity for fresh uploads). Algorithm payloads (`extra`)
/// ride along undiscounted — they are not step directions.
fn into_discounted(r: ReceivedUpdate) -> ClientUpdate {
    let mut u = r.update;
    if r.staleness > 0 {
        let discount = staleness_discount(r.staleness);
        for d in u.delta.iter_mut() {
            *d *= discount;
        }
    }
    u
}

/// A configured federated simulation: data, partition views, model
/// factory, hyper-parameters, and (optionally) a fault-injection plan.
/// Run any [`FederatedAlgorithm`] on it.
pub struct Simulation<'a> {
    /// Simulation hyper-parameters.
    pub cfg: FlConfig,
    /// Master training dataset.
    pub train: &'a Dataset,
    /// Held-out (balanced) test dataset.
    pub test: &'a Dataset,
    /// Per-client data views, indexed by client id.
    pub views: Vec<ClientView>,
    /// Model constructor (same architecture + init for every use).
    pub factory: Box<ModelFactory>,
    /// Deterministic fault-injection plan applied between local training
    /// and aggregation. `None` (and any all-zero-rate plan) reproduces
    /// the fault-free trajectory bit for bit: the plan draws from its own
    /// RNG streams and never touches sampling or training streams.
    pub fault_plan: Option<FaultPlan>,
    /// Frame-level network fault plan. When set (and not all-zero), the
    /// client-upload path is routed through the wire transport: uploads
    /// are framed, checksummed, and delivered over a lossy deterministic
    /// link with retries; exhausted retry budgets degrade into the
    /// dropout machinery and transport delays into the straggler
    /// machinery. `None` and any zero-rate plan reproduce the
    /// direct-call trajectory bit for bit.
    pub net_plan: Option<NetPlan>,
    /// Retry policy the transport courier runs under (deadlines,
    /// backoff, attempt budget). Ignored unless a network plan is in
    /// effect.
    pub retry_policy: RetryPolicy,
    /// Tracing and metrics attachments (off by default).
    pub obs: Observability,
}

impl<'a> Simulation<'a> {
    /// Build a simulation; validates configuration against the partition.
    pub fn new(
        cfg: FlConfig,
        train: &'a Dataset,
        test: &'a Dataset,
        views: Vec<ClientView>,
        factory: Box<ModelFactory>,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            views.len(),
            cfg.clients,
            "view count must equal cfg.clients"
        );
        assert!(
            views.iter().all(|v| !v.is_empty()),
            "every client needs at least one sample"
        );
        Simulation {
            cfg,
            train,
            test,
            views,
            factory,
            fault_plan: None,
            net_plan: None,
            retry_policy: RetryPolicy::default(),
            obs: Observability::default(),
        }
    }

    /// Attach a fault-injection plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attach a frame-level network fault plan (builder style). A
    /// zero-rate plan is a bitwise no-op: the transport path is skipped
    /// entirely, exactly as if no plan were attached.
    pub fn with_net_plan(mut self, plan: NetPlan) -> Self {
        self.net_plan = Some(plan);
        self
    }

    /// Override the transport retry policy (builder style); validated
    /// when the courier is constructed.
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = policy;
        self
    }

    /// The network plan actually in effect: `None` when absent *or*
    /// all-zero, so both cases skip the transport path identically.
    fn effective_net_plan(&self) -> Option<&NetPlan> {
        self.net_plan.as_ref().filter(|p| !p.is_zero())
    }

    /// Attach a tracer (builder style). Pair a
    /// [`fedwcm_trace::LogicalClock`] with any sink for deterministic
    /// traces, or a [`fedwcm_trace::WallClock`] in binaries for real
    /// timings.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.obs.tracer = tracer;
        self
    }

    /// Attach a metrics registry (builder style); its snapshot lands in
    /// [`History::metrics`].
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.obs.metrics = Some(registry);
        self
    }

    /// The client ids sampled in round `r` (deterministic per seed).
    pub fn sampled_clients(&self, round: usize) -> Vec<usize> {
        sampled_clients_for(&self.cfg, round)
    }

    /// Run the full federated loop for `cfg.rounds` rounds.
    pub fn run(&self, algo: &mut dyn FederatedAlgorithm) -> History {
        self.run_with_observer(algo, |_, _| {})
    }

    /// Like [`Simulation::run`], but invokes `observer(round, global)` with
    /// the post-aggregation global parameters after every round — the hook
    /// the neuron-concentration analysis (Figs. 4, 13–17) uses.
    pub fn run_with_observer(
        &self,
        algo: &mut dyn FederatedAlgorithm,
        mut observer: impl FnMut(usize, &[f32]),
    ) -> History {
        let mut state = self.fresh_state(algo);
        self.drive(algo, &mut state, self.cfg.rounds, &mut observer);
        state.history
    }

    /// Run rounds `0..stop_round` from a fresh start and capture a
    /// checkpoint of the resulting server state. Fails if the algorithm
    /// does not implement state capture ([`FederatedAlgorithm::save_state`]).
    pub fn run_until(
        &self,
        algo: &mut dyn FederatedAlgorithm,
        stop_round: usize,
    ) -> Result<ServerCheckpoint, CheckpointError> {
        let mut state = self.fresh_state(algo);
        let stop = stop_round.min(self.cfg.rounds);
        self.drive(algo, &mut state, stop, &mut |_, _| {});
        let _g = self.obs.tracer.span(
            names::CHECKPOINT,
            vec![("round", Value::U64(state.next_round as u64))],
        );
        ServerCheckpoint::capture(self, algo, &state)
    }

    /// Resume a run from a checkpoint captured by
    /// [`Simulation::run_until`] (possibly in a different process — the
    /// checkpoint round-trips through bytes) and drive it to
    /// `cfg.rounds`. The returned history covers the **whole** run,
    /// checkpointed rounds included, and is bitwise identical to an
    /// uninterrupted run's.
    pub fn resume(
        &self,
        algo: &mut dyn FederatedAlgorithm,
        ckpt: &ServerCheckpoint,
    ) -> Result<History, CheckpointError> {
        self.resume_with_observer(algo, ckpt, |_, _| {})
    }

    /// [`Simulation::resume`] with a per-round observer over the resumed
    /// rounds.
    pub fn resume_with_observer(
        &self,
        algo: &mut dyn FederatedAlgorithm,
        ckpt: &ServerCheckpoint,
        mut observer: impl FnMut(usize, &[f32]),
    ) -> Result<History, CheckpointError> {
        let mut state = ckpt.restore(self, algo)?;
        self.drive(algo, &mut state, self.cfg.rounds, &mut observer);
        Ok(state.history)
    }

    /// Fresh pre-round-0 server state.
    fn fresh_state(&self, algo: &dyn FederatedAlgorithm) -> RunState {
        let model = (self.factory)();
        let replay_cache = if self.fault_plan.as_ref().is_some_and(|p| p.has_replay()) {
            vec![None; self.cfg.clients]
        } else {
            Vec::new()
        };
        RunState {
            next_round: 0,
            global: model.params().to_vec(),
            history: History::new(algo.name()),
            pending: Vec::new(),
            agg_buffer: Vec::new(),
            replay_cache,
            net_ticks: 0,
        }
    }

    /// Execute rounds `state.next_round..until_round`, mutating `state`.
    fn drive(
        &self,
        algo: &mut dyn FederatedAlgorithm,
        state: &mut RunState,
        until_round: usize,
        observer: &mut dyn FnMut(usize, &[f32]),
    ) {
        let mut model = (self.factory)();
        let threads = self.cfg.resolved_threads();
        let tracer = self.obs.tracer.clone();
        let registry = self.obs.metrics.as_deref();

        while state.next_round < until_round {
            let round = state.next_round;
            let sampled = self.sampled_clients(round);
            let round_t0 = tracer.now();
            let round_span = tracer.span(
                names::ROUND,
                vec![
                    ("round", Value::U64(round as u64)),
                    ("sampled", Value::U64(sampled.len() as u64)),
                ],
            );

            // Parallel local training: results are collected in sampled-id
            // order, so aggregation is deterministic across thread counts.
            // The round's thread budget is split between client fan-out and
            // intra-client GEMM parallelism so total concurrency never
            // exceeds `threads`.
            let budget = ThreadBudget::split(threads, sampled.len());
            let algo_ref: &dyn FederatedAlgorithm = algo;
            let global_ref = &state.global;
            let traced = tracer.enabled();
            let tracer_ref = &tracer;
            let local_t0 = tracer.now();
            let results = parallel_map(sampled.len(), budget.outer(), |i| {
                let id = sampled[i];
                let env = ClientEnv {
                    id,
                    round,
                    dataset: self.train,
                    view: &self.views[id],
                    cfg: &self.cfg,
                    factory: self.factory.as_ref(),
                };
                if traced {
                    // Client-local spans go into a per-task buffer with a
                    // forked clock; the main clock stays untouched by
                    // workers, and the buffers are replayed in sampled
                    // order below — so the trace stream is identical at
                    // every thread count.
                    let buf = Arc::new(SpanBuffer::new(tracer_ref.fork_clock()));
                    let update = local::with_buffer(&buf, || {
                        with_intra_threads(budget.inner(), || {
                            algo_ref.local_train(&env, global_ref)
                        })
                    });
                    let events = buf.drain();
                    (update, events)
                } else {
                    let update = with_intra_threads(budget.inner(), || {
                        algo_ref.local_train(&env, global_ref)
                    });
                    (update, Vec::new())
                }
            });
            let mut updates = Vec::with_capacity(results.len());
            for (update, events) in results {
                if traced {
                    let _g = tracer.span(
                        names::CLIENT_UPDATE,
                        vec![
                            ("round", Value::U64(round as u64)),
                            ("client", Value::U64(update.client as u64)),
                            ("batches", Value::U64(update.num_batches as u64)),
                            ("loss", Value::F64(f64::from(update.avg_loss))),
                        ],
                    );
                    tracer.replay(events);
                }
                updates.push(update);
            }
            self.observe_phase(registry, names::FL_PHASE_LOCAL_TRAIN, local_t0);
            if let Some(reg) = registry {
                let up: u64 = updates
                    .iter()
                    .map(|u| 4 * (u.delta.len() + u.extra.as_ref().map_or(0, Vec::len)) as u64)
                    .sum();
                reg.counter_add(names::FL_BYTES_UP, up);
                reg.counter_add(
                    names::FL_BYTES_DOWN,
                    4 * (sampled.len() * state.global.len()) as u64,
                );
            }

            // Loud mode: with `debug_invariants`, a malformed or poisoned
            // update panics right here — at the client-emission boundary,
            // naming the round and client — instead of being silently
            // dropped by the containment filter below. Injected faults are
            // applied *after* this check: they model transport/storage
            // damage to a delta that was healthy when the client emitted
            // it, so chaos runs stay panic-free under debug_invariants
            // while still exercising the containment filter.
            if invariants::ENABLED {
                for u in &updates {
                    invariants::check_len(u.delta.len(), state.global.len(), || {
                        format!(
                            "delta from client {} entering server aggregation (round {round})",
                            u.client
                        )
                    });
                    invariants::check_finite(&u.delta, || {
                        format!(
                            "delta from client {} entering server aggregation (round {round})",
                            u.client
                        )
                    });
                }
            }

            // Fault hook: apply the plan's scheduled faults to the
            // collected uploads, buffer stragglers, and merge late
            // arrivals due this round. Received uploads carry their
            // staleness; deltas stay undiscounted until a cadence
            // applies them.
            let mut faults = RoundFaults::default();
            let mut received: Vec<ReceivedUpdate> = if let Some(plan) = &self.fault_plan {
                let _g = tracer.span(
                    names::FAULT_INJECT,
                    vec![("round", Value::U64(round as u64))],
                );
                self.apply_faults(plan, round, updates, state, &mut faults, &tracer)
            } else if self.effective_net_plan().is_some() {
                // No client-level faults, but the transport can have
                // parked delayed deliveries: merge the ones due this
                // round, in the same client-id order apply_faults uses.
                let mut received: Vec<ReceivedUpdate> = updates
                    .into_iter()
                    .map(|u| ReceivedUpdate {
                        staleness: 0,
                        via_net: false,
                        update: u,
                    })
                    .collect();
                self.merge_due_pending(round, &mut received, state, &mut faults, &tracer);
                received.sort_by_key(|r| r.update.client);
                received
            } else {
                updates
                    .into_iter()
                    .map(|u| ReceivedUpdate {
                        staleness: 0,
                        via_net: false,
                        update: u,
                    })
                    .collect()
            };
            if let Some(reg) = registry {
                reg.counter_add(names::FL_FAULTS_DROPOUTS, u64::from(faults.dropouts));
                reg.counter_add(names::FL_FAULTS_STRAGGLERS, u64::from(faults.stragglers));
                reg.counter_add(names::FL_FAULTS_LATE_MERGED, u64::from(faults.late_merged));
                reg.counter_add(names::FL_FAULTS_CORRUPTIONS, u64::from(faults.corruptions));
                reg.counter_add(names::FL_FAULTS_REPLAYS, u64::from(faults.replays));
            }

            // Transport hook: route this round's fresh uploads through
            // the wire. Skipped entirely (a bitwise no-op) without an
            // effective network plan; with one, checksum-rejected frames
            // are Nacked and retried, exhausted budgets fall through to
            // the dropout machinery, and delays park the upload in the
            // straggler buffer. The `fl.net.*` counters are only touched
            // when the transport actually ran, so zero-plan metric
            // snapshots stay identical to pre-transport runs.
            let mut net = NetCounters::default();
            if let Some(net_plan) = self.effective_net_plan() {
                received =
                    self.deliver_received(net_plan, round, received, state, &mut net, &tracer);
                if let Some(reg) = registry {
                    reg.counter_add(names::FL_NET_FRAMES_SENT, net.frames_sent);
                    reg.counter_add(names::FL_NET_RETRIES, net.retries);
                    reg.counter_add(names::FL_NET_REJECTED_FRAMES, net.rejected_frames);
                    reg.counter_add(names::FL_NET_DUPLICATES, net.duplicates);
                    reg.counter_add(names::FL_NET_DELAYED, net.delayed);
                    reg.counter_add(names::FL_NET_DEGRADED, net.degraded);
                    reg.counter_add(names::FL_NET_RETRANSMITTED_BYTES, net.retransmitted_bytes);
                    reg.counter_add(names::FL_NET_REJECTED_BYTES, net.rejected_bytes);
                }
            }

            // Failure containment: a delta that arrived non-finite (or
            // finite but astronomic — it would poison the global model on
            // the very next step) is dropped; if the whole round is
            // poisoned, skip the aggregation entirely. The norm gate
            // judges the client's original (undiscounted) delta.
            let before_filter = received.len();
            received.retain(|r| {
                r.update.avg_loss.is_finite()
                    && r.update.delta.iter().all(|d| d.is_finite())
                    && fedwcm_tensor::ops::norm(&r.update.delta) < self.cfg.max_update_norm
            });
            let dropped_updates = before_filter - received.len();
            if let Some(reg) = registry {
                reg.counter_add(names::FL_UPDATES_RECEIVED, before_filter as u64);
                reg.counter_add(names::FL_UPDATES_DROPPED, dropped_updates as u64);
            }

            // Evaluation cadence is a property of the round number alone:
            // an empty (fully-dropped) round still evaluates the unchanged
            // global model on eval boundaries, so accuracy series keep
            // their cadence regardless of failures.
            let eval_now =
                (round + 1).is_multiple_of(self.cfg.eval_every) || round + 1 == self.cfg.rounds;

            // Hand the round's received uploads to the configured
            // cadence; everything after this point is cadence-agnostic.
            let outcome = match self.cfg.cadence {
                Cadence::Sync => self.sync_round(
                    algo,
                    state,
                    round,
                    sampled.len(),
                    received,
                    &mut faults,
                    registry,
                    &tracer,
                ),
                Cadence::BufferedK { k } => {
                    self.buffered_round(algo, state, round, k, received, registry, &tracer)
                }
                Cadence::Async { max_in_flight } => self.async_round(
                    algo,
                    state,
                    round,
                    max_in_flight,
                    received,
                    registry,
                    &tracer,
                ),
            };

            let test_acc = eval_now.then(|| {
                self.evaluate_phase(&mut model, &state.global, round, threads, registry, &tracer)
            });
            state.history.records.push(RoundRecord {
                round,
                train_loss: outcome.train_loss,
                update_norm: outcome.update_norm,
                test_acc,
                alpha: outcome.alpha,
                aggregations: outcome.aggregations,
                dropped_updates,
                faults,
                net,
            });
            if let Some(reg) = registry {
                reg.counter_add(names::FL_ROUNDS, 1);
            }
            observer(round, &state.global);
            drop(round_span);
            self.observe_phase(registry, names::FL_ROUND_TICKS, round_t0);
            state.next_round = round + 1;
        }

        // The run's metric state rides along in the history, so reports
        // and checkpoints see it without extra plumbing.
        if let Some(reg) = registry {
            state.history.metrics = reg.snapshot();
        }
    }

    /// One round of the synchronous cadence: the classic barrier.
    /// Applies the quorum rule over **fresh** healthy uploads only, and
    /// on a skipped round re-queues late-merged uploads (undiscounted,
    /// staleness bumped) instead of destroying their signal.
    #[allow(clippy::too_many_arguments)]
    fn sync_round(
        &self,
        algo: &mut dyn FederatedAlgorithm,
        state: &mut RunState,
        round: usize,
        sampled_len: usize,
        received: Vec<ReceivedUpdate>,
        faults: &mut RoundFaults,
        registry: Option<&MetricsRegistry>,
        tracer: &Tracer,
    ) -> CadenceOutcome {
        // Quorum rule: aggregating a sliver of the sampled cohort yields
        // a biased direction; below quorum the round reuses the previous
        // momentum (by skipping the update) instead. Only this round's
        // fresh healthy uploads count toward the numerator — late
        // arrivals from earlier cohorts can't carry a round past quorum.
        let fresh_healthy = received.iter().filter(|r| r.staleness == 0).count();
        let quorum_failed = self.cfg.quorum_frac > 0.0
            && (fresh_healthy as f64) < self.cfg.quorum_frac * sampled_len as f64;
        faults.quorum_failed = quorum_failed;
        if quorum_failed {
            if let Some(reg) = registry {
                reg.counter_add(names::FL_ROUNDS_QUORUM_FAILED, 1);
            }
        }

        if received.is_empty() || quorum_failed {
            let train_loss = mean_loss_f64(received.iter().map(|r| &r.update));
            // The round discards its fresh uploads, but a late-merged
            // upload is an earlier round's signal that already survived
            // its straggler delay — re-queue it (original undiscounted
            // delta, staleness bumped by the extra round it now waits)
            // and retract this round's late-merge tally for it.
            for r in received {
                if r.staleness > 0 {
                    faults.late_merged -= 1;
                    faults.late_requeued += 1;
                    if tracer.enabled() {
                        tracer.point(
                            names::FAULT,
                            vec![
                                ("round", Value::U64(round as u64)),
                                ("client", Value::U64(r.update.client as u64)),
                                ("kind", Value::Str("late_requeue".to_string())),
                                ("staleness", Value::U64(r.staleness as u64)),
                            ],
                        );
                    }
                    state.pending.push(PendingUpdate {
                        arrival_round: round + 1,
                        staleness: r.staleness + 1,
                        via_net: r.via_net,
                        update: r.update,
                    });
                }
            }
            if let Some(reg) = registry {
                reg.counter_add(
                    names::FL_FAULTS_LATE_REQUEUED,
                    u64::from(faults.late_requeued),
                );
            }
            return CadenceOutcome {
                train_loss,
                update_norm: 0.0,
                alpha: None,
                aggregations: 0,
            };
        }

        let updates: Vec<ClientUpdate> = received.into_iter().map(into_discounted).collect();
        let input = RoundInput {
            round,
            cfg: &self.cfg,
            updates,
            views: &self.views,
        };
        let train_loss = mean_loss_f64(input.updates.iter());
        let before = state.global.clone();
        let agg_t0 = tracer.now();
        let log = {
            let _g = tracer.span(
                names::AGGREGATE,
                vec![
                    ("round", Value::U64(round as u64)),
                    ("updates", Value::U64(input.updates.len() as u64)),
                ],
            );
            algo.aggregate(&mut state.global, &input)
        };
        self.observe_phase(registry, names::FL_PHASE_AGGREGATE, agg_t0);
        if invariants::ENABLED {
            invariants::check_finite(&state.global, || {
                format!(
                    "global parameters after {} aggregation (round {round})",
                    algo.name()
                )
            });
        }
        let update_norm = update_norm_between(&before, &state.global);
        if let Some(reg) = registry {
            reg.observe(names::FL_UPDATE_NORM, &UPDATE_NORM_BOUNDS, update_norm);
            if let Some(a) = log.alpha {
                reg.gauge_set(names::FL_ALPHA, a);
                reg.observe(names::FL_ALPHA_TRAJECTORY, &ALPHA_BOUNDS, a);
            }
        }
        CadenceOutcome {
            train_loss,
            update_norm,
            alpha: log.alpha,
            aggregations: 1,
        }
    }

    /// One round of the buffered-K cadence (FedBuff-style): healthy
    /// received uploads join the aggregation buffer, and the server
    /// flushes an aggregation for every `k` buffered uploads, oldest
    /// first, carrying the remainder forward. Each flushed delta is
    /// discounted by its staleness at flush time.
    #[allow(clippy::too_many_arguments)]
    fn buffered_round(
        &self,
        algo: &mut dyn FederatedAlgorithm,
        state: &mut RunState,
        round: usize,
        k: usize,
        received: Vec<ReceivedUpdate>,
        registry: Option<&MetricsRegistry>,
        tracer: &Tracer,
    ) -> CadenceOutcome {
        for r in received {
            state.agg_buffer.push(BufferedUpdate {
                base_round: round - r.staleness,
                update: r.update,
            });
        }

        let before = state.global.clone();
        let agg_t0 = tracer.now();
        let mut loss_sum = 0.0f64;
        let mut loss_n = 0usize;
        let mut alpha = None;
        let mut aggregations = 0u32;
        while state.agg_buffer.len() >= k {
            let batch: Vec<BufferedUpdate> = state.agg_buffer.drain(..k).collect();
            let max_staleness = batch
                .iter()
                .map(|b| round - b.base_round)
                .max()
                .unwrap_or(0);
            let _g = tracer.span(
                names::BUFFER_FLUSH,
                vec![
                    ("round", Value::U64(round as u64)),
                    ("size", Value::U64(k as u64)),
                    ("max_staleness", Value::U64(max_staleness as u64)),
                ],
            );
            let updates: Vec<ClientUpdate> = batch
                .into_iter()
                .map(|b| {
                    into_discounted(ReceivedUpdate {
                        staleness: round - b.base_round,
                        via_net: false,
                        update: b.update,
                    })
                })
                .collect();
            for u in &updates {
                loss_sum += f64::from(u.avg_loss);
            }
            loss_n += updates.len();
            let input = RoundInput {
                round,
                cfg: &self.cfg,
                updates,
                views: &self.views,
            };
            let log = algo.aggregate(&mut state.global, &input);
            if log.alpha.is_some() {
                alpha = log.alpha;
            }
            if invariants::ENABLED {
                invariants::check_finite(&state.global, || {
                    format!(
                        "global parameters after {} buffer flush (round {round})",
                        algo.name()
                    )
                });
            }
            aggregations += 1;
        }
        if aggregations > 0 {
            self.observe_phase(registry, names::FL_PHASE_AGGREGATE, agg_t0);
        }
        let update_norm = update_norm_between(&before, &state.global);
        if let Some(reg) = registry {
            reg.counter_add(names::FL_CADENCE_FLUSHES, u64::from(aggregations));
            reg.gauge_set(names::FL_CADENCE_BUFFERED, state.agg_buffer.len() as f64);
            if aggregations > 0 {
                reg.observe(names::FL_UPDATE_NORM, &UPDATE_NORM_BOUNDS, update_norm);
                if let Some(a) = alpha {
                    reg.gauge_set(names::FL_ALPHA, a);
                    reg.observe(names::FL_ALPHA_TRAJECTORY, &ALPHA_BOUNDS, a);
                }
            }
        }
        CadenceOutcome {
            train_loss: (loss_n > 0).then(|| loss_sum / loss_n as f64),
            update_norm,
            alpha,
            aggregations,
        }
    }

    /// One round of the fully asynchronous cadence: every buffered
    /// upload is applied individually — oldest first, up to
    /// `max_in_flight` per round — weighted by
    /// `staleness_discount(s) / n` where `n` is the number of uploads
    /// applied this round. The round's applies therefore sum to a
    /// staleness-weighted mean, moving the global model on the same
    /// scale as one synchronous round **regardless of how many uploads
    /// survived the faults**; the excess stays buffered (and ages)
    /// until a later round's budget reaches it.
    #[allow(clippy::too_many_arguments)]
    fn async_round(
        &self,
        algo: &mut dyn FederatedAlgorithm,
        state: &mut RunState,
        round: usize,
        max_in_flight: usize,
        received: Vec<ReceivedUpdate>,
        registry: Option<&MetricsRegistry>,
        tracer: &Tracer,
    ) -> CadenceOutcome {
        for r in received {
            state.agg_buffer.push(BufferedUpdate {
                base_round: round - r.staleness,
                update: r.update,
            });
        }

        let before = state.global.clone();
        let agg_t0 = tracer.now();
        let apply_n = max_in_flight.min(state.agg_buffer.len());
        let scale = 1.0f32 / apply_n.max(1) as f32;
        let batch: Vec<BufferedUpdate> = state.agg_buffer.drain(..apply_n).collect();
        let mut loss_sum = 0.0f64;
        let mut loss_n = 0usize;
        let mut alpha = None;
        let mut aggregations = 0u32;
        for b in batch {
            let staleness = round - b.base_round;
            let _g = tracer.span(
                names::ASYNC_APPLY,
                vec![
                    ("round", Value::U64(round as u64)),
                    ("client", Value::U64(b.update.client as u64)),
                    ("staleness", Value::U64(staleness as u64)),
                ],
            );
            let mut u = b.update;
            let weight = staleness_discount(staleness) * scale;
            for d in u.delta.iter_mut() {
                *d *= weight;
            }
            loss_sum += f64::from(u.avg_loss);
            loss_n += 1;
            let input = RoundInput {
                round,
                cfg: &self.cfg,
                updates: vec![u],
                views: &self.views,
            };
            let log = algo.aggregate(&mut state.global, &input);
            if log.alpha.is_some() {
                alpha = log.alpha;
            }
            if invariants::ENABLED {
                invariants::check_finite(&state.global, || {
                    format!(
                        "global parameters after {} async apply (round {round})",
                        algo.name()
                    )
                });
            }
            aggregations += 1;
        }
        if aggregations > 0 {
            self.observe_phase(registry, names::FL_PHASE_AGGREGATE, agg_t0);
        }
        let update_norm = update_norm_between(&before, &state.global);
        if let Some(reg) = registry {
            reg.counter_add(names::FL_CADENCE_ASYNC_APPLIES, u64::from(aggregations));
            reg.gauge_set(names::FL_CADENCE_BUFFERED, state.agg_buffer.len() as f64);
            if aggregations > 0 {
                reg.observe(names::FL_UPDATE_NORM, &UPDATE_NORM_BOUNDS, update_norm);
                if let Some(a) = alpha {
                    reg.gauge_set(names::FL_ALPHA, a);
                    reg.observe(names::FL_ALPHA_TRAJECTORY, &ALPHA_BOUNDS, a);
                }
            }
        }
        CadenceOutcome {
            train_loss: (loss_n > 0).then(|| loss_sum / loss_n as f64),
            update_norm,
            alpha,
            aggregations,
        }
    }

    /// Record the tick delta since `t0` into the named phase histogram.
    /// The clock is read whenever the tracer is enabled (keeping tick
    /// sequences registry-independent); the observation lands only when
    /// a registry is attached.
    fn observe_phase(&self, registry: Option<&MetricsRegistry>, name: &str, t0: Option<u64>) {
        if let (Some(t0), Some(t1)) = (t0, self.obs.tracer.now()) {
            if let Some(reg) = registry {
                reg.observe(name, &PHASE_BOUNDS, t1.saturating_sub(t0) as f64);
            }
        }
    }

    /// Evaluate the global model: `evaluate` span, overall accuracy,
    /// and — with a registry attached — per-class gauges plus the
    /// tail-mean gauge (the long-tail synthesis orders classes head to
    /// tail by frequency, so the final third of class ids is the tail).
    fn evaluate_phase(
        &self,
        model: &mut Model,
        global: &[f32],
        round: usize,
        threads: usize,
        registry: Option<&MetricsRegistry>,
        tracer: &Tracer,
    ) -> f64 {
        let t0 = tracer.now();
        let acc = {
            let _g = tracer.span(names::EVALUATE, vec![("round", Value::U64(round as u64))]);
            model.set_params(global);
            let acc = evaluate_accuracy_threads(model, self.test, threads);
            if let Some(reg) = registry {
                reg.gauge_set(names::FL_ACC_OVERALL, acc);
                let pc = per_class_accuracy_threads(model, self.test, threads);
                let tail_len = pc.len() / 3;
                let tail_from = pc.len() - tail_len;
                let mut tail_sum = 0.0;
                for (c, &a) in pc.iter().enumerate() {
                    reg.gauge_set(&format!("{}{c:02}", names::FL_ACC_CLASS_PREFIX), a);
                    if c >= tail_from {
                        tail_sum += a;
                    }
                }
                if tail_len > 0 {
                    reg.gauge_set(names::FL_ACC_TAIL, tail_sum / tail_len as f64);
                }
            }
            acc
        };
        self.observe_phase(registry, names::FL_PHASE_EVALUATE, t0);
        acc
    }

    /// Apply the plan's faults for `round` to the freshly collected
    /// uploads, returning the set the server actually receives this
    /// round (surviving fresh uploads plus late arrivals, in client-id
    /// order). Deltas are **undiscounted**: each carries its staleness
    /// and the cadence applies the discount at application time, so a
    /// skipped round can re-queue a late arrival without signal loss.
    fn apply_faults(
        &self,
        plan: &FaultPlan,
        round: usize,
        updates: Vec<ClientUpdate>,
        state: &mut RunState,
        faults: &mut RoundFaults,
        tracer: &Tracer,
    ) -> Vec<ReceivedUpdate> {
        let fault_point = |kind: &str, client: usize, detail: Option<(&'static str, u64)>| {
            if tracer.enabled() {
                let mut fields = vec![
                    ("round", Value::U64(round as u64)),
                    ("client", Value::U64(client as u64)),
                    ("kind", Value::Str(kind.to_string())),
                ];
                if let Some((k, v)) = detail {
                    fields.push((k, Value::U64(v)));
                }
                tracer.point(names::FAULT, fields);
            }
        };
        let mut received: Vec<ReceivedUpdate> = Vec::with_capacity(updates.len());
        let fresh = |update: ClientUpdate| ReceivedUpdate {
            staleness: 0,
            via_net: false,
            update,
        };
        for mut u in updates {
            match plan.fault_for(round, u.client) {
                Some(FaultKind::Dropout) => {
                    faults.dropouts += 1;
                    fault_point("dropout", u.client, None);
                }
                Some(FaultKind::Straggler { delay }) => {
                    faults.stragglers += 1;
                    fault_point("straggler", u.client, Some(("delay", delay as u64)));
                    state.pending.push(PendingUpdate {
                        arrival_round: round + delay,
                        staleness: delay,
                        via_net: false,
                        update: u,
                    });
                }
                Some(FaultKind::Corrupt(kind)) => {
                    faults.corruptions += 1;
                    fault_point("corrupt", u.client, None);
                    corrupt_delta(&mut u.delta, kind);
                    received.push(fresh(u));
                }
                Some(FaultKind::Replay) => {
                    // A stale duplicate of the client's previous upload
                    // arrives instead of the fresh delta. A client with no
                    // prior upload has nothing to replay; the fresh delta
                    // goes through (the fault is still accounted).
                    faults.replays += 1;
                    fault_point("replay", u.client, None);
                    if let Some(prev) = state.replay_cache.get(u.client).and_then(|p| p.as_deref())
                    {
                        u.delta = prev.to_vec();
                    }
                    received.push(fresh(u));
                }
                None => received.push(fresh(u)),
            }
        }

        self.merge_due_pending(round, &mut received, state, faults, tracer);

        // Aggregation sees uploads in client-id order regardless of which
        // path (fresh, corrupted, replayed, late) produced them; the sort
        // is stable, so same-client duplicates keep a deterministic order.
        received.sort_by_key(|r| r.update.client);

        // The replay cache holds what the server most recently received
        // from each client (only maintained when replays are possible).
        // A late arrival is cached at its original strength: replaying
        // it later must not compound the one staleness discount it pays
        // at application.
        if plan.has_replay() {
            for r in &received {
                if let Some(slot) = state.replay_cache.get_mut(r.update.client) {
                    *slot = Some(r.update.delta.clone());
                }
            }
        }
        received
    }

    /// Merge buffered uploads due this round, each tagged with its
    /// staleness: a delta computed against an s-round-old global is
    /// still signal, but weaker — the cadence discounts it by
    /// `staleness_discount(s)` when it is applied. Both client-level
    /// stragglers and transport-level delays flow through here, so the
    /// quorum/re-queue machinery treats them uniformly; a deferred
    /// transport delivery additionally emits an `ack` point on arrival.
    fn merge_due_pending(
        &self,
        round: usize,
        received: &mut Vec<ReceivedUpdate>,
        state: &mut RunState,
        faults: &mut RoundFaults,
        tracer: &Tracer,
    ) {
        let mut still_pending = Vec::with_capacity(state.pending.len());
        for p in state.pending.drain(..) {
            if p.arrival_round <= round {
                faults.late_merged += 1;
                if tracer.enabled() {
                    tracer.point(
                        names::FAULT,
                        vec![
                            ("round", Value::U64(round as u64)),
                            ("client", Value::U64(p.update.client as u64)),
                            ("kind", Value::Str("late_merge".to_string())),
                            ("staleness", Value::U64(p.staleness as u64)),
                        ],
                    );
                    if p.via_net {
                        tracer.point(
                            names::ACK,
                            vec![
                                ("round", Value::U64(round as u64)),
                                ("client", Value::U64(p.update.client as u64)),
                                ("deferred", Value::U64(1)),
                            ],
                        );
                    }
                }
                received.push(ReceivedUpdate {
                    staleness: p.staleness,
                    via_net: p.via_net,
                    update: p.update,
                });
            } else {
                still_pending.push(p);
            }
        }
        state.pending = still_pending;
    }

    /// Route this round's fresh uploads through the wire transport.
    ///
    /// Each fresh upload is serialized, framed, and delivered by a
    /// [`Courier`] over the deterministic in-memory link in client-id
    /// order (the order `received` already has). Outcomes map onto the
    /// existing failure machinery: delivered payloads are decoded back
    /// into received updates; transport delays park the upload in the
    /// straggler buffer (merged with a staleness discount when due);
    /// exhausted retry budgets drop the upload, exactly like a dropout
    /// fault — the quorum rule decides what the round does about it.
    /// Late arrivals (staleness > 0) already crossed the wire when they
    /// were fresh and pass through untouched.
    fn deliver_received(
        &self,
        plan: &NetPlan,
        round: usize,
        received: Vec<ReceivedUpdate>,
        state: &mut RunState,
        net: &mut NetCounters,
        tracer: &Tracer,
    ) -> Vec<ReceivedUpdate> {
        let mut courier = Courier::new(plan, self.retry_policy, state.net_ticks);
        let mut out: Vec<ReceivedUpdate> = Vec::with_capacity(received.len());
        for r in received {
            if r.staleness > 0 {
                out.push(r);
                continue;
            }
            let client = r.update.client;
            // One sequence number per (round, client) delivery; retries
            // of the same upload share it, so duplicates are detected.
            let seq = ((round as u64) << 32) | client as u64;
            let payload = wire::encode_update(&r.update);
            let send_span = tracer.span(
                names::SEND_FRAME,
                vec![
                    ("round", Value::U64(round as u64)),
                    ("client", Value::U64(client as u64)),
                ],
            );
            let delivery = courier.deliver(round as u64, client as u64, seq, &payload);
            if tracer.enabled() {
                for outcome in &delivery.log {
                    match outcome {
                        AttemptOutcome::Acked => tracer.point(
                            names::ACK,
                            vec![
                                ("round", Value::U64(round as u64)),
                                ("client", Value::U64(client as u64)),
                                ("attempts", Value::U64(u64::from(delivery.attempts))),
                            ],
                        ),
                        AttemptOutcome::Delayed { .. } => {
                            // The `ack` point is emitted when the
                            // deferred delivery is merged, rounds later.
                        }
                        failed => tracer.point(
                            names::RETRY,
                            vec![
                                ("round", Value::U64(round as u64)),
                                ("client", Value::U64(client as u64)),
                                ("reason", Value::Str(failed.label().to_string())),
                            ],
                        ),
                    }
                }
            }
            drop(send_span);
            match delivery.verdict {
                Verdict::Delivered { payload } => match wire::decode_update(&payload) {
                    Some(update) => out.push(ReceivedUpdate {
                        staleness: 0,
                        via_net: true,
                        update,
                    }),
                    None => {
                        // An acknowledged frame whose payload fails to
                        // parse would be a codec defect; degrade to a
                        // dropout rather than poison or panic.
                        net.degraded = net.degraded.saturating_add(1);
                    }
                },
                Verdict::Delayed { rounds } => {
                    state.pending.push(PendingUpdate {
                        arrival_round: round + rounds,
                        staleness: rounds,
                        via_net: true,
                        update: r.update,
                    });
                }
                Verdict::Exhausted => {
                    // Degrades into the dropout machinery: the round has
                    // one fewer fresh upload and quorum decides the rest.
                }
            }
        }
        net.merge(&courier.counters());
        state.net_ticks = courier.ticks();
        out
    }

    /// Run the loop and also return the final global model.
    pub fn run_returning_model(&self, algo: &mut dyn FederatedAlgorithm) -> (History, Model) {
        let mut final_params: Vec<f32> = Vec::new();
        let history = self.run_with_observer(algo, |_, global| {
            final_params.clear();
            final_params.extend_from_slice(global);
        });
        let mut model = (self.factory)();
        model.set_params(&final_params);
        (history, model)
    }
}

/// The `[start, end)` sample ranges of each evaluation batch.
fn eval_batches(n: usize) -> Vec<(usize, usize)> {
    let mut batches = Vec::with_capacity(n.div_ceil(EVAL_BATCH));
    let mut start = 0usize;
    while start < n {
        let end = (start + EVAL_BATCH).min(n);
        batches.push((start, end));
        start = end;
    }
    batches
}

/// Correct-prediction count of `model` over sample range `[start, end)`.
fn correct_in_range(model: &mut Model, dataset: &Dataset, start: usize, end: usize) -> usize {
    let idx: Vec<usize> = (start..end).collect();
    let (x, y) = dataset.gather(&idx);
    let preds = model.predict(&x);
    preds.iter().zip(&y).filter(|(p, t)| p == t).count()
}

/// Overall accuracy of `model` on `dataset`, evaluated in batches.
pub fn evaluate_accuracy(model: &mut Model, dataset: &Dataset) -> f64 {
    evaluate_accuracy_threads(model, dataset, 1)
}

/// Like [`evaluate_accuracy`], but spreads the evaluation batches over up
/// to `threads` workers (each on its own model replica).
///
/// The reduction sums integer correct-counts collected in batch-index
/// order, so the result is bitwise identical for every thread count.
pub fn evaluate_accuracy_threads(model: &mut Model, dataset: &Dataset, threads: usize) -> f64 {
    if dataset.is_empty() {
        return 0.0;
    }
    let n = dataset.len();
    let batches = eval_batches(n);
    let threads = threads.clamp(1, batches.len());
    let correct: usize = if threads <= 1 {
        let mut correct = 0usize;
        for &(start, end) in &batches {
            correct += correct_in_range(model, dataset, start, end);
        }
        correct
    } else {
        let chunks = chunk_ranges(batches.len(), threads);
        let model_ref: &Model = model;
        parallel_map(chunks.len(), threads, |ci| {
            let (b0, b1) = chunks[ci];
            let mut replica = model_ref.clone();
            batches[b0..b1]
                .iter()
                .map(|&(start, end)| correct_in_range(&mut replica, dataset, start, end))
                .sum::<usize>()
        })
        .into_iter()
        .sum()
    };
    correct as f64 / n as f64
}

/// Per-class accuracy of `model` on `dataset` (classes with no test
/// samples report 0).
pub fn per_class_accuracy(model: &mut Model, dataset: &Dataset) -> Vec<f64> {
    per_class_accuracy_threads(model, dataset, 1)
}

/// Like [`per_class_accuracy`], but batch-chunk parallel with the same
/// index-ordered integer reduction as [`evaluate_accuracy_threads`].
pub fn per_class_accuracy_threads(
    model: &mut Model,
    dataset: &Dataset,
    threads: usize,
) -> Vec<f64> {
    let classes = dataset.classes();
    let batches = eval_batches(dataset.len());
    let threads = threads.clamp(1, batches.len().max(1));

    // Per-class (correct, total) tallies over a run of batches.
    let tally_batches = |model: &mut Model, range: &[(usize, usize)]| {
        let mut correct = vec![0usize; classes];
        let mut total = vec![0usize; classes];
        for &(start, end) in range {
            let idx: Vec<usize> = (start..end).collect();
            let (x, y) = dataset.gather(&idx);
            let preds = model.predict(&x);
            for (p, &t) in preds.iter().zip(&y) {
                total[t] += 1;
                if *p == t {
                    correct[t] += 1;
                }
            }
        }
        (correct, total)
    };

    let (mut correct, mut total) = (vec![0usize; classes], vec![0usize; classes]);
    let partials = if threads <= 1 {
        vec![tally_batches(model, &batches)]
    } else {
        let chunks = chunk_ranges(batches.len(), threads);
        let model_ref: &Model = model;
        parallel_map(chunks.len(), threads, |ci| {
            let (b0, b1) = chunks[ci];
            tally_batches(&mut model_ref.clone(), &batches[b0..b1])
        })
    };
    for (c, t) in partials {
        for (acc, v) in correct.iter_mut().zip(&c) {
            *acc += v;
        }
        for (acc, v) in total.iter_mut().zip(&t) {
            *acc += v;
        }
    }
    correct
        .iter()
        .zip(&total)
        .map(|(&c, &t)| if t == 0 { 0.0 } else { c as f64 / t as f64 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{server_step, uniform_average, RoundLog};
    use crate::client::{run_local_sgd, ClientUpdate, LocalSgdSpec};
    use fedwcm_data::longtail::longtail_counts;
    use fedwcm_data::partition::paper_partition;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_nn::loss::CrossEntropy;
    use fedwcm_nn::models::mlp;

    /// Minimal FedAvg used to exercise the engine (the real one lives in
    /// fedwcm-algos).
    struct TestFedAvg;

    impl FederatedAlgorithm for TestFedAvg {
        fn name(&self) -> String {
            "test-fedavg".into()
        }

        fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
            let spec = LocalSgdSpec {
                loss: &CrossEntropy,
                balanced_sampler: false,
                lr: env.cfg.local_lr,
                epochs: env.cfg.local_epochs,
            };
            run_local_sgd(env, global, &spec, |_, _, _| {})
        }

        fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
            let mut dir = vec![0.0f32; global.len()];
            uniform_average(&input.updates, &mut dir);
            server_step(global, &dir, input.cfg, input.mean_batches());
            RoundLog::default()
        }
    }

    fn build_sim<'a>(ds: &'a Dataset, test: &'a Dataset, cfg: FlConfig) -> Simulation<'a> {
        let part = paper_partition(ds, cfg.clients, 0.5, cfg.seed);
        let views = part.views(ds);
        Simulation::new(
            cfg,
            ds,
            test,
            views,
            Box::new(|| {
                let mut rng = Xoshiro256pp::seed_from(1234);
                mlp(64, &[32], 10, &mut rng)
            }),
        )
    }

    #[test]
    fn fedavg_learns_on_balanced_data() {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 80, 1.0);
        let ds = spec.generate_train(&counts, 11);
        let test = spec.generate_test(11);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 8;
        cfg.participation = 0.5;
        cfg.rounds = 15;
        cfg.local_epochs = 2;
        cfg.batch_size = 20;
        cfg.eval_every = 5;
        let sim = build_sim(&ds, &test, cfg);
        let mut algo = TestFedAvg;
        let history = sim.run(&mut algo);
        let acc = history.final_accuracy(1);
        assert!(acc > 0.5, "final accuracy {acc}");
        assert_eq!(history.records.len(), 15);
    }

    #[test]
    fn run_is_deterministic() {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 40, 0.5);
        let ds = spec.generate_train(&counts, 12);
        let test = spec.generate_test(12);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 5;
        cfg.participation = 0.4;
        cfg.rounds = 4;
        cfg.eval_every = 2;
        let sim = build_sim(&ds, &test, cfg.clone());
        let h1 = sim.run(&mut TestFedAvg);
        let h2 = sim.run(&mut TestFedAvg);
        for (a, b) in h1.records.iter().zip(&h2.records) {
            assert_eq!(a.test_acc, b.test_acc);
            assert_eq!(a.train_loss, b.train_loss);
        }
    }

    #[test]
    fn sampled_clients_deterministic_and_bounded() {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 40, 1.0);
        let ds = spec.generate_train(&counts, 13);
        let test = spec.generate_test(13);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 10;
        cfg.participation = 0.3;
        let sim = build_sim(&ds, &test, cfg);
        let s1 = sim.sampled_clients(5);
        let s2 = sim.sampled_clients(5);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 3);
        assert!(s1.iter().all(|&c| c < 10));
        assert_ne!(sim.sampled_clients(0), sim.sampled_clients(1));
    }

    /// FedAvg variant that poisons a specific client's update with NaN —
    /// failure injection for the engine's containment path.
    struct PoisonedFedAvg {
        poisoned_client: usize,
    }

    impl FederatedAlgorithm for PoisonedFedAvg {
        fn name(&self) -> String {
            "poisoned-fedavg".into()
        }

        fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
            let spec = LocalSgdSpec {
                loss: &CrossEntropy,
                balanced_sampler: false,
                lr: env.cfg.local_lr,
                epochs: env.cfg.local_epochs,
            };
            let mut upd = run_local_sgd(env, global, &spec, |_, _, _| {});
            if env.id == self.poisoned_client {
                upd.delta[0] = f32::NAN;
            }
            upd
        }

        fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
            let mut dir = vec![0.0f32; global.len()];
            uniform_average(&input.updates, &mut dir);
            server_step(global, &dir, input.cfg, input.mean_batches());
            RoundLog::default()
        }
    }

    // Containment (silently dropping poisoned updates) is the release
    // behaviour; debug_invariants builds panic at the aggregation
    // boundary instead, which crates/fl/tests/nan_injection.rs covers.
    #[cfg(not(feature = "debug_invariants"))]
    #[test]
    fn poisoned_updates_are_contained() {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 50, 1.0);
        let ds = spec.generate_train(&counts, 15);
        let test = spec.generate_test(15);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 6;
        cfg.participation = 1.0;
        cfg.rounds = 6;
        cfg.eval_every = 3;
        let sim = build_sim(&ds, &test, cfg);
        let mut algo = PoisonedFedAvg { poisoned_client: 2 };
        let h = sim.run(&mut algo);
        // Every round drops exactly the poisoned client and still trains.
        for r in &h.records {
            assert_eq!(r.dropped_updates, 1, "round {}", r.round);
            assert!(r.train_loss.expect("healthy clients reported").is_finite());
            assert!(r.update_norm > 0.0);
        }
        // The global model never absorbed a NaN.
        let acc = h.final_accuracy(1);
        assert!(acc > 0.1, "model destroyed by poison: {acc}");
    }

    #[cfg(not(feature = "debug_invariants"))]
    #[test]
    fn fully_poisoned_round_is_skipped() {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 40, 1.0);
        let ds = spec.generate_train(&counts, 16);
        let test = spec.generate_test(16);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 3;
        cfg.participation = 0.34; // one client per round
        cfg.rounds = 3;
        cfg.eval_every = 2;
        let sim = build_sim(&ds, &test, cfg);
        // Poison every client.
        struct AllPoison;
        impl FederatedAlgorithm for AllPoison {
            fn name(&self) -> String {
                "all-poison".into()
            }
            fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
                ClientUpdate {
                    client: env.id,
                    delta: vec![f32::NAN; global.len()],
                    num_samples: 1,
                    num_batches: 1,
                    avg_loss: f32::NAN,
                    extra: None,
                }
            }
            fn aggregate(&mut self, _g: &mut [f32], _i: &RoundInput<'_>) -> RoundLog {
                panic!("aggregate must not run on an empty round");
            }
        }
        let h = sim.run(&mut AllPoison);
        assert_eq!(h.records.len(), 3);
        for r in &h.records {
            assert_eq!(r.dropped_updates, 1);
            assert_eq!(r.update_norm, 0.0);
        }
        // Evaluation cadence must survive empty rounds: with eval_every=2
        // the boundaries are rounds 1 (2nd) and 2 (final), even though
        // every round dropped all of its updates.
        assert!(
            h.records[0].test_acc.is_none(),
            "round 0 is not an eval boundary"
        );
        assert!(
            h.records[1].test_acc.is_some(),
            "eval_every boundary skipped"
        );
        assert!(h.records[2].test_acc.is_some(), "final round must evaluate");
    }

    #[test]
    fn thread_count_is_bitwise_invisible() {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 40, 0.5);
        let ds = spec.generate_train(&counts, 21);
        let test = spec.generate_test(21);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 5;
        cfg.participation = 0.6;
        cfg.rounds = 3;
        cfg.eval_every = 1;
        cfg.threads = 1;
        let h1 = build_sim(&ds, &test, cfg.clone()).run(&mut TestFedAvg);
        cfg.threads = 4;
        let h4 = build_sim(&ds, &test, cfg).run(&mut TestFedAvg);
        assert_eq!(h1.records.len(), h4.records.len());
        for (a, b) in h1.records.iter().zip(&h4.records) {
            assert_eq!(
                a.train_loss.map(f64::to_bits),
                b.train_loss.map(f64::to_bits),
                "round {}",
                a.round
            );
            assert_eq!(
                a.update_norm.to_bits(),
                b.update_norm.to_bits(),
                "round {}",
                a.round
            );
            assert_eq!(
                a.test_acc.map(f64::to_bits),
                b.test_acc.map(f64::to_bits),
                "round {}",
                a.round
            );
        }
    }

    #[test]
    fn parallel_eval_matches_sequential() {
        let spec = DatasetPreset::FashionMnist.spec();
        let test = spec.generate_test(22);
        let mut rng = Xoshiro256pp::seed_from(9);
        let mut model = mlp(64, &[16], 10, &mut rng);
        let gold_acc = evaluate_accuracy_threads(&mut model, &test, 1);
        let gold_pc = per_class_accuracy_threads(&mut model, &test, 1);
        for threads in [2, 3, 8] {
            let acc = evaluate_accuracy_threads(&mut model, &test, threads);
            assert_eq!(acc.to_bits(), gold_acc.to_bits(), "threads={threads}");
            let pc = per_class_accuracy_threads(&mut model, &test, threads);
            let gold_bits: Vec<u64> = gold_pc.iter().map(|v| v.to_bits()).collect();
            let bits: Vec<u64> = pc.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, gold_bits, "threads={threads}");
        }
    }

    fn pending_update(client: usize, staleness: usize, delta: Vec<f32>) -> PendingUpdate {
        PendingUpdate {
            arrival_round: 0,
            staleness,
            via_net: false,
            update: ClientUpdate {
                client,
                delta,
                num_samples: 10,
                num_batches: 2,
                avg_loss: 1.5,
                extra: None,
            },
        }
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    /// Regression for the straggler-signal-loss bug: a quorum-failed
    /// round used to count late merges in `late_merged` and then throw
    /// the whole updates vec away. It must re-queue the late arrival —
    /// original undiscounted delta, staleness bumped — instead. Also
    /// covers the numerator fix: with zero fresh uploads the round must
    /// fail quorum even though a (stale) upload was received.
    #[test]
    fn quorum_failed_round_requeues_late_arrivals() {
        use fedwcm_faults::FaultConfig;
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 40, 1.0);
        let ds = spec.generate_train(&counts, 31);
        let test = spec.generate_test(31);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 5;
        cfg.participation = 0.4;
        cfg.rounds = 4;
        cfg.eval_every = 10;
        cfg.quorum_frac = 0.5;
        let sim = build_sim(&ds, &test, cfg).with_fault_plan(FaultPlan::new(FaultConfig {
            dropout: 1.0,
            ..FaultConfig::zero(7)
        }));
        let mut algo = TestFedAvg;
        let mut state = sim.fresh_state(&algo);
        let delta: Vec<f32> = (0..state.global.len())
            .map(|i| (i % 7) as f32 * 0.125 - 0.25)
            .collect();
        state.pending.push(pending_update(0, 1, delta.clone()));

        sim.drive(&mut algo, &mut state, 1, &mut |_, _| {});
        let rec = &state.history.records[0];
        // Pre-fix, the one late merge passed a 0.5 quorum over 2 sampled
        // clients on its own; fresh uploads now hold the numerator.
        assert!(rec.faults.quorum_failed, "stale-only round passed quorum");
        assert_eq!(rec.faults.late_merged, 0, "re-queue must retract the merge");
        assert_eq!(rec.faults.late_requeued, 1);
        assert_eq!(rec.update_norm, 0.0);
        assert_eq!(rec.aggregations, 0);
        // Skip-branch loss goes through the shared f64 helper.
        assert_eq!(rec.train_loss, Some(f64::from(1.5f32)));
        assert_eq!(state.pending.len(), 1, "late signal must not be destroyed");
        assert_eq!(state.pending[0].arrival_round, 1);
        assert_eq!(state.pending[0].staleness, 2);
        assert_eq!(
            bits(&state.pending[0].update.delta),
            bits(&delta),
            "re-queued delta must keep its original (undiscounted) signal"
        );

        // Next round drops everything again: re-queued once more, with
        // the staleness bumped a second time.
        sim.drive(&mut algo, &mut state, 2, &mut |_, _| {});
        assert_eq!(state.pending.len(), 1);
        assert_eq!(state.pending[0].staleness, 3);
        assert_eq!(bits(&state.pending[0].update.delta), bits(&delta));
        assert_eq!(state.history.records[1].faults.late_requeued, 1);
    }

    /// Regression for the replay-cache bug: the cache used to store the
    /// *discounted* delta of a late merge, so a later replay compounded
    /// the staleness penalty. The cache must hold the upload at its
    /// original strength.
    #[test]
    fn replay_cache_holds_undiscounted_late_delta() {
        use fedwcm_faults::FaultConfig;
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 40, 1.0);
        let ds = spec.generate_train(&counts, 32);
        let test = spec.generate_test(32);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 5;
        cfg.participation = 0.4;
        cfg.rounds = 2;
        let plan = FaultPlan::new(FaultConfig {
            replay: 0.3,
            ..FaultConfig::zero(9)
        });
        let sim = build_sim(&ds, &test, cfg).with_fault_plan(plan.clone());
        let algo = TestFedAvg;
        let mut state = sim.fresh_state(&algo);
        assert_eq!(state.replay_cache.len(), 5, "replay plan maintains a cache");
        let delta: Vec<f32> = (0..state.global.len()).map(|i| 0.5 + i as f32).collect();
        state.pending.push(pending_update(3, 2, delta.clone()));

        let mut faults = RoundFaults::default();
        let tracer = Tracer::disabled();
        let received = sim.apply_faults(&plan, 0, Vec::new(), &mut state, &mut faults, &tracer);
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].staleness, 2);
        assert_eq!(faults.late_merged, 1);
        assert_eq!(
            bits(&received[0].update.delta),
            bits(&delta),
            "received delta is undiscounted until application"
        );
        let cached = state.replay_cache[3].as_ref().expect("late merge cached");
        assert_eq!(
            bits(cached),
            bits(&delta),
            "cache must hold the pre-discount delta"
        );
    }

    /// FedAvg variant that records every `RoundInput` it aggregates, so
    /// tests can inspect exactly what the engine fed it.
    struct SpyAvg {
        captured: Vec<Vec<ClientUpdate>>,
    }

    impl FederatedAlgorithm for SpyAvg {
        fn name(&self) -> String {
            "spy-avg".into()
        }

        fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
            let spec = LocalSgdSpec {
                loss: &CrossEntropy,
                balanced_sampler: false,
                lr: env.cfg.local_lr,
                epochs: env.cfg.local_epochs,
            };
            run_local_sgd(env, global, &spec, |_, _, _| {})
        }

        fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
            self.captured.push(input.updates.clone());
            let mut dir = vec![0.0f32; global.len()];
            uniform_average(&input.updates, &mut dir);
            server_step(global, &dir, input.cfg, input.mean_batches());
            RoundLog::default()
        }
    }

    /// A late-merged upload reaching aggregation must carry exactly one
    /// staleness discount — applied at application time, not at merge.
    #[test]
    fn late_merge_applies_exactly_one_discount() {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 40, 1.0);
        let ds = spec.generate_train(&counts, 33);
        let test = spec.generate_test(33);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 5;
        cfg.participation = 0.4;
        cfg.rounds = 2;
        // A zero-rate plan schedules nothing but keeps the straggler
        // buffer live, so the seeded pending entry merges in round 0.
        let sim = build_sim(&ds, &test, cfg).with_fault_plan(FaultPlan::zero(1));
        let sampled = sim.sampled_clients(0);
        let late_client = (0..5).find(|c| !sampled.contains(c)).expect("free id");
        let mut algo = SpyAvg {
            captured: Vec::new(),
        };
        let mut state = sim.fresh_state(&algo);
        let delta: Vec<f32> = (0..state.global.len())
            .map(|i| (i as f32 * 0.01).sin())
            .collect();
        state
            .pending
            .push(pending_update(late_client, 3, delta.clone()));

        sim.drive(&mut algo, &mut state, 1, &mut |_, _| {});
        assert_eq!(algo.captured.len(), 1);
        let late = algo.captured[0]
            .iter()
            .find(|u| u.client == late_client)
            .expect("late upload aggregated");
        let expected: Vec<f32> = delta.iter().map(|d| d * staleness_discount(3)).collect();
        assert_eq!(
            bits(&late.delta),
            bits(&expected),
            "exactly one staleness discount at application"
        );
        assert_eq!(state.history.records[0].faults.late_merged, 1);
        assert_eq!(state.history.records[0].aggregations, 1);
    }

    /// The shared loss helper accumulates in f64 — both engine branches
    /// (skip and aggregate) report through it, so their bits agree.
    #[test]
    fn mean_loss_helper_accumulates_in_f64() {
        let upd = |avg_loss: f32| ClientUpdate {
            client: 0,
            delta: Vec::new(),
            num_samples: 1,
            num_batches: 1,
            avg_loss,
            extra: None,
        };
        let losses = [0.1f32, 0.2, 0.3, 7.7];
        let us: Vec<ClientUpdate> = losses.iter().map(|&l| upd(l)).collect();
        let expected = losses.iter().map(|&l| f64::from(l)).sum::<f64>() / losses.len() as f64;
        let got = mean_loss_f64(us.iter()).expect("non-empty");
        assert_eq!(got.to_bits(), expected.to_bits());
        assert_eq!(mean_loss_f64([].iter()), None);
    }

    #[test]
    fn per_class_accuracy_shapes() {
        let spec = DatasetPreset::FashionMnist.spec();
        let test = spec.generate_test(14);
        let mut rng = Xoshiro256pp::seed_from(7);
        let mut model = mlp(64, &[16], 10, &mut rng);
        let pc = per_class_accuracy(&mut model, &test);
        assert_eq!(pc.len(), 10);
        let overall = evaluate_accuracy(&mut model, &test);
        let mean_pc: f64 = pc.iter().sum::<f64>() / 10.0;
        // Balanced test set ⇒ overall equals the mean per-class accuracy.
        assert!((overall - mean_pc).abs() < 1e-9);
    }
}
