#!/bin/sh
# Re-prioritised tail: remaining artifacts at tightened round budgets.
set -x
cd "$(dirname "$0")/.."
R=results
run() { bin=$1; shift; cargo run --release -q -p fedwcm-experiments --bin "$bin" -- "$@" > "$R/$bin.txt" 2>"$R/$bin.log"; }
run table1_overall --rounds 40 --dataset cifar-10
run table5_fedwcm_x --rounds 40
run fig12_fedgrab_part --rounds 40
run ablation_fedwcm --rounds 40
run fig13_concentration_cmp --rounds 40
run fig17_collapse --rounds 40
run fig4_concentration --rounds 40
run fig18_19_hetero --rounds 40
run fig14_16_layers --rounds 40
run appendix_geometry --rounds 40
run appendix_comms
run fig7_convergence --rounds 80
echo TAIL_DONE
