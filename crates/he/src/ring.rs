//! Negacyclic polynomial arithmetic in `Z_q[x]/(x^N + 1)` with `q = 2^62`.
//!
//! Coefficients live in `u64` reduced mod `q`; since `q` is a power of
//! two, reduction is a mask. Negacyclic convolution wraps `x^N = −1`.

/// Ciphertext modulus `q = 2^62`.
pub const Q: u64 = 1 << 62;
/// Mask for reduction mod `q`.
pub const Q_MASK: u64 = Q - 1;

/// Reduce mod q.
#[inline]
pub fn modq(x: u64) -> u64 {
    x & Q_MASK
}

/// Addition mod q.
#[inline]
pub fn addq(a: u64, b: u64) -> u64 {
    (a.wrapping_add(b)) & Q_MASK
}

/// Subtraction mod q.
#[inline]
pub fn subq(a: u64, b: u64) -> u64 {
    (a.wrapping_sub(b)) & Q_MASK
}

/// Negation mod q.
#[inline]
pub fn negq(a: u64) -> u64 {
    (Q.wrapping_sub(a)) & Q_MASK
}

/// Elementwise polynomial addition.
pub fn poly_add(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert!(
        a.len() == b.len() && b.len() == out.len(),
        "poly length mismatch"
    );
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = addq(x, y);
    }
}

/// Elementwise polynomial subtraction.
pub fn poly_sub(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert!(
        a.len() == b.len() && b.len() == out.len(),
        "poly length mismatch"
    );
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = subq(x, y);
    }
}

/// Negacyclic product of a dense polynomial `a` by a **sparse ternary**
/// polynomial given as signed positions: `plus` are the indices with
/// coefficient +1, `minus` with −1. Accumulates into `out` (pre-zeroed by
/// the caller if a fresh product is wanted).
///
/// Complexity O(N · (|plus| + |minus|)) — the only product the scheme
/// needs (dense·secret), so no NTT machinery is required.
pub fn negacyclic_mul_sparse(a: &[u64], plus: &[usize], minus: &[usize], out: &mut [u64]) {
    let n = a.len();
    assert_eq!(out.len(), n, "output length mismatch");
    for &k in plus {
        assert!(k < n, "sparse index out of range");
        // out += a · x^k  (negacyclic: wrapped terms change sign)
        for (i, &ai) in a.iter().enumerate() {
            let j = i + k;
            if j < n {
                out[j] = addq(out[j], ai);
            } else {
                out[j - n] = subq(out[j - n], ai);
            }
        }
    }
    for &k in minus {
        assert!(k < n, "sparse index out of range");
        for (i, &ai) in a.iter().enumerate() {
            let j = i + k;
            if j < n {
                out[j] = subq(out[j], ai);
            } else {
                out[j - n] = addq(out[j - n], ai);
            }
        }
    }
}

/// Interpret a mod-q coefficient as a signed value in `(−q/2, q/2]`.
#[inline]
pub fn to_signed(x: u64) -> i64 {
    if x > Q / 2 {
        // lint:allow(cast-soundness) the magnitude q − x is below q/2 and fits i64
        -((Q - x) as i64)
    } else {
        // lint:allow(cast-soundness) the branch bounds x by q/2 which fits i64
        x as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_arithmetic_wraps() {
        assert_eq!(addq(Q - 1, 2), 1);
        assert_eq!(subq(0, 1), Q - 1);
        assert_eq!(negq(5), Q - 5);
        assert_eq!(negq(0), 0);
    }

    #[test]
    fn poly_add_sub_roundtrip() {
        let a = vec![1u64, Q - 1, 7, 0];
        let b = vec![5u64, 3, Q - 2, 9];
        let mut s = vec![0u64; 4];
        poly_add(&a, &b, &mut s);
        let mut back = vec![0u64; 4];
        poly_sub(&s, &b, &mut back);
        assert_eq!(back, a);
    }

    #[test]
    fn sparse_mul_identity() {
        // Multiplying by x^0 (plus = [0]) is the identity.
        let a = vec![3u64, 1, 4, 1];
        let mut out = vec![0u64; 4];
        negacyclic_mul_sparse(&a, &[0], &[], &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn sparse_mul_shift_wraps_negacyclically() {
        // a = 1 (constant). a·x^3 in degree-4 ring = x^3; a·x^4 = −1.
        let a = vec![1u64, 0, 0, 0];
        let mut out = vec![0u64; 4];
        negacyclic_mul_sparse(&a, &[3], &[], &mut out);
        assert_eq!(out, vec![0, 0, 0, 1]);
        // Shift of x^1 by x^3: x^4 = −1.
        let x1 = vec![0u64, 1, 0, 0];
        let mut out = vec![0u64; 4];
        negacyclic_mul_sparse(&x1, &[3], &[], &mut out);
        assert_eq!(out, vec![Q - 1, 0, 0, 0]);
    }

    #[test]
    fn sparse_mul_matches_dense_reference() {
        // Compare against a naive dense negacyclic product for a ternary
        // second operand.
        let n = 16usize;
        let a: Vec<u64> = (0..n as u64).map(|i| i * 37 + 5).collect();
        let plus = [1usize, 7, 12];
        let minus = [0usize, 9];
        // Dense reference.
        let mut s = vec![0i64; n];
        for &p in &plus {
            s[p] += 1;
        }
        for &m in &minus {
            s[m] -= 1;
        }
        let mut dense = vec![0i128; n];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &sj) in s.iter().enumerate() {
                let prod = ai as i128 * sj as i128;
                let k = i + j;
                if k < n {
                    dense[k] += prod;
                } else {
                    dense[k - n] -= prod;
                }
            }
        }
        let expect: Vec<u64> = dense
            .iter()
            .map(|&v| (v.rem_euclid(Q as i128)) as u64)
            .collect();
        let mut out = vec![0u64; n];
        negacyclic_mul_sparse(&a, &plus, &minus, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(to_signed(5), 5);
        assert_eq!(to_signed(Q - 3), -3);
        assert_eq!(to_signed(Q / 2), (Q / 2) as i64);
    }
}
