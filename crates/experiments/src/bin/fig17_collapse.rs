//! Figure 17: FedCM's mean neuron concentration (top) and test accuracy
//! (bottom) across five long-tailed IF settings — the synchronised
//! spike/crash evidence for minority collapse.

use fedwcm_analysis::spikes::detect_spikes;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::collapse::{print_trace_csv, run_with_concentration};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let ifs = [0.5, 0.1, 0.06, 0.04, 0.01];
    for imbalance in ifs {
        let exp = ExpConfig::new(DatasetPreset::Cifar10, imbalance, 0.1, cli.scale, cli.seed);
        let trace = run_with_concentration(&exp, Method::FedCm, &cli, 1);
        let conc_rows: Vec<(usize, Vec<f64>)> = trace
            .mean_concentration
            .iter()
            .map(|&(r, c)| (r, vec![c]))
            .collect();
        print_trace_csv(
            &format!("Fig.17 FedCM concentration, IF={imbalance}"),
            &["concentration".into()],
            &conc_rows,
        );
        let acc_rows: Vec<(usize, Vec<f64>)> = trace
            .history
            .accuracy_series()
            .into_iter()
            .map(|(r, a)| (r, vec![a]))
            .collect();
        print_trace_csv(
            &format!("Fig.17 FedCM accuracy, IF={imbalance}"),
            &["accuracy".into()],
            &acc_rows,
        );
        let conc: Vec<f64> = trace.mean_concentration.iter().map(|&(_, c)| c).collect();
        let spikes = detect_spikes(&conc, 2.0, 0.02);
        println!("# IF={imbalance}: concentration spikes at rounds {spikes:?}");
        console.info(format!("[fig17] IF={imbalance} done"));
    }
    println!(
        "\nExpected shape (paper Fig. 17): concentration spikes coincide\n\
         with precipitous accuracy drops; both intensify as IF shrinks."
    );
}
