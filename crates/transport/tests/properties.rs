//! Property tests for the frame codec: round-trip identity, single-bit
//! rejection, and truncation/length-prefix fuzzing.

use fedwcm_transport::frame::{self, FrameError, Message, NackReason, HEADER_LEN, TRAILER_LEN};
use proptest::prelude::*;

fn arb_message() -> impl Strategy<Value = Message> {
    let payload = prop::collection::vec(any::<u8>(), 0..512);
    let seq = any::<u64>();
    (0u8..4, seq, payload, any::<bool>()).prop_map(|(kind, seq, payload, checksum)| match kind {
        0 => Message::ModelDown { seq, payload },
        1 => Message::DeltaUp { seq, payload },
        2 => Message::Ack { seq },
        _ => Message::Nack {
            seq,
            reason: if checksum {
                NackReason::Checksum
            } else {
                NackReason::Malformed
            },
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary messages encode→decode byte-identically.
    #[test]
    fn round_trip_is_byte_exact(msg in arb_message()) {
        let bytes = frame::encode(&msg).expect("encodable");
        let back = frame::decode(&bytes).expect("decodable");
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(frame::encode(&back).expect("encodable"), bytes);
    }

    /// Any single flipped bit anywhere in the frame is rejected —
    /// never mis-parsed into a different message.
    #[test]
    fn single_bit_flip_is_always_rejected(
        msg in arb_message(),
        bit_pick in any::<u64>(),
    ) {
        let bytes = frame::encode(&msg).expect("encodable");
        let bit = usize::try_from(bit_pick % (bytes.len() as u64 * 8)).unwrap();
        let mut damaged = bytes.clone();
        damaged[bit / 8] ^= 1u8 << (bit % 8);
        prop_assert!(damaged != bytes);
        let got = frame::decode(&damaged);
        prop_assert!(got.is_err(), "flip at bit {} parsed as {:?}", bit, got);
    }

    /// Every strict prefix of a valid frame is rejected.
    #[test]
    fn truncation_is_always_rejected(msg in arb_message(), cut in any::<u64>()) {
        let bytes = frame::encode(&msg).expect("encodable");
        let keep = usize::try_from(cut % bytes.len() as u64).unwrap();
        prop_assert!(frame::decode(&bytes[..keep]).is_err());
    }

    /// A fuzzed length prefix never panics and never yields a wrong
    /// parse: either the mutation reproduces the original declared
    /// length (CRC still guards the rest) or decoding errors out.
    #[test]
    fn fuzzed_length_prefix_is_safe(msg in arb_message(), fake_len in any::<u32>()) {
        let bytes = frame::encode(&msg).expect("encodable");
        let mut damaged = bytes.clone();
        damaged[16..HEADER_LEN].copy_from_slice(&fake_len.to_le_bytes());
        if let Ok(got) = frame::decode(&damaged) {
            prop_assert_eq!(got, msg, "only the original length may parse");
        }
    }

    /// Arbitrary raw bytes never panic the decoder.
    #[test]
    fn arbitrary_bytes_never_panic(raw in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = frame::decode(&raw);
    }
}

#[test]
fn frame_overhead_is_header_plus_trailer() {
    let bytes = frame::encode(&Message::DeltaUp {
        seq: 1,
        payload: vec![0; 100],
    })
    .expect("encodable");
    assert_eq!(bytes.len(), HEADER_LEN + 100 + TRAILER_LEN);
    assert!(matches!(frame::decode(&[]), Err(FrameError::Truncated)));
}
