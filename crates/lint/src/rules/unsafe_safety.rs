//! `unsafe-safety`: every `unsafe` block, function, trait, or impl must
//! be immediately preceded by a `// SAFETY:` comment justifying it.
//!
//! "Immediately" is strict: the comment must sit on the same line as
//! the `unsafe` keyword, or in the contiguous run of comment/attribute
//! lines directly above it. A blank line between the `SAFETY:` comment
//! and the `unsafe` keyword breaks the association and the rule fires —
//! stale safety arguments drifting away from their code is exactly the
//! failure mode this prevents.
//!
//! The rule applies to **every** crate, including test code: an
//! unsound test can corrupt memory just as well as an unsound kernel.

use crate::engine::{Diagnostic, FileCtx};

const RULE: &str = "unsafe-safety";

/// Check every `unsafe` keyword for an adjacent `SAFETY:` comment.
pub fn check_unsafe_safety(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    for &i in &ctx.code {
        let t = &ctx.toks[i];
        if !t.is_ident("unsafe") {
            continue;
        }
        if has_adjacent_safety_comment(ctx, t.line) {
            continue;
        }
        diags.push(
            ctx.diag(
                RULE,
                t.line,
                "`unsafe` without an immediately preceding `// SAFETY:` comment \
             (same line or the contiguous comment block directly above; \
             blank lines break the association)"
                    .to_string(),
            ),
        );
    }
}

fn has_adjacent_safety_comment(ctx: &FileCtx, unsafe_line: usize) -> bool {
    // Same-line comment (leading or trailing).
    if ctx.lines[unsafe_line].comment_text.contains("SAFETY:") {
        return true;
    }
    // Walk upwards through the contiguous block of comment-only and
    // attribute lines.
    let mut ln = unsafe_line.saturating_sub(1);
    while ln >= 1 {
        let li = &ctx.lines[ln];
        if li.comment_text.contains("SAFETY:") {
            return true;
        }
        let blank = !li.has_code && !li.has_comment;
        if blank {
            return false;
        }
        if li.has_code && !li.starts_attr {
            // A real code line ends the candidate block.
            return false;
        }
        // Comment-only line without SAFETY, or an attribute line: keep going.
        ln -= 1;
    }
    false
}
