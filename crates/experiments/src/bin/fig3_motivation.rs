//! Figure 3: test accuracy over rounds on CIFAR-10 with β = 0.1 and
//! IF ∈ {1, 0.1, 0.01} for FedAvg vs FedCM — the motivation plot showing
//! FedCM's long-tail collapse.

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_series, run_history};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    for imbalance in [1.0, 0.1, 0.01] {
        let exp = ExpConfig::new(DatasetPreset::Cifar10, imbalance, 0.1, cli.scale, cli.seed);
        let mut histories = Vec::new();
        for method in [Method::FedAvg, Method::FedCm] {
            let mut h = run_history(&exp, method, &cli);
            h.name = format!("{}(IF={imbalance})", h.name);
            histories.push(h);
        }
        print_series(
            &format!("Fig.3 accuracy curves, IF={imbalance}"),
            &histories,
        );
        let tail_std: Vec<String> = histories
            .iter()
            .map(|h| {
                format!(
                    "{}: final={:.4} tail-std={:.4}",
                    h.name,
                    h.final_accuracy(3),
                    h.tail_accuracy_std(5)
                )
            })
            .collect();
        println!("# summary: {}", tail_std.join(" | "));
    }
    println!(
        "\nExpected shape (paper Fig. 3): FedCM beats FedAvg at IF=1 but\n\
         fails to converge (low, oscillating accuracy) at IF=0.1 and 0.01."
    );
}
