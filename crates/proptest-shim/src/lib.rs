//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so the real crate cannot
//! be fetched; this workspace-local package provides the subset of the
//! proptest API the test suite uses, with the same names and shapes:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//!   inner attribute),
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter`,
//! * range strategies (`0usize..40`, `0.01f64..1.0`, `a..=b`), tuples of
//!   strategies, [`any`], [`Just`], and `prop::collection::vec`,
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Semantics differ from real proptest in one deliberate way: cases are
//! generated from a **fixed deterministic seed** (derived from the test
//! name), so failures are reproducible without a persistence file, and
//! there is **no shrinking** — the failing inputs are reported as-is by
//! the standard assert panic message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator handed to strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one `(test name, case index)` pair — stable across runs.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// How many random cases to run per property.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite quick
        // while still exercising a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. Unlike real proptest there is no shrinking tree —
/// `sample` produces the final value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generate a value, then use it to build and sample a second strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Reject values failing `pred` (resamples; panics after 1000 misses).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            reason,
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive samples: {}",
            self.reason
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Types with a canonical full-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draw an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: the suite uses these as ordinary numerics.
        (rng.next_f64() - 0.5) * 2.0e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.next_f64() - 0.5) * 2.0e6) as f32
    }
}

/// Full-domain strategy for `T` (`any::<u64>()` etc).
pub struct Any<T>(PhantomData<T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    /// Smallest allowed length.
    pub min: usize,
    /// Largest allowed length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vectors of `elem`-generated values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, SizeRange, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of `proptest::prelude::prop` (module-path strategies).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skip the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                #[allow(clippy::redundant_closure_call)]
                let mut case_fn = || {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    $body
                };
                case_fn();
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::for_case("ranges_respect_bounds", 0);
        for _ in 0..500 {
            let v = Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::sample(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
            let i = Strategy::sample(&(5u64..=5), &mut rng);
            assert_eq!(i, 5);
        }
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::for_case("vec_lengths_in_range", 1);
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0usize..4, 2..6), &mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a: Vec<u64> = (0..8)
            .map(|c| TestRng::for_case("x", c).next_u64())
            .collect();
        let b: Vec<u64> = (0..8)
            .map(|c| TestRng::for_case("x", c).next_u64())
            .collect();
        assert_eq!(a, b);
        assert_ne!(
            TestRng::for_case("x", 0).next_u64(),
            TestRng::for_case("y", 0).next_u64()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(n in 1usize..50, seed in any::<u64>()) {
            prop_assume!(n > 0);
            prop_assert!(n < 50);
            let _ = seed;
            prop_assert_eq!(n + 1, 1 + n);
        }
    }
}
