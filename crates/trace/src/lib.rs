//! Structured observability for the FedWCM stack: scoped spans, a
//! metrics registry, and deterministic clocks — with zero external
//! dependencies.
//!
//! # Why a clock trait
//!
//! The workspace's headline guarantee is bitwise determinism across
//! thread counts and runs, and `fedwcm-lint` bans `Instant::now` /
//! `SystemTime::now` in library code. Time therefore flows through the
//! [`Clock`] trait:
//!
//! * [`LogicalClock`] — a monotone tick counter. Two identical seeded
//!   runs produce **byte-identical** trace streams, which CI diffs at
//!   `FEDWCM_THREADS={1,4}` (`examples/trace_probe.rs`).
//! * [`WallClock`] — real elapsed nanoseconds, blessed by the linter in
//!   exactly one file ([`clock`]); binaries and benches attach it to get
//!   real per-phase timing breakdowns.
//!
//! # Parallel sections
//!
//! A [`Tracer`]'s clock must only be ticked from one thread (the
//! engine's serialized round loop). Work running on pool workers records
//! into a per-task [`SpanBuffer`] via the [`local`] thread-local API,
//! each buffer with its own forked clock starting at 0; the engine then
//! [replays](Tracer::replay) the buffers in sampled-index order. The
//! result: traces are byte-identical at any thread count under
//! [`LogicalClock`].
//!
//! # Span taxonomy
//!
//! `round`, `client_update`, `local_epoch`, `aggregate`,
//! `buffer_flush`, `async_apply`, `evaluate`, `checkpoint`,
//! `fault_inject` — see DESIGN.md §11 for the field contract of each
//! (`buffer_flush` and `async_apply` are the buffered-K and async
//! cadences' aggregation spans; DESIGN.md §12). Every span, point, and
//! metric name is declared once as a constant in [`names`];
//! `fedwcm-lint`'s `metrics-registry` rule rejects string literals in
//! name position at call sites.

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod metrics;
pub mod names;
pub mod prof;
pub mod sink;
pub mod tracer;

pub use clock::{Clock, LogicalClock, WallClock};
pub use event::{Event, EventKind, Value};
pub use metrics::{
    validate_bounds, BoundsError, HistogramSnapshot, MetricEntry, MetricValue, MetricsRegistry,
    MetricsSnapshot,
};
pub use sink::{ConsoleSink, JsonlSink, NullSink, RingSink, SharedBuf, Sink};
pub use tracer::{local, SpanBuffer, SpanGuard, Tracer};

/// Compile-time switch for the `debug_invariants` feature: NaN
/// observations panic (naming the metric) when enabled, and are counted
/// into the histogram's `nan_rejected` slot when disabled.
pub const INVARIANTS_ENABLED: bool = cfg!(feature = "debug_invariants");

/// Recover a mutex guard even if a holder panicked: the protected state
/// (event buffers, metric maps) is valid after every individual update,
/// so continuing with the recovered guard is sound.
pub(crate) fn lock_recover<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
