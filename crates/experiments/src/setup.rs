//! Task construction: dataset generation, partitioning, model factory,
//! and the FL configuration — per preset and scale.

use crate::cli::Scale;
use fedwcm_data::dataset::Dataset;
use fedwcm_data::longtail::longtail_counts_with_total;
use fedwcm_data::partition::{fedgrab_partition, paper_partition, Partition};
use fedwcm_data::synth::{DatasetPreset, FeatureShape};
use fedwcm_fl::client::ModelFactory;
use fedwcm_fl::Cadence;
use fedwcm_fl::{FlConfig, Simulation};
use fedwcm_nn::models::{mlp, res_lite};
use fedwcm_stats::Xoshiro256pp;

/// Full description of one experimental condition.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Dataset preset (paper dataset stand-in).
    pub preset: DatasetPreset,
    /// Imbalance factor `IF ∈ (0, 1]`.
    pub imbalance: f64,
    /// Dirichlet heterogeneity `β`.
    pub beta: f64,
    /// Clients `K`.
    pub clients: usize,
    /// Participation rate.
    pub participation: f64,
    /// Communication rounds.
    pub rounds: usize,
    /// Local epochs.
    pub local_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Total training samples (split into the long-tail profile).
    pub train_total: usize,
    /// Base seed.
    pub seed: u64,
    /// Use the FedGrab (quantity-skewed) partition instead of the paper's
    /// equal-quantity partition.
    pub fedgrab_partition: bool,
    /// Server aggregation cadence for the engine.
    pub cadence: Cadence,
}

impl ExpConfig {
    /// Default condition at the given scale for one preset.
    ///
    /// The paper defaults are β=0.1, IF=0.1, 100 clients at 10%
    /// participation, 500 rounds (40 clients / 300 rounds for the
    /// 100-class presets); smoke/quick shrink everything proportionally.
    pub fn new(preset: DatasetPreset, imbalance: f64, beta: f64, scale: Scale, seed: u64) -> Self {
        let many_classes = preset.spec().classes > 10;
        let (clients, participation, rounds, train_total, epochs, batch) = match scale {
            Scale::Smoke => (8, 0.5, 8, 800, 1, 20),
            Scale::Quick => {
                if many_classes {
                    (12, 0.34, 60, 3_000, 3, 20)
                } else {
                    (20, 0.25, 100, 2_000, 5, 20)
                }
            }
            Scale::Paper => {
                if many_classes {
                    (40, 0.1, 300, preset.spec().default_train_total, 5, 50)
                } else {
                    (100, 0.1, 500, preset.spec().default_train_total, 5, 50)
                }
            }
        };
        ExpConfig {
            preset,
            imbalance,
            beta,
            clients,
            participation,
            rounds,
            local_epochs: epochs,
            batch_size: batch,
            train_total,
            seed,
            fedgrab_partition: false,
            cadence: Cadence::Sync,
        }
    }

    /// The paper's default condition (β=0.1, IF=0.1) on CIFAR-10.
    pub fn default_cifar10(scale: Scale, seed: u64) -> Self {
        Self::new(DatasetPreset::Cifar10, 0.1, 0.1, scale, seed)
    }

    /// Materialise the datasets, partition, and model factory.
    pub fn prepare(&self) -> PreparedTask {
        assert!(self.imbalance > 0.0 && self.imbalance <= 1.0);
        let spec = self.preset.spec();
        let counts = longtail_counts_with_total(spec.classes, self.train_total, self.imbalance);
        let train = spec.generate_train(&counts, self.seed);
        let test = spec.generate_test(self.seed);
        let partition = if self.fedgrab_partition {
            fedgrab_partition(&train, self.clients, self.beta, self.seed)
        } else {
            paper_partition(&train, self.clients, self.beta, self.seed)
        };

        let preset = self.preset;
        let factory: Box<ModelFactory> = Box::new(move || {
            let mut rng = Xoshiro256pp::seed_from(0xF_AC70 ^ preset.spec().classes as u64);
            match preset.spec().shape {
                FeatureShape::Flat(d) => mlp(d, &[64], preset.spec().classes, &mut rng),
                FeatureShape::Image(c, h, w) => {
                    let width = if preset.spec().classes > 10 { 16 } else { 12 };
                    res_lite(c, h, w, preset.spec().classes, width, &mut rng)
                }
            }
        });

        let fl = FlConfig {
            clients: self.clients,
            participation: self.participation,
            rounds: self.rounds,
            local_epochs: self.local_epochs,
            batch_size: self.batch_size,
            local_lr: 0.1,
            global_lr: 1.0,
            seed: self.seed,
            threads: 0,
            eval_every: (self.rounds / 20).max(1),
            cadence: self.cadence,
            ..FlConfig::default_sim()
        };
        PreparedTask {
            exp: self.clone(),
            train,
            test,
            partition,
            fl,
            factory,
        }
    }
}

/// A fully materialised federated task, ready to run algorithms on.
pub struct PreparedTask {
    /// The condition this task realises.
    pub exp: ExpConfig,
    /// Training dataset (long-tailed).
    pub train: Dataset,
    /// Balanced test dataset.
    pub test: Dataset,
    /// Client partition.
    pub partition: Partition,
    /// Engine configuration.
    pub fl: FlConfig,
    /// Model constructor.
    pub factory: Box<ModelFactory>,
}

impl PreparedTask {
    /// Build the engine simulation (borrows the task's datasets).
    pub fn simulation(&self) -> Simulation<'_> {
        let views = self.partition.views(&self.train);
        let factory = clone_factory(&self.exp);
        Simulation::new(self.fl.clone(), &self.train, &self.test, views, factory)
    }

    /// Global training class counts (prior analyzers, Balance Loss).
    pub fn global_counts(&self) -> Vec<usize> {
        self.train.class_counts()
    }

    /// The reference local step count `B̂` for FedWCM-X.
    pub fn standard_batches(&self) -> usize {
        fedwcm_core::FedWcmX::standard_batches_for(
            self.train.len(),
            self.fl.clients,
            self.fl.batch_size,
            self.fl.local_epochs,
        )
    }
}

fn clone_factory(exp: &ExpConfig) -> Box<ModelFactory> {
    let preset = exp.preset;
    Box::new(move || {
        let mut rng = Xoshiro256pp::seed_from(0xF_AC70 ^ preset.spec().classes as u64);
        match preset.spec().shape {
            FeatureShape::Flat(d) => mlp(d, &[64], preset.spec().classes, &mut rng),
            FeatureShape::Image(c, h, w) => {
                let width = if preset.spec().classes > 10 { 16 } else { 12 };
                res_lite(c, h, w, preset.spec().classes, width, &mut rng)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_smoke_task() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 0.1, 0.1, Scale::Smoke, 1);
        let task = exp.prepare();
        assert_eq!(task.train.len(), 800);
        assert_eq!(task.partition.num_clients(), 8);
        assert_eq!(task.test.classes(), 10);
        let sim = task.simulation();
        assert_eq!(sim.cfg.clients, 8);
    }

    #[test]
    fn factory_is_deterministic() {
        let exp = ExpConfig::new(DatasetPreset::Cifar10, 0.5, 0.6, Scale::Smoke, 2);
        let task = exp.prepare();
        let m1 = (task.factory)();
        let m2 = (task.factory)();
        assert_eq!(m1.params(), m2.params());
        assert_eq!(m1.out_features(), 10);
    }

    #[test]
    fn hundred_class_preset_uses_wider_model() {
        let exp = ExpConfig::new(DatasetPreset::Cifar100, 0.1, 0.1, Scale::Smoke, 3);
        let task = exp.prepare();
        let m = (task.factory)();
        assert_eq!(m.out_features(), 100);
    }

    #[test]
    fn fedgrab_partition_flag_changes_partition() {
        let mut exp = ExpConfig::new(DatasetPreset::FashionMnist, 0.1, 0.1, Scale::Smoke, 4);
        let equal = exp.prepare();
        exp.fedgrab_partition = true;
        let skewed = exp.prepare();
        let equal_sizes: Vec<f64> = equal
            .partition
            .client_sizes()
            .iter()
            .map(|&s| s as f64)
            .collect();
        let skewed_sizes: Vec<f64> = skewed
            .partition
            .client_sizes()
            .iter()
            .map(|&s| s as f64)
            .collect();
        assert!(
            fedwcm_stats::describe::gini(&skewed_sizes)
                > fedwcm_stats::describe::gini(&equal_sizes)
        );
    }

    #[test]
    fn standard_batches_positive() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 1.0, 0.6, Scale::Smoke, 5);
        let task = exp.prepare();
        assert!(task.standard_batches() >= 1);
    }
}
