//! Cadence determinism probe for CI.
//!
//! Runs the same small federated task under all three aggregation
//! cadences — synchronous, buffered-K, and fully asynchronous — with
//! `cfg.threads = 0` (the `FEDWCM_THREADS` env var decides the worker
//! count) and a fault plan that exercises stragglers, so the buffered
//! and async paths see genuine staleness. Every round metric is printed
//! at full bit precision. CI runs this twice — `FEDWCM_THREADS=1` and
//! `FEDWCM_THREADS=4` — and diffs the output: any byte of difference
//! means one of the cadence paths stopped being bitwise deterministic.
//!
//! The buffered threshold (2) is deliberately below the 3-client cohort
//! and the async window (2) deliberately below the arrival rate, so
//! both paths genuinely buffer across rounds instead of degenerating
//! into the synchronous barrier.

use fedwcm_algos::fedavg::FedAvg;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_faults::{FaultConfig, FaultPlan};
use fedwcm_fl::{Cadence, FlConfig, Simulation};
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;

fn main() {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 40, 0.5);
    let train = spec.generate_train(&counts, 31);
    let test = spec.generate_test(31);

    for cadence in [
        Cadence::Sync,
        Cadence::BufferedK { k: 2 },
        Cadence::Async { max_in_flight: 2 },
    ] {
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 6;
        cfg.participation = 0.5;
        cfg.rounds = 5;
        cfg.eval_every = 2;
        cfg.threads = 0; // defer to FEDWCM_THREADS
        cfg.cadence = cadence;

        let part = paper_partition(&train, cfg.clients, 0.5, cfg.seed);
        let views = part.views(&train);
        let sim = Simulation::new(
            cfg,
            &train,
            &test,
            views,
            Box::new(|| {
                let mut rng = Xoshiro256pp::seed_from(1234);
                mlp(64, &[32], 10, &mut rng)
            }),
        )
        .with_fault_plan(FaultPlan::new(FaultConfig {
            dropout: 0.15,
            straggler: 0.25,
            max_delay: 2,
            ..FaultConfig::zero(0xCAD)
        }));

        let history = sim.run(&mut FedAvg::new());
        for r in &history.records {
            println!(
                "cadence={} round={} aggs={} loss_bits={} norm_bits={:#018x} acc_bits={}",
                cadence.label(),
                r.round,
                r.aggregations,
                r.train_loss
                    .map(|l| format!("{:#018x}", l.to_bits()))
                    .unwrap_or_else(|| "-".into()),
                r.update_norm.to_bits(),
                r.test_acc
                    .map(|a| format!("{:#018x}", a.to_bits()))
                    .unwrap_or_else(|| "-".into()),
            );
        }
    }
}
