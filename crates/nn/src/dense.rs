//! Fully-connected (dense) layer.

use crate::layer::{he_std, init_weights_biases, Layer};
use fedwcm_stats::Xoshiro256pp;
use fedwcm_tensor::matmul::{matmul_a_bt_into, matmul_at_b_into};
use fedwcm_tensor::Tensor;

/// `y = x·Wᵀ + b`, with `W` stored row-major as `[out, in]` (so the
/// forward pass is the contiguous-dot kernel `matmul_a_bt`).
#[derive(Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// New dense layer `in → out`.
    pub fn new(in_features: usize, out_features: usize) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dense dims must be positive"
        );
        Dense {
            in_features,
            out_features,
            cached_input: None,
        }
    }

    fn weight_len(&self) -> usize {
        self.in_features * self.out_features
    }
}

impl Layer for Dense {
    fn name(&self) -> &'static str {
        "dense"
    }

    fn out_features(&self, in_features: usize) -> usize {
        assert_eq!(in_features, self.in_features, "dense input width mismatch");
        self.out_features
    }

    fn param_len(&self) -> usize {
        self.weight_len() + self.out_features
    }

    fn init_params(&self, params: &mut [f32], rng: &mut Xoshiro256pp) {
        init_weights_biases(params, self.weight_len(), he_std(self.in_features), rng);
    }

    fn forward(&mut self, params: &[f32], input: &Tensor, train: bool) -> Tensor {
        let batch = input.rows();
        assert_eq!(
            input.cols(),
            self.in_features,
            "dense forward width mismatch"
        );
        let (w, b) = params.split_at(self.weight_len());
        let mut out = Tensor::zeros(&[batch, self.out_features]);
        matmul_a_bt_into(
            input.as_slice(),
            w,
            out.as_mut_slice(),
            batch,
            self.in_features,
            self.out_features,
        );
        for r in 0..batch {
            let row = out.row_mut(r);
            for (y, bias) in row.iter_mut().zip(b) {
                *y += bias;
            }
        }
        if train {
            self.cached_input = Some(input.clone());
        }
        out
    }

    fn backward(&mut self, params: &[f32], grad_params: &mut [f32], grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            // lint:allow(panic-freedom) documented Layer trait contract:
            // backward is only valid after forward(train=true) cached the
            // activations; calling it cold is a harness bug, not data.
            .expect("dense backward without forward(train=true)");
        let batch = input.rows();
        assert_eq!(grad_out.rows(), batch);
        assert_eq!(grad_out.cols(), self.out_features);
        let (w, _) = params.split_at(self.weight_len());
        let (gw, gb) = grad_params.split_at_mut(self.weight_len());

        // gW[o, i] += Σ_batch grad_out[b, o] * input[b, i]  →  gradᵀ·x
        matmul_at_b_into(
            grad_out.as_slice(),
            input.as_slice(),
            gw,
            batch,
            self.out_features,
            self.in_features,
        );
        // gb += column sums of grad_out
        for r in 0..batch {
            for (g, go) in gb.iter_mut().zip(grad_out.row(r)) {
                *g += go;
            }
        }
        // grad_in = grad_out · W   ([batch,out]·[out,in])
        let mut grad_in = Tensor::zeros(&[batch, self.in_features]);
        fedwcm_tensor::matmul::matmul_into(
            grad_out.as_slice(),
            w,
            grad_in.as_mut_slice(),
            batch,
            self.out_features,
            self.in_features,
        );
        grad_in
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_stats::rng::Rng;

    #[test]
    fn forward_known_values() {
        let mut d = Dense::new(2, 2);
        // W = [[1,2],[3,4]] (rows = output units), b = [10, 20]
        let params = vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0];
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = d.forward(&params, &x, false);
        assert_eq!(y.as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn param_len_counts_weights_and_biases() {
        let d = Dense::new(5, 3);
        assert_eq!(d.param_len(), 5 * 3 + 3);
    }

    #[test]
    fn init_bias_zero_weights_scaled() {
        let d = Dense::new(100, 50);
        let mut params = vec![9.0; d.param_len()];
        let mut rng = Xoshiro256pp::seed_from(1);
        d.init_params(&mut params, &mut rng);
        let (w, b) = params.split_at(5000);
        assert!(b.iter().all(|&x| x == 0.0));
        let var = w.iter().map(|x| x * x).sum::<f32>() / w.len() as f32;
        assert!((var - 0.02).abs() < 0.005, "He var {var}"); // 2/100
    }

    #[test]
    fn backward_bias_gradient_is_batch_sum() {
        let mut d = Dense::new(2, 2);
        let params = vec![0.0; d.param_len()];
        let mut grads = vec![0.0; d.param_len()];
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let _ = d.forward(&params, &x, true);
        let go = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let _ = d.backward(&params, &mut grads, &go);
        // Bias grads are the column sums of grad_out.
        assert_eq!(&grads[4..], &[4.0, 6.0]);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = Xoshiro256pp::seed_from(3);
        let mut d = Dense::new(4, 3);
        let mut params = vec![0.0; d.param_len()];
        d.init_params(&mut params, &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        // Scalar objective: sum of outputs weighted by a fixed tensor.
        let wsum = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let objective = |p: &[f32], d: &mut Dense| -> f32 {
            let y = d.forward(p, &x, false);
            y.as_slice()
                .iter()
                .zip(wsum.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        // Analytic gradients.
        let _ = d.forward(&params, &x, true);
        let mut grads = vec![0.0; params.len()];
        let gx = d.backward(&params, &mut grads, &wsum);
        // Finite differences on params.
        let eps = 1e-3;
        for i in (0..params.len()).step_by(3) {
            let mut p = params.clone();
            p[i] += eps;
            let up = objective(&p, &mut d);
            p[i] -= 2.0 * eps;
            let down = objective(&p, &mut d);
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads[i]).abs() < 2e-2,
                "param {i}: fd {fd} vs {}",
                grads[i]
            );
        }
        // Finite differences on input.
        let xs = x.as_slice();
        for i in 0..xs.len() {
            let mut xp = xs.to_vec();
            xp[i] += eps;
            let up = {
                let t = Tensor::from_vec(xp.clone(), &[2, 4]);
                let y = d.forward(&params, &t, false);
                y.as_slice()
                    .iter()
                    .zip(wsum.as_slice())
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
            };
            xp[i] -= 2.0 * eps;
            let down = {
                let t = Tensor::from_vec(xp, &[2, 4]);
                let y = d.forward(&params, &t, false);
                y.as_slice()
                    .iter()
                    .zip(wsum.as_slice())
                    .map(|(a, b)| a * b)
                    .sum::<f32>()
            };
            let fd = (up - down) / (2.0 * eps);
            assert!((fd - gx.as_slice()[i]).abs() < 2e-2, "input {i}");
        }
        let _ = rng.next_u64();
    }
}
