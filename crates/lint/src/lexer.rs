//! A small hand-rolled Rust lexer.
//!
//! The lint rules are token-sequence patterns, so the lexer's only real
//! job is to classify source text well enough that **rules never fire
//! inside comments, string literals, raw strings, char literals, or
//! lifetimes**. It does not parse; it tokenizes:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments
//!   (`/* /* */ */`, `/** */`, `/*! */`) become single tokens carrying
//!   their full text and line span;
//! * plain, byte, and raw strings (`"…"`, `b"…"`, `r"…"`, `r#"…"#`,
//!   `br##"…"##`, `c"…"`, `cr#"…"#`) become [`TokKind::Str`] tokens —
//!   an `unwrap()` spelled inside one is invisible to every rule;
//! * `'a` lifetimes are distinguished from `'x'` / `b'\n'` char
//!   literals;
//! * raw identifiers (`r#fn`) lex as identifiers, not raw strings.
//!
//! Numeric literals are lexed conservatively: a `.` is consumed only
//! when followed by a digit, so `0..n` ranges and `x.0.unwrap()` tuple
//! chains keep their `.` punctuation tokens intact.

/// Classification of a single token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers).
    Ident,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Numeric literal.
    Number,
    /// String literal of any flavour (plain, byte, raw, C).
    Str,
    /// Character or byte-character literal.
    Char,
    /// Single punctuation character.
    Punct(char),
    /// `//`-style comment; `doc` marks `///` and `//!` forms.
    LineComment {
        /// True for `///` (outer) and `//!` (inner) doc comments.
        doc: bool,
    },
    /// `/* */`-style comment (nesting handled); `doc` marks `/**`, `/*!`.
    BlockComment {
        /// True for `/**` (outer) and `/*!` (inner) doc comments.
        doc: bool,
    },
}

/// One lexed token with its text and 1-based line span.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token classification.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
    /// 1-based line the token ends on (differs for multi-line tokens).
    pub end_line: usize,
}

impl Tok {
    /// True for line and block comments.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment { .. } | TokKind::BlockComment { .. }
        )
    }

    /// True for doc comments (`///`, `//!`, `/**`, `/*!`).
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self.kind,
            TokKind::LineComment { doc: true } | TokKind::BlockComment { doc: true }
        )
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Never fails: unrecognised bytes become `Punct`
/// tokens, and unterminated literals extend to end of input — good
/// enough for a linter that runs on code rustc already accepted.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, start_line: usize) {
        let text: String = self.chars[start..self.i].iter().collect();
        self.out.push(Tok {
            kind,
            text,
            line: start_line,
            end_line: self.line,
        });
    }

    fn run(mut self) -> Vec<Tok> {
        // A shebang (`#!/usr/bin/env …` on line 1) lexes as one
        // non-doc line comment, not as `#`/`!` punctuation — it would
        // otherwise look like the start of an inner attribute.
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) == Some('/') {
            let (start, start_line) = (self.i, self.line);
            while self.peek(0).is_some_and(|c| c != '\n') {
                self.i += 1;
            }
            self.push(TokKind::LineComment { doc: false }, start, start_line);
        }
        while let Some(c) = self.peek(0) {
            match c {
                '\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ if c.is_whitespace() => self.i += 1,
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(0),
                '\'' => self.char_or_lifetime(),
                _ if c.is_ascii_digit() => self.number(),
                _ if is_ident_start(c) => self.ident_or_prefixed(),
                _ => {
                    let (start, start_line) = (self.i, self.line);
                    self.i += 1;
                    self.push(TokKind::Punct(c), start, start_line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let (start, start_line) = (self.i, self.line);
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        // `////…` dividers are not doc comments; `///` and `//!` are.
        let doc = (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        self.push(TokKind::LineComment { doc }, start, start_line);
    }

    fn block_comment(&mut self) {
        let (start, start_line) = (self.i, self.line);
        self.i += 2;
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek(0) {
                None => break,
                Some('\n') => {
                    self.line += 1;
                    self.i += 1;
                }
                Some('/') if self.peek(1) == Some('*') => {
                    depth += 1;
                    self.i += 2;
                }
                Some('*') if self.peek(1) == Some('/') => {
                    depth -= 1;
                    self.i += 2;
                }
                Some(_) => self.i += 1,
            }
        }
        let text: String = self.chars[start..self.i].iter().collect();
        // `/**/` and `/***…` are not doc comments; `/**…` and `/*!…` are.
        let doc = (text.starts_with("/**") && !text.starts_with("/***") && text.len() > 4)
            || text.starts_with("/*!");
        self.push(TokKind::BlockComment { doc }, start, start_line);
    }

    /// Plain (non-raw) string starting `hashes == 0` at `"`, or a raw
    /// string with `hashes` `#`s already consumed (caller positioned us
    /// at the opening `"`).
    fn string(&mut self, hashes: usize) {
        let (start, start_line) = (self.i - hashes, self.line);
        self.i += 1; // opening quote
        if hashes == 0 {
            while let Some(c) = self.peek(0) {
                match c {
                    '\\' => self.i += 2,
                    '"' => {
                        self.i += 1;
                        break;
                    }
                    '\n' => {
                        self.line += 1;
                        self.i += 1;
                    }
                    _ => self.i += 1,
                }
            }
        } else {
            // Raw string: ends at `"` followed by `hashes` `#`s; no escapes.
            'scan: while let Some(c) = self.peek(0) {
                if c == '\n' {
                    self.line += 1;
                    self.i += 1;
                    continue;
                }
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if self.peek(1 + k) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        self.i += 1 + hashes;
                        break 'scan;
                    }
                }
                self.i += 1;
            }
        }
        self.push(TokKind::Str, start, start_line);
    }

    fn char_or_lifetime(&mut self) {
        let (start, start_line) = (self.i, self.line);
        match self.peek(1) {
            // `'a` / `'static` — lifetime unless closed by another quote
            // (`'a'` is a char literal).
            Some(c) if is_ident_start(c) => {
                let mut j = 2;
                while self.peek(j).is_some_and(is_ident_continue) {
                    j += 1;
                }
                if self.peek(j) == Some('\'') && j == 2 {
                    self.i += j + 1;
                    self.push(TokKind::Char, start, start_line);
                } else {
                    self.i += j;
                    self.push(TokKind::Lifetime, start, start_line);
                }
            }
            // Escaped char literal `'\n'`, `'\''`, `'\u{1F600}'`.
            Some('\\') => {
                self.i += 2; // quote + backslash
                self.i += 1; // escaped char
                while self.peek(0).is_some_and(|c| c != '\'') {
                    self.i += 1;
                }
                self.i += 1;
                self.push(TokKind::Char, start, start_line);
            }
            // `'{'`-style single char literal.
            Some(_) => {
                self.i += 2;
                if self.peek(0) == Some('\'') {
                    self.i += 1;
                }
                self.push(TokKind::Char, start, start_line);
            }
            None => {
                self.i += 1;
                self.push(TokKind::Punct('\''), start, start_line);
            }
        }
    }

    fn number(&mut self) {
        let (start, start_line) = (self.i, self.line);
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b')) {
            self.i += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                self.i += 1;
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                self.i += 1;
            }
            // Fractional part: take `.` only when a digit follows, so
            // ranges (`0..n`) and tuple access keep their dots.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    self.i += 1;
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let sign = usize::from(matches!(self.peek(1), Some('+') | Some('-')));
                if self.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
                    self.i += 1 + sign;
                    while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                        self.i += 1;
                    }
                }
            }
        }
        // Type suffix (`f32`, `usize`, …).
        while self.peek(0).is_some_and(is_ident_continue) {
            self.i += 1;
        }
        self.push(TokKind::Number, start, start_line);
    }

    fn ident_or_prefixed(&mut self) {
        let (start, start_line) = (self.i, self.line);
        let mut j = 0;
        while self.peek(j).is_some_and(is_ident_continue) {
            j += 1;
        }
        let ident: String = self.chars[self.i..self.i + j].iter().collect();

        // String-literal prefixes: the ident runs straight into a quote
        // (or `#`s then a quote for raw strings).
        let is_raw_prefix = matches!(ident.as_str(), "r" | "br" | "cr");
        let is_plain_prefix = matches!(ident.as_str(), "b" | "c");
        if (is_raw_prefix || is_plain_prefix) && self.peek(j) == Some('"') {
            self.i += j;
            self.string(0);
            return;
        }
        if is_raw_prefix && self.peek(j) == Some('#') {
            let mut hashes = 0;
            while self.peek(j + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(j + hashes) == Some('"') {
                self.i += j + hashes;
                self.string(hashes);
                return;
            }
            // `r#ident` raw identifier.
            if ident == "r" && hashes == 1 && self.peek(j + 1).is_some_and(is_ident_start) {
                self.i += j + 1;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.i += 1;
                }
                self.push(TokKind::Ident, start, start_line);
                return;
            }
        }
        // Byte char literal `b'x'`.
        if ident == "b" && self.peek(j) == Some('\'') {
            self.i += j;
            self.char_or_lifetime();
            return;
        }
        self.i += j;
        self.push(TokKind::Ident, start, start_line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "a", "unwrap"]);
    }

    #[test]
    fn strings_swallow_keywords() {
        let toks = kinds(r#"let s = "unsafe { x.unwrap() }";"#);
        assert!(toks.iter().all(|(k, _)| *k != TokKind::Ident || {
            let _ = k;
            true
        }));
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"panic!("inner")"#; done"###);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "done"]);
    }

    #[test]
    fn raw_identifier_is_ident() {
        let toks = kinds("fn r#unsafe() {}");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#unsafe"));
    }

    #[test]
    fn comments_carry_text_and_lines() {
        let toks = lex("// SAFETY: fine\nunsafe {}\n/* block\nspans */ x");
        assert!(matches!(toks[0].kind, TokKind::LineComment { doc: false }));
        assert_eq!(toks[0].line, 1);
        assert!(toks[0].text.contains("SAFETY:"));
        let block = toks
            .iter()
            .find(|t| matches!(t.kind, TokKind::BlockComment { .. }));
        let block = block.expect("block comment lexed");
        assert_eq!((block.line, block.end_line), (3, 4));
    }

    #[test]
    fn doc_comment_flags() {
        assert!(lex("/// docs")[0].is_doc_comment());
        assert!(lex("//! inner docs")[0].is_doc_comment());
        assert!(!lex("//// divider")[0].is_doc_comment());
        assert!(!lex("// plain")[0].is_doc_comment());
        assert!(lex("/** block doc */")[0].is_doc_comment());
        assert!(!lex("/* plain block */")[0].is_doc_comment());
    }

    #[test]
    fn nested_block_comment() {
        let toks = lex("/* outer /* inner */ still comment */ x");
        assert_eq!(toks.len(), 2);
        assert!(toks[0].is_comment());
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn numbers_keep_range_dots() {
        let toks = kinds("for i in 0..n { x.0.unwrap(); 1.5e-3; 0xFF; }");
        // The `..` must survive as two puncts (2), and both dots around
        // the tuple index in `x.0.unwrap` stay puncts (2 more); only
        // `1.5e-3` absorbs its dot into the number literal.
        let dots = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Punct('.'))
            .count();
        assert_eq!(dots, 4);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Number && t == "1.5e-3"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Number && t == "0xFF"));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn shebang_line_is_a_comment() {
        let toks = lex("#!/usr/bin/env run-cargo-script\nfn main() {}\n");
        assert!(matches!(toks[0].kind, TokKind::LineComment { doc: false }));
        assert!(toks[0].text.starts_with("#!/usr/bin"));
        assert!(toks[1].is_ident("fn"));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        // `#![allow(...)]` starts with `#!` but has no `/`: it must lex
        // as ordinary puncts + idents, and only at offset 0 would a
        // shebang be considered at all.
        let toks = kinds("#![allow(dead_code)]\nx");
        assert_eq!(toks[0], (TokKind::Punct('#'), "#".to_string()));
        assert_eq!(toks[1], (TokKind::Punct('!'), "!".to_string()));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "allow"));
    }

    #[test]
    fn multiline_raw_string_tracks_end_line() {
        let toks = lex("let s = r#\"line one\nline two\"#;\nnext");
        let s = toks
            .iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("raw string lexed");
        assert_eq!((s.line, s.end_line), (1, 2));
        let next = toks.iter().find(|t| t.is_ident("next")).expect("ident");
        assert_eq!(next.line, 3);
    }

    #[test]
    fn escaped_quote_char_is_not_a_lifetime() {
        let toks = kinds(r"let c = '\''; let l: &'static str = s;");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'static"]);
    }
}
