//! Figures 14–16: per-layer neuron-concentration trajectories for
//! FedAvg (Fig. 14), FedCM (Fig. 15), and FedWCM (Fig. 16) at β = 0.1,
//! IF = 0.1.

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::collapse::{print_trace_csv, run_with_concentration};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let exp = ExpConfig::new(DatasetPreset::Cifar10, 0.1, 0.1, cli.scale, cli.seed);
    for (fig, method) in [
        (14, Method::FedAvg),
        (15, Method::FedCm),
        (16, Method::FedWcm),
    ] {
        let trace = run_with_concentration(&exp, method, &cli, 1);
        print_trace_csv(
            &format!("Fig.{fig} per-layer concentration — {}", trace.name),
            &trace.layer_names,
            &trace.per_layer,
        );
        console.info(format!("[fig14-16] {} done", method.label()));
    }
    println!(
        "\nExpected shape (paper Figs. 14–16): FedAvg's layers decline\n\
         smoothly; FedCM's fluctuate periodically at all layers; FedWCM\n\
         stays stable with a mostly-declining trend."
    );
}
