//! Power-law fitting for the Theorem 6.1 convergence-rate check.
//!
//! The theorem bounds `(1/R) Σ_r E‖∇f(x_r)‖² ≲ √(LΔσ²/NKR) + LΔ/R`: in
//! the noise-dominated regime the average gradient norm decays like
//! `R^{−1/2}`. Running the quadratic testbed at several `R` and fitting
//! `log y = a + b·log x` should recover `b ≈ −0.5` (and `≈ −1` in the
//! noiseless regime).

/// Least-squares fit of `y = c · x^b` via log-log regression.
/// Returns `(exponent b, coefficient c)`. Requires positive data.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0 && v.is_finite()),
        "power-law fit needs positive finite data"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(var > 0.0, "xs must not be constant");
    let b = cov / var;
    let a = my - b * mx;
    (b, a.exp())
}

/// Average the Theorem 6.1 quantity from a per-round gradient-norm series.
pub fn mean_grad_norm(norms: &[f64]) -> f64 {
    assert!(!norms.is_empty());
    norms.iter().sum::<f64>() / norms.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_fl::quadratic::{run_quadratic_fedcm, QuadRunConfig, QuadraticProblem};

    #[test]
    fn recovers_known_exponent() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(-0.5)).collect();
        let (b, c) = fit_power_law(&xs, &ys);
        assert!((b + 0.5).abs() < 1e-9, "b {b}");
        assert!((c - 3.0).abs() < 1e-9, "c {c}");
    }

    #[test]
    fn quadratic_testbed_rate_close_to_theorem() {
        // Noise-dominated regime: average ‖∇f‖² over rounds should decay
        // roughly like R^(−1/2) … R^(−1).
        let p = QuadraticProblem::random(8, 10, 1.5, 0.5, 42);
        let rs = [20usize, 40, 80, 160, 320];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for &r in &rs {
            let cfg = QuadRunConfig {
                local_steps: 4,
                rounds: r,
                local_lr: 0.03,
                alpha: 0.2,
                seed: 7,
            };
            let norms = run_quadratic_fedcm(&p, &cfg);
            xs.push(r as f64);
            ys.push(mean_grad_norm(&norms));
        }
        let (b, _) = fit_power_law(&xs, &ys);
        assert!(
            (-1.6..=-0.35).contains(&b),
            "rate exponent {b} outside the theorem's band"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_data() {
        let _ = fit_power_law(&[1.0, 2.0], &[0.0, 1.0]);
    }
}
