//! FedDyn (Acar et al., 2021): dynamic regularisation.
//!
//! Each client keeps a Lagrangian-style state `h_i`; the local objective
//! is `f_i(x) − ⟨h_i, x⟩ + (λ/2)‖x − x_r‖²`, so the local gradient is
//! `g − h_i + λ(x − x_r)`. After local training `h_i ← h_i − λ(x_B − x_r)`,
//! and the server sets `x_{r+1} = mean(x_B) − h̄/λ` with `h̄` the mean
//! state over *all* clients.

use fedwcm_fl::algorithm::{FederatedAlgorithm, RoundInput, RoundLog, StateError};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::serialize::{put_f32s, put_u64, ByteReader};

/// FedDyn with regularisation coefficient λ.
pub struct FedDyn {
    /// Dynamic-regularisation coefficient λ (typical 0.01–0.1).
    pub lambda: f32,
    states: Vec<Vec<f32>>,
    mean_state: Vec<f32>,
    num_clients: usize,
}

impl FedDyn {
    /// New FedDyn for `num_clients` clients.
    pub fn new(lambda: f32, num_clients: usize) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        FedDyn {
            lambda,
            states: vec![Vec::new(); num_clients],
            mean_state: Vec::new(),
            num_clients,
        }
    }
}

impl FederatedAlgorithm for FedDyn {
    fn name(&self) -> String {
        format!("FedDyn(lambda={})", self.lambda)
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        let lambda = self.lambda;
        let h = &self.states[env.id];
        run_local_sgd(env, global, &spec, |grad, params, _| {
            if h.is_empty() {
                for ((g, p), x0) in grad.iter_mut().zip(params).zip(global) {
                    *g += lambda * (p - x0);
                }
            } else {
                for (((g, p), x0), hi) in grad.iter_mut().zip(params).zip(global).zip(h) {
                    *g += lambda * (p - x0) - hi;
                }
            }
        })
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let dim = global.len();
        if self.mean_state.is_empty() {
            self.mean_state = vec![0.0f32; dim];
        }
        let lr = input.cfg.local_lr;

        // Mean of final local models, and per-client state refresh.
        let mut mean_final = vec![0.0f32; dim];
        let inv = 1.0 / input.updates.len() as f32;
        for u in &input.updates {
            let steps = lr * u.num_batches as f32;
            let h = &mut self.states[u.client];
            if h.is_empty() {
                *h = vec![0.0f32; dim];
            }
            for (j, ((m, d), x0)) in mean_final
                .iter_mut()
                .zip(&u.delta)
                .zip(global.iter())
                .enumerate()
            {
                let x_final = x0 - steps * d;
                *m += inv * x_final;
                // h_i ← h_i − λ(x_B − x_r) = h_i + λ·steps·delta
                let dh = self.lambda * steps * d;
                h[j] += dh;
                self.mean_state[j] += dh / self.num_clients as f32;
            }
        }

        // Server: x = mean(x_B) − h̄/λ, tempered by the global lr.
        let gl = input.cfg.global_lr;
        for ((x, m), hbar) in global.iter_mut().zip(&mean_final).zip(&self.mean_state) {
            let target = m - hbar / self.lambda;
            *x = *x + gl * (target - *x);
        }
        RoundLog::default()
    }

    // Cross-round state: per-client Lagrangian states and their mean.
    fn save_state(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        put_f32s(&mut out, &self.mean_state);
        put_u64(&mut out, self.states.len() as u64);
        for h in &self.states {
            put_f32s(&mut out, h);
        }
        Some(out)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = ByteReader::new(bytes);
        let mean_state = r.f32s().ok_or(StateError::Malformed)?;
        let n = r.u64().ok_or(StateError::Malformed)? as usize;
        if n != self.num_clients {
            return Err(StateError::Malformed);
        }
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            states.push(r.f32s().ok_or(StateError::Malformed)?);
        }
        if !r.is_exhausted() {
            return Err(StateError::Malformed);
        }
        self.mean_state = mean_state;
        self.states = states;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build_sim, small_task};

    #[test]
    fn learns_heterogeneous_task() {
        let (train, test, cfg) = small_task(71, 1.0);
        let clients = cfg.clients;
        let sim = build_sim(&train, &test, cfg, 0.1);
        let h = sim.run(&mut FedDyn::new(0.1, clients));
        assert!(h.final_accuracy(1) > 0.4, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn states_accumulate() {
        let (train, test, mut cfg) = small_task(72, 1.0);
        cfg.rounds = 3;
        cfg.participation = 1.0;
        let clients = cfg.clients;
        let sim = build_sim(&train, &test, cfg, 0.6);
        let mut algo = FedDyn::new(0.1, clients);
        let _ = sim.run(&mut algo);
        assert!(algo.states.iter().all(|h| !h.is_empty()));
        let norm: f32 = algo.mean_state.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm > 0.0, "mean state never moved");
    }
}
