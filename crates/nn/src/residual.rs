//! Residual blocks: `y = body(x) + x`.
//!
//! The "ResLite" CNN backbone stacks conv/ReLU bodies inside residual
//! skips, giving the overparameterised feature extractor role that
//! ResNet-18/34 plays in the paper at a CPU-tractable size.

use crate::layer::Layer;
use fedwcm_stats::Xoshiro256pp;
use fedwcm_tensor::Tensor;

/// A residual block around a sequence of inner layers whose composite
/// output width equals the input width.
#[derive(Clone)]
pub struct Residual {
    body: Vec<Box<dyn Layer>>,
    offsets: Vec<(usize, usize)>,
}

impl Residual {
    /// Wrap `body` in a skip connection. Offsets into the block's own
    /// parameter slice are computed once here.
    pub fn new(body: Vec<Box<dyn Layer>>) -> Self {
        assert!(!body.is_empty(), "residual body must be non-empty");
        let mut offsets = Vec::with_capacity(body.len());
        let mut off = 0usize;
        for l in &body {
            let len = l.param_len();
            offsets.push((off, len));
            off += len;
        }
        Residual { body, offsets }
    }
}

impl Layer for Residual {
    fn name(&self) -> &'static str {
        "residual"
    }

    fn out_features(&self, in_features: usize) -> usize {
        let mut f = in_features;
        for l in &self.body {
            f = l.out_features(f);
        }
        assert_eq!(
            f, in_features,
            "residual body must preserve width ({in_features} -> {f})"
        );
        f
    }

    fn param_len(&self) -> usize {
        self.offsets.iter().map(|&(_, len)| len).sum()
    }

    fn init_params(&self, params: &mut [f32], rng: &mut Xoshiro256pp) {
        for (l, &(off, len)) in self.body.iter().zip(&self.offsets) {
            l.init_params(&mut params[off..off + len], rng);
        }
    }

    fn forward(&mut self, params: &[f32], input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for (l, &(off, len)) in self.body.iter_mut().zip(&self.offsets) {
            x = l.forward(&params[off..off + len], &x, train);
        }
        assert_eq!(x.shape(), input.shape(), "residual width change at runtime");
        let mut out = x;
        fedwcm_tensor::ops::axpy(1.0, input.as_slice(), out.as_mut_slice());
        out
    }

    fn backward(&mut self, params: &[f32], grad_params: &mut [f32], grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for (l, &(off, len)) in self.body.iter_mut().zip(&self.offsets).rev() {
            g = l.backward(
                &params[off..off + len],
                &mut grad_params[off..off + len],
                &g,
            );
        }
        // Skip path: add grad_out directly.
        fedwcm_tensor::ops::axpy(1.0, grad_out.as_slice(), g.as_mut_slice());
        g
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::layer::Relu;
    use fedwcm_stats::rng::Rng;

    fn block(dim: usize) -> Residual {
        Residual::new(vec![
            Box::new(Dense::new(dim, dim)),
            Box::new(Relu::new()),
            Box::new(Dense::new(dim, dim)),
        ])
    }

    #[test]
    fn zero_body_is_identity() {
        let mut r = block(3);
        let params = vec![0.0; r.param_len()];
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 3]);
        let y = r.forward(&params, &x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn param_len_sums_body() {
        let r = block(4);
        assert_eq!(r.param_len(), 2 * (4 * 4 + 4));
    }

    #[test]
    fn skip_gradient_passes_through_zero_body() {
        let mut r = block(2);
        let params = vec![0.0; r.param_len()];
        let mut grads = vec![0.0; r.param_len()];
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let _ = r.forward(&params, &x, true);
        let go = Tensor::from_vec(vec![5.0, 7.0], &[1, 2]);
        let gi = r.backward(&params, &mut grads, &go);
        // With zero weights the body contributes nothing to grad_in.
        assert_eq!(gi.as_slice(), go.as_slice());
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = Xoshiro256pp::seed_from(8);
        let mut r = block(3);
        let mut params = vec![0.0; r.param_len()];
        r.init_params(&mut params, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let proj = Tensor::randn(&[2, 3], 1.0, &mut rng);
        let objective = |p: &[f32], r: &mut Residual| -> f32 {
            let y = r.forward(p, &x, false);
            y.as_slice()
                .iter()
                .zip(proj.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let _ = r.forward(&params, &x, true);
        let mut grads = vec![0.0; params.len()];
        let _ = r.backward(&params, &mut grads, &proj);
        let eps = 1e-3;
        for i in (0..params.len()).step_by(5) {
            let mut p = params.clone();
            p[i] += eps;
            let up = objective(&p, &mut r);
            p[i] -= 2.0 * eps;
            let down = objective(&p, &mut r);
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads[i]).abs() < 3e-2,
                "param {i}: fd {fd} vs {}",
                grads[i]
            );
        }
        let _ = rng.next_u64();
    }

    #[test]
    #[should_panic]
    fn width_changing_body_panics() {
        let r = Residual::new(vec![Box::new(Dense::new(3, 4))]);
        let _ = r.out_features(3);
    }
}
