//! Descriptive statistics used by the analysis and experiment crates.
//!
//! These back the paper's summary quantities: mean accuracies over seeds,
//! quantity-skew summaries for the FedGrab partition (Fig. 11), the
//! imbalance-driven temperature in Eq. (4) (total-variation distance to the
//! target distribution), and Gini/concentration indices.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices with < 2 elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation quantile, `q ∈ [0, 1]`. Panics on empty or
/// NaN-bearing input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "q must be in [0,1]");
    assert!(xs.iter().all(|x| !x.is_nan()), "NaN in quantile input");
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let w = pos - lo as f64;
        v[lo] * (1.0 - w) + v[hi] * w
    }
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Gini coefficient of a non-negative vector (0 = perfectly equal,
/// → 1 = maximally concentrated). Used to summarise client quantity skew.
pub fn gini(xs: &[f64]) -> f64 {
    assert!(
        xs.iter().all(|&x| x >= 0.0),
        "gini needs non-negative values"
    );
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = xs.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    // NaN is impossible here: the `x >= 0.0` assert above rejects it
    // (comparisons with NaN are false), so `total_cmp` is a pure
    // drop-in for the partial comparison.
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    // Gini = (2 Σ i·x_(i) / (n Σ x)) − (n+1)/n, with 1-based ranks.
    let weighted: f64 = v.iter().enumerate().map(|(i, &x)| (i + 1) as f64 * x).sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// Total-variation distance between two distributions over the same
/// support: `½ Σ |p_c − q_c|`. This is the imbalance measure that drives
/// the adaptive temperature in Eq. (4).
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution supports differ");
    0.5 * p.iter().zip(q).map(|(a, b)| (a - b).abs()).sum::<f64>()
}

/// Normalise a non-negative weight vector into a probability vector.
/// Returns the uniform distribution if the total is zero.
pub fn normalize(xs: &[f64]) -> Vec<f64> {
    let total: f64 = xs.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / xs.len().max(1) as f64; xs.len()];
    }
    xs.iter().map(|&x| x / total).collect()
}

/// Numerically-stable softmax with temperature `t > 0`:
/// `softmax(x/t)`. This is Eq. (4)'s weighting kernel.
pub fn softmax_with_temperature(xs: &[f64], t: f64) -> Vec<f64> {
    assert!(t > 0.0, "temperature must be positive");
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|&x| ((x - max) / t).exp()).collect();
    let total: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / total).collect()
}

/// Argmax index; ties resolve to the first maximum. Panics on empty input.
pub fn argmax(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn gini_extremes() {
        assert!((gini(&[1.0, 1.0, 1.0, 1.0])).abs() < 1e-12);
        // One holder of everything among n=4 → Gini = (n-1)/n = 0.75.
        assert!((gini(&[0.0, 0.0, 0.0, 8.0]) - 0.75).abs() < 1e-12);
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn tv_distance_properties() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert!((total_variation(&p, &q) - 0.5).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn softmax_temperature_sharpens_and_flattens() {
        let s = [1.0, 2.0, 3.0];
        let sharp = softmax_with_temperature(&s, 0.1);
        let flat = softmax_with_temperature(&s, 100.0);
        assert!(sharp[2] > 0.99);
        assert!((flat[0] - 1.0 / 3.0).abs() < 0.01);
        for w in [&sharp, &flat] {
            let sum: f64 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax_with_temperature(&[1000.0, 1001.0], 1.0);
        let b = softmax_with_temperature(&[0.0, 1.0], 1.0);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn normalize_handles_zero_total() {
        assert_eq!(normalize(&[0.0, 0.0]), vec![0.5, 0.5]);
        assert_eq!(normalize(&[2.0, 6.0]), vec![0.25, 0.75]);
    }

    #[test]
    fn argmax_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmax(&[7.0]), 0);
    }
}
