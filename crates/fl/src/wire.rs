//! Wire serialization of client uploads for the transport layer.
//!
//! The transport ([`fedwcm_transport`]) moves opaque byte payloads; this
//! module defines the payload format for a [`ClientUpdate`] so an upload
//! can cross a lossy link and be reconstructed bit for bit on the other
//! side. Float components are carried as raw IEEE-754 bit patterns —
//! NaNs and infinities survive the trip, because the engine's
//! containment filter must see exactly what the client (or a fault)
//! emitted. The `put_`/`read_` pair below follows the same symmetry
//! discipline as `fl::checkpoint` (enforced by `fedwcm-lint`'s
//! `checkpoint-symmetry` rule).

use crate::client::ClientUpdate;
use fedwcm_nn::serialize::{put_f32, put_f32s, put_u32, put_u64, ByteReader};

fn put_update_payload(out: &mut Vec<u8>, u: &ClientUpdate) {
    put_u64(out, u.client as u64);
    put_u64(out, u.num_samples as u64);
    put_u64(out, u.num_batches as u64);
    put_f32(out, u.avg_loss);
    put_f32s(out, &u.delta);
    match &u.extra {
        Some(extra) => {
            put_u32(out, 1);
            put_f32s(out, extra);
        }
        None => put_u32(out, 0),
    }
}

fn read_update_payload(r: &mut ByteReader<'_>) -> Option<ClientUpdate> {
    let client = usize::try_from(r.u64()?).ok()?;
    let num_samples = usize::try_from(r.u64()?).ok()?;
    let num_batches = usize::try_from(r.u64()?).ok()?;
    let avg_loss = r.f32()?;
    let delta = r.f32s()?;
    let extra = match r.u32()? {
        0 => None,
        1 => Some(r.f32s()?),
        _ => return None,
    };
    Some(ClientUpdate {
        client,
        delta,
        num_samples,
        num_batches,
        avg_loss,
        extra,
    })
}

/// Serialize an upload into transport payload bytes.
pub fn encode_update(u: &ClientUpdate) -> Vec<u8> {
    let mut out = Vec::new();
    put_update_payload(&mut out, u);
    out
}

/// Reconstruct an upload from transport payload bytes; `None` on any
/// structural damage (short buffer, bad tag, trailing bytes).
pub fn decode_update(bytes: &[u8]) -> Option<ClientUpdate> {
    let mut r = ByteReader::new(bytes);
    let u = read_update_payload(&mut r)?;
    if r.is_exhausted() {
        Some(u)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(extra: Option<Vec<f32>>) -> ClientUpdate {
        ClientUpdate {
            client: 7,
            delta: vec![1.0, -2.5, f32::NAN, f32::INFINITY, 0.0],
            num_samples: 128,
            num_batches: 4,
            avg_loss: 0.75,
            extra,
        }
    }

    fn bits(xs: &[f32]) -> Vec<u32> {
        xs.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn round_trip_preserves_bit_patterns() {
        for extra in [None, Some(vec![0.5, f32::NEG_INFINITY])] {
            let u = sample(extra);
            let got = decode_update(&encode_update(&u)).expect("decodable");
            assert_eq!(got.client, u.client);
            assert_eq!(got.num_samples, u.num_samples);
            assert_eq!(got.num_batches, u.num_batches);
            assert_eq!(got.avg_loss.to_bits(), u.avg_loss.to_bits());
            assert_eq!(bits(&got.delta), bits(&u.delta), "NaN bits must survive");
            assert_eq!(got.extra.is_some(), u.extra.is_some());
            if let (Some(a), Some(b)) = (&got.extra, &u.extra) {
                assert_eq!(bits(a), bits(b));
            }
        }
    }

    #[test]
    fn damage_is_rejected_not_misparsed() {
        let bytes = encode_update(&sample(None));
        for keep in 0..bytes.len() {
            assert!(decode_update(&bytes[..keep]).is_none(), "prefix {keep}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_update(&extended).is_none(), "trailing byte");
        let mut bad_tag = bytes;
        let tag_at = bad_tag.len() - 4;
        bad_tag[tag_at..].copy_from_slice(&9u32.to_le_bytes());
        assert!(decode_update(&bad_tag).is_none(), "unknown extra tag");
    }
}
