//! Integration tests for the fault-injection harness and server
//! checkpoint/resume:
//!
//! * a zero-rate (or absent) fault plan is bitwise invisible, at 1 and 4
//!   threads;
//! * a faulted run is itself bitwise deterministic across thread counts;
//! * `resilience_report` accounts every scheduled fault;
//! * a run killed at round `r` and resumed from the round-`r` checkpoint
//!   (through bytes, as a crashed process would) finishes with a
//!   bitwise-identical history and global model;
//! * every checkpoint error path is typed, not a panic.

use fedwcm_data::dataset::Dataset;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_faults::{FaultConfig, FaultKind, FaultPlan};
use fedwcm_fl::algorithm::{
    server_step, state_from_vec, state_to_vec, uniform_average, RoundInput, RoundLog, StateError,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_fl::{
    sampled_clients_for, CheckpointError, FederatedAlgorithm, FlConfig, History, ServerCheckpoint,
    Simulation,
};
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;

/// FedCM-shaped test algorithm: a server momentum buffer is its whole
/// cross-round state, so a resume that silently reset it would diverge
/// from the uninterrupted run immediately.
struct MiniMomentum {
    beta: f32,
    momentum: Vec<f32>,
}

impl MiniMomentum {
    fn new() -> Self {
        MiniMomentum {
            beta: 0.7,
            momentum: Vec::new(),
        }
    }
}

impl FederatedAlgorithm for MiniMomentum {
    fn name(&self) -> String {
        "mini-momentum".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        run_local_sgd(env, global, &spec, |_, _, _| {})
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        if self.momentum.is_empty() {
            self.momentum = vec![0.0f32; global.len()];
        }
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        for (m, d) in self.momentum.iter_mut().zip(&dir) {
            *m = self.beta * *m + (1.0 - self.beta) * d;
        }
        let step = self.momentum.clone();
        server_step(global, &step, input.cfg, input.mean_batches());
        RoundLog::default()
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(state_from_vec(&self.momentum))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.momentum = state_to_vec(bytes)?;
        Ok(())
    }
}

/// An algorithm that keeps the trait's conservative default: no state
/// capture. Checkpointing it must fail loudly.
struct NoCapture;

impl FederatedAlgorithm for NoCapture {
    fn name(&self) -> String {
        "no-capture".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        run_local_sgd(env, global, &spec, |_, _, _| {})
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());
        RoundLog::default()
    }
}

fn make_data(seed: u64) -> (Dataset, Dataset) {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 60, 0.5);
    (spec.generate_train(&counts, seed), spec.generate_test(seed))
}

fn make_cfg(rounds: usize) -> FlConfig {
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 6;
    cfg.participation = 0.5;
    cfg.rounds = rounds;
    cfg.local_epochs = 1;
    cfg.batch_size = 20;
    cfg.eval_every = 2;
    cfg.seed = 77;
    cfg
}

fn build_sim<'a>(train: &'a Dataset, test: &'a Dataset, cfg: FlConfig) -> Simulation<'a> {
    let views = paper_partition(train, cfg.clients, 0.5, cfg.seed).views(train);
    Simulation::new(
        cfg,
        train,
        test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(4242);
            mlp(64, &[24], 10, &mut rng)
        }),
    )
}

/// A plan that exercises every fault type at once.
fn busy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        dropout: 0.2,
        straggler: 0.2,
        max_delay: 3,
        corruption: 0.1,
        replay: 0.1,
        ..FaultConfig::zero(seed)
    })
}

fn assert_bitwise_eq(a: &History, b: &History, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: round counts");
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.round, y.round, "{label}");
        assert_eq!(
            x.train_loss.map(f64::to_bits),
            y.train_loss.map(f64::to_bits),
            "{label}: round {} train_loss",
            x.round
        );
        assert_eq!(
            x.update_norm.to_bits(),
            y.update_norm.to_bits(),
            "{label}: round {} update_norm",
            x.round
        );
        assert_eq!(
            x.test_acc.map(f64::to_bits),
            y.test_acc.map(f64::to_bits),
            "{label}: round {} test_acc",
            x.round
        );
        assert_eq!(
            x.alpha.map(f64::to_bits),
            y.alpha.map(f64::to_bits),
            "{label}: round {} alpha",
            x.round
        );
        assert_eq!(x.dropped_updates, y.dropped_updates, "{label}");
        assert_eq!(x.faults, y.faults, "{label}: round {} faults", x.round);
    }
}

#[test]
fn absent_and_zero_rate_plans_are_bitwise_identical() {
    let (train, test) = make_data(101);
    for threads in [1usize, 4] {
        let mut cfg = make_cfg(6);
        cfg.threads = threads;
        let plain = build_sim(&train, &test, cfg.clone()).run(&mut MiniMomentum::new());
        let zeroed = build_sim(&train, &test, cfg)
            .with_fault_plan(FaultPlan::zero(0xDEAD))
            .run(&mut MiniMomentum::new());
        assert_bitwise_eq(&plain, &zeroed, &format!("threads={threads}"));
        assert!(
            zeroed.records.iter().all(|r| r.faults.injected() == 0),
            "zero plan must inject nothing"
        );
    }
}

#[test]
fn faulted_run_is_bitwise_deterministic_across_threads() {
    let (train, test) = make_data(102);
    let mut histories = Vec::new();
    for threads in [1usize, 4] {
        let mut cfg = make_cfg(8);
        cfg.threads = threads;
        let h = build_sim(&train, &test, cfg)
            .with_fault_plan(busy_plan(0xFA))
            .run(&mut MiniMomentum::new());
        histories.push(h);
    }
    assert_bitwise_eq(&histories[0], &histories[1], "threads 1 vs 4");
    let total: u32 = histories[0]
        .records
        .iter()
        .map(|r| r.faults.injected())
        .sum();
    assert!(total > 0, "busy plan injected nothing — rates too low");
}

#[test]
fn resilience_report_accounts_every_scheduled_fault() {
    let (train, test) = make_data(103);
    let cfg = make_cfg(10);
    let plan = busy_plan(0xBEEF);
    let sim = build_sim(&train, &test, cfg.clone()).with_fault_plan(plan.clone());
    let h = sim.run(&mut MiniMomentum::new());

    // Recount the schedule independently: the plan is a pure function, so
    // the history's totals must match exactly.
    let (mut dropouts, mut stragglers, mut corruptions, mut replays) = (0u32, 0u32, 0u32, 0u32);
    for round in 0..cfg.rounds {
        for client in sampled_clients_for(&cfg, round) {
            match plan.fault_for(round, client) {
                Some(FaultKind::Dropout) => dropouts += 1,
                Some(FaultKind::Straggler { .. }) => stragglers += 1,
                Some(FaultKind::Corrupt(_)) => corruptions += 1,
                Some(FaultKind::Replay) => replays += 1,
                None => {}
            }
        }
    }
    let baseline = build_sim(&train, &test, cfg).run(&mut MiniMomentum::new());
    let report = h.resilience_report(Some(&baseline));
    assert_eq!(report.totals.dropouts, dropouts);
    assert_eq!(report.totals.stragglers, stragglers);
    assert_eq!(report.totals.corruptions, corruptions);
    assert_eq!(report.totals.replays, replays);
    assert!(
        report.totals.late_merged <= stragglers,
        "cannot merge more late uploads than were delayed"
    );
    assert!(report.totals.injected() > 0, "plan injected nothing");
    assert!(report.accuracy_delta.is_some());
    // The Display form must not panic and must carry the counts.
    assert!(report.to_string().contains("dropouts"));
}

#[test]
fn crash_and_resume_is_bitwise_identical() {
    let (train, test) = make_data(104);
    let cfg = make_cfg(8);

    // Uninterrupted run, capturing the final global parameters.
    let sim = build_sim(&train, &test, cfg.clone()).with_fault_plan(busy_plan(0xFA));
    let mut full_params: Vec<f32> = Vec::new();
    let full = sim.run_with_observer(&mut MiniMomentum::new(), |_, g| {
        full_params.clear();
        full_params.extend_from_slice(g);
    });

    // Interrupted run: stop at round 3, serialize the checkpoint to bytes
    // (as a crashed-and-restarted process would), parse it back, resume.
    let ckpt = sim
        .run_until(&mut MiniMomentum::new(), 3)
        .expect("mini-momentum supports state capture");
    assert_eq!(ckpt.next_round(), 3);
    assert_eq!(ckpt.algo_name(), "mini-momentum");
    assert_eq!(ckpt.history().records.len(), 3);
    let bytes = ckpt.to_bytes();
    let restored = ServerCheckpoint::from_bytes(&bytes).expect("roundtrip");
    assert_eq!(restored.to_bytes(), bytes, "serialize is the identity");

    let mut resumed_params: Vec<f32> = Vec::new();
    let resumed = sim
        .resume_with_observer(&mut MiniMomentum::new(), &restored, |_, g| {
            resumed_params.clear();
            resumed_params.extend_from_slice(g);
        })
        .expect("resume");

    assert_bitwise_eq(&full, &resumed, "full vs resumed");
    let full_bits: Vec<u32> = full_params.iter().map(|p| p.to_bits()).collect();
    let resumed_bits: Vec<u32> = resumed_params.iter().map(|p| p.to_bits()).collect();
    assert_eq!(full_bits, resumed_bits, "final global params");
}

#[test]
fn checkpoint_error_paths_are_typed() {
    let (train, test) = make_data(105);
    let cfg = make_cfg(6);
    let sim = build_sim(&train, &test, cfg.clone());

    // Capture with an algorithm that opts out of state capture.
    assert_eq!(
        sim.run_until(&mut NoCapture, 2).unwrap_err(),
        CheckpointError::AlgorithmStateUnsupported
    );

    let ckpt = sim.run_until(&mut MiniMomentum::new(), 2).expect("capture");

    // Resuming with a different algorithm is a mismatch, not a corruption.
    match sim.resume(&mut NoCapture, &ckpt).unwrap_err() {
        CheckpointError::AlgorithmMismatch { expected, found } => {
            assert_eq!(expected, "mini-momentum");
            assert_eq!(found, "no-capture");
        }
        other => panic!("expected AlgorithmMismatch, got {other}"),
    }

    // Resuming under a different configuration is rejected.
    let mut other_cfg = cfg;
    other_cfg.seed = 123_456;
    let other_sim = build_sim(&train, &test, other_cfg);
    assert_eq!(
        other_sim
            .resume(&mut MiniMomentum::new(), &ckpt)
            .unwrap_err(),
        CheckpointError::ConfigMismatch
    );

    // Truncated / corrupted bytes parse to Malformed, never panic.
    let bytes = ckpt.to_bytes();
    assert_eq!(
        ServerCheckpoint::from_bytes(&bytes[..bytes.len() - 3]).unwrap_err(),
        CheckpointError::Malformed
    );
    assert_eq!(
        ServerCheckpoint::from_bytes(b"not a checkpoint").unwrap_err(),
        CheckpointError::Malformed
    );
    let mut extra = bytes.clone();
    extra.push(0);
    assert_eq!(
        ServerCheckpoint::from_bytes(&extra).unwrap_err(),
        CheckpointError::Malformed
    );
}

#[test]
fn quorum_rule_skips_underpopulated_rounds() {
    let (train, test) = make_data(106);
    let mut cfg = make_cfg(10);
    cfg.quorum_frac = 0.95;
    let plan = FaultPlan::new(FaultConfig {
        dropout: 0.6,
        ..FaultConfig::zero(0xD0)
    });
    let h = build_sim(&train, &test, cfg.clone())
        .with_fault_plan(plan)
        .run(&mut MiniMomentum::new());
    assert_eq!(h.records.len(), cfg.rounds);
    let skipped: Vec<_> = h
        .records
        .iter()
        .filter(|r| r.faults.quorum_failed)
        .collect();
    assert!(
        !skipped.is_empty(),
        "60% dropout against a 95% quorum must fail at least once"
    );
    for r in &skipped {
        assert_eq!(
            r.update_norm, 0.0,
            "a quorum-failed round must not move the model"
        );
    }
    // Some rounds still aggregate (dropout is probabilistic, not total).
    assert!(h.records.iter().any(|r| r.update_norm > 0.0));
}
