//! Eq. (4): temperature-softmax aggregation weights over sampled clients.

use fedwcm_stats::describe::softmax_with_temperature;

/// Compute the aggregation weights `w_k = softmax(s_k / T)` for the
/// sampled clients' scores. Returns a probability vector (sums to 1).
pub fn aggregation_weights(sampled_scores: &[f64], temperature: f64) -> Vec<f64> {
    assert!(!sampled_scores.is_empty(), "no sampled clients");
    softmax_with_temperature(sampled_scores, temperature)
}

/// Combine Eq. (4) weights with data-volume weights (FedWCM-X step 1):
/// `w'_k ∝ w_k · n_k`, renormalised to sum to 1.
pub fn volume_adjusted_weights(weights: &[f64], sizes: &[usize]) -> Vec<f64> {
    assert_eq!(weights.len(), sizes.len(), "weights/sizes length mismatch");
    let raw: Vec<f64> = weights
        .iter()
        .zip(sizes)
        .map(|(&w, &n)| w * n as f64)
        .collect();
    let total: f64 = raw.iter().sum();
    assert!(total > 0.0, "all adjusted weights are zero");
    raw.into_iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_probability_vector() {
        let w = aggregation_weights(&[0.1, 0.5, 0.2], 0.1);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(w.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn higher_score_higher_weight() {
        let w = aggregation_weights(&[0.1, 0.5, 0.2], 0.05);
        assert!(w[1] > w[2] && w[2] > w[0]);
    }

    #[test]
    fn high_temperature_uniformises() {
        let w = aggregation_weights(&[0.1, 0.9], 1e5);
        assert!((w[0] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn low_temperature_sharpens() {
        let w = aggregation_weights(&[0.1, 0.9], 1e-3);
        assert!(w[1] > 0.999);
    }

    #[test]
    fn volume_adjustment_prefers_bigger_clients() {
        let w = volume_adjusted_weights(&[0.5, 0.5], &[10, 90]);
        assert!((w[1] - 0.9).abs() < 1e-12);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn volume_adjustment_composes_with_scores() {
        // Equal sizes leave the score weighting untouched.
        let base = aggregation_weights(&[0.2, 0.6], 0.1);
        let adj = volume_adjusted_weights(&base, &[40, 40]);
        for (a, b) in adj.iter().zip(&base) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
