//! Fixture tests: every lint rule demonstrated on known-good and
//! known-bad sources, including the tricky cases the lexer exists for
//! (`unsafe` inside a string literal, `// SAFETY:` separated by a blank
//! line, suppression markers without a reason).
//!
//! Fixtures are in-memory strings fed to [`lint_file`] under invented
//! workspace-relative paths — the path picks which crate-scoped rules
//! apply (`crates/algos/...` is a library crate outside the doc set,
//! `crates/tensor/...` adds doc-coverage, `crates/experiments/...` is
//! exempt from the determinism/panic families).

use fedwcm_lint::{lint_file, lint_workspace, Diagnostic, LintConfig, ALL_RULES, MARKER_RULE};

/// Lint one fixture with every rule enabled.
fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
    lint_file(path, src, &LintConfig::all())
}

/// The rule names that fired, in output order.
fn fired(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

/// A library-crate path outside the doc-coverage set, so fixtures can
/// use undocumented `pub fn` scaffolding without doc noise.
const LIB: &str = "crates/algos/src/fixture.rs";

// ---------------------------------------------------------------- unsafe

#[test]
fn unsafe_without_safety_comment_fires() {
    let d = lint(LIB, "pub fn f(p: *mut u8) { unsafe { *p = 0; } }\n");
    assert_eq!(fired(&d), ["unsafe-safety"]);
    assert_eq!(d[0].line, 1);
}

#[test]
fn safety_comment_on_same_line_passes() {
    let src = "pub fn f(p: *mut u8) { /* SAFETY: p is valid */ unsafe { *p = 0; } }\n";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn safety_block_directly_above_passes() {
    let src = "\
// SAFETY: caller guarantees exclusive access to `p`
// for the duration of the call.
unsafe fn f(p: *mut u8) { *p = 0; }
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn safety_separated_by_blank_line_fires() {
    // The association is broken by the blank line: a drive-by edit could
    // have inserted unrelated code there, so adjacency is required.
    let src = "\
// SAFETY: caller guarantees exclusive access.

unsafe fn f(p: *mut u8) { *p = 0; }
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["unsafe-safety"]);
    assert_eq!(d[0].line, 3);
}

#[test]
fn safety_separated_by_code_line_fires() {
    let src = "\
// SAFETY: this comment belongs to g, not f.
fn g() {}
unsafe fn f(p: *mut u8) { *p = 0; }
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["unsafe-safety"]);
    assert_eq!(d[0].line, 3);
}

#[test]
fn attribute_between_safety_and_unsafe_passes() {
    let src = "\
// SAFETY: repr(C) layout is part of the contract.
#[allow(dead_code)]
unsafe fn f() {}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn unsafe_inside_string_literal_is_ignored() {
    let src = "pub fn msg() -> &'static str { \"this unsafe is just text\" }\n";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn unsafe_inside_raw_string_and_comment_is_ignored() {
    let src = "\
// unsafe in a comment is fine
pub fn msg() -> &'static str { r#\"unsafe { *p }\"# }
";
    assert!(lint(LIB, src).is_empty());
}

// ----------------------------------------------------------- determinism

#[test]
fn hashmap_and_hashset_fire_in_library_crates() {
    let src = "\
use std::collections::HashMap;
pub fn f() { let _m: HashMap<u32, u32> = HashMap::new(); }
pub fn g() { let _s = std::collections::HashSet::<u32>::new(); }
";
    let d = lint(LIB, src);
    assert!(d.len() >= 3, "use + two bodies: {d:?}");
    assert!(d.iter().all(|x| x.rule == "determinism-collections"));
}

#[test]
fn hashmap_allowed_in_dev_crates() {
    let src =
        "use std::collections::HashMap;\npub fn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    assert!(lint("crates/experiments/src/fixture.rs", src).is_empty());
}

#[test]
fn hashmap_allowed_in_test_code() {
    let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _m: HashMap<u32, u32> = HashMap::new(); }
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn wall_clock_reads_fire() {
    let src = "\
pub fn f() -> std::time::Instant { std::time::Instant::now() }
pub fn g() -> std::time::SystemTime { std::time::SystemTime::now() }
";
    let d = lint(LIB, src);
    // Each line mentions `std::time` (std-time rule, deduped per line)
    // AND performs a wall-clock read (time rule).
    assert_eq!(
        fired(&d),
        [
            "determinism-std-time",
            "determinism-time",
            "determinism-std-time",
            "determinism-time",
        ]
    );
}

#[test]
fn std_time_import_fires_even_without_a_clock_read() {
    // With fedwcm-trace in the workspace there is no reason for library
    // code to even name std::time types — Duration included.
    let d = lint(LIB, "use std::time::Duration;\n");
    assert_eq!(fired(&d), ["determinism-std-time"]);
    assert_eq!(d[0].line, 1);
}

#[test]
fn std_time_reported_once_per_line() {
    let src = "pub fn f() -> std::time::Duration { std::time::Duration::from_secs(1) }\n";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["determinism-std-time"]);
}

#[test]
fn std_time_allowed_in_blessed_clock_module() {
    let src = "\
/// Fixture standing in for the real clock module.
pub fn base() -> std::time::Duration { std::time::Duration::ZERO }
";
    let d = lint("crates/trace/src/clock.rs", src);
    assert!(
        d.iter().all(|x| x.rule != "determinism-std-time"),
        "blessed clock module must allow std::time: {d:?}"
    );
}

#[test]
fn std_time_allowed_in_test_code() {
    let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    use std::time::Duration;
    #[test]
    fn t() { let _ = Duration::from_millis(1); }
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn std_time_allowed_in_dev_crates() {
    let src = "use std::time::Instant;\npub fn t0() -> Instant { Instant::now() }\n";
    assert!(lint("crates/experiments/src/fixture.rs", src).is_empty());
}

#[test]
fn env_read_fires_outside_blessed_config() {
    let d = lint(LIB, "pub fn f() -> bool { std::env::var(\"X\").is_ok() }\n");
    assert_eq!(fired(&d), ["determinism-env"]);
}

#[test]
fn env_read_allowed_in_blessed_config_module() {
    let src = "pub fn threads() -> bool { std::env::var(\"FEDWCM_THREADS\").is_ok() }\n";
    let d = lint("crates/fl/src/config.rs", src);
    assert!(
        d.iter().all(|x| x.rule != "determinism-env"),
        "blessed file must allow env reads: {d:?}"
    );
}

#[test]
fn available_parallelism_fires_outside_parallel_crate() {
    let src = "pub fn n() -> usize { std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1) }\n";
    let d = lint(LIB, src);
    assert!(d.iter().any(|x| x.rule == "determinism-threads"), "{d:?}");
}

#[test]
fn available_parallelism_allowed_in_parallel_crate() {
    let src = "\
/// Worker count.
pub fn n() -> usize { std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1) }
";
    let d = lint("crates/parallel/src/fixture.rs", src);
    assert!(d.iter().all(|x| x.rule != "determinism-threads"), "{d:?}");
}

// --------------------------------------------------------- panic-freedom

#[test]
fn unwrap_and_expect_fire() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 { o.unwrap() }
pub fn g(r: Result<u32, ()>) -> u32 { r.expect(\"msg\") }
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["panic-freedom", "panic-freedom"]);
}

#[test]
fn unwrap_on_tuple_field_fires() {
    // Exercises number lexing: `x.0.unwrap()` must tokenize as
    // `x . 0 . unwrap ( )`, not swallow `.unwrap` into a float literal.
    let d = lint(LIB, "pub fn f(x: (Option<u32>,)) -> u32 { x.0.unwrap() }\n");
    assert_eq!(fired(&d), ["panic-freedom"]);
}

#[test]
fn panic_family_macros_fire() {
    let src = "\
pub fn f() { panic!(\"boom\") }
pub fn g() { unimplemented!() }
pub fn h() { todo!() }
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), ["panic-freedom"; 3]);
}

#[test]
fn total_alternatives_pass() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }
pub fn g(o: Option<u32>) -> u32 { o.unwrap_or_else(|| 1) }
pub fn h(o: Option<u32>) -> u32 { o.unwrap_or_default() }
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn unwrap_in_test_module_passes() {
    let src = "\
pub fn f() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); panic!(\"test-only\"); }
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn unwrap_in_test_fn_outside_module_passes() {
    let src = "\
pub fn f() {}
#[test]
fn t() {
    Some(1).unwrap();
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn panic_inside_string_literal_passes() {
    let src = "pub fn f() -> &'static str { \"don't panic!(even here)\" }\n";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn unwrap_in_dev_crate_passes() {
    let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    assert!(lint("crates/experiments/src/fixture.rs", src).is_empty());
}

// ---------------------------------------------------------- doc-coverage

#[test]
fn undocumented_pub_item_fires_in_doc_crates() {
    let src = "\
pub fn undocd() {}
pub struct Undocd;
";
    let d = lint("crates/tensor/src/fixture.rs", src);
    assert_eq!(fired(&d), ["doc-coverage", "doc-coverage"]);
}

#[test]
fn documented_pub_items_pass() {
    let src = "\
/// Line-doc'd.
pub fn a() {}
/** Block-doc'd. */
pub struct B;
#[doc = \"Attribute-doc'd.\"]
pub enum C { X }
/// Docs survive intervening attributes.
#[derive(Clone)]
pub struct D;
";
    assert!(lint("crates/tensor/src/fixture.rs", src).is_empty());
}

#[test]
fn restricted_visibility_and_reexports_exempt() {
    let src = "\
pub(crate) fn internal() {}
pub(super) fn upward() {}
pub use std::cmp::Ordering;
";
    assert!(lint("crates/tensor/src/fixture.rs", src).is_empty());
}

#[test]
fn out_of_line_pub_mod_exempt_inline_checked() {
    let src = "\
pub mod declared_elsewhere;
pub mod inline_needs_docs { }
";
    let d = lint("crates/tensor/src/fixture.rs", src);
    assert_eq!(fired(&d), ["doc-coverage"]);
    assert_eq!(d[0].line, 2);
}

#[test]
fn doc_coverage_limited_to_doc_crates() {
    assert!(lint(LIB, "pub fn undocd() {}\n").is_empty());
}

// --------------------------------------------------- suppression markers

#[test]
fn suppression_with_reason_silences_the_finding() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 {
    // lint:allow(panic-freedom) fixture contract: o is always Some here.
    o.unwrap()
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn trailing_suppression_on_the_same_line_works() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 {
    o.unwrap() // lint:allow(panic-freedom) fixture contract: never None.
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn suppression_scope_skips_blank_and_comment_lines() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 {
    // lint:allow(panic-freedom) fixture contract: never None.

    // an unrelated comment between marker and code
    o.unwrap()
}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn suppression_without_reason_is_a_hard_error() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 {
    // lint:allow(panic-freedom)
    o.unwrap()
}
";
    let d = lint(LIB, src);
    // The reasonless marker is rejected AND the finding still fires
    // (sorted by line: the marker sits above the unwrap).
    assert_eq!(fired(&d), [MARKER_RULE, "panic-freedom"]);
    assert!(d[0].message.contains("lacks a reason"), "{}", d[0].message);
}

#[test]
fn one_word_reason_is_rejected() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 {
    // lint:allow(panic-freedom) contract
    o.unwrap()
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), [MARKER_RULE, "panic-freedom"]);
}

#[test]
fn unknown_rule_in_marker_is_rejected() {
    let src = "\
pub fn f() {
    // lint:allow(panic-fredom) typo'd rule name, two words.
    let _x = 1;
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), [MARKER_RULE]);
    assert!(d[0].message.contains("unknown rule"), "{}", d[0].message);
}

#[test]
fn unused_suppression_is_flagged() {
    let src = "\
pub fn f() -> u32 {
    // lint:allow(panic-freedom) nothing here actually panics.
    41 + 1
}
";
    let d = lint(LIB, src);
    assert_eq!(fired(&d), [MARKER_RULE]);
    assert!(
        d[0].message.contains("matches no diagnostic"),
        "{}",
        d[0].message
    );
}

#[test]
fn unused_suppression_not_flagged_when_rule_disabled() {
    let src = "\
pub fn f() -> u32 {
    // lint:allow(panic-freedom) kept for when the rule is re-enabled.
    41 + 1
}
";
    let mut cfg = LintConfig::all();
    cfg.disable("panic-freedom").unwrap();
    assert!(lint_file(LIB, src, &cfg).is_empty());
}

#[test]
fn marker_syntax_in_doc_comments_is_prose_not_a_marker() {
    let src = "\
/// Suppress with `lint:allow(panic-freedom)` and a reason.
pub fn f() {}
";
    assert!(lint(LIB, src).is_empty());
}

#[test]
fn suppression_does_not_leak_to_other_rules() {
    let src = "\
pub fn f() -> std::time::Instant {
    // lint:allow(panic-freedom) wrong rule: does not cover the time read.
    std::time::Instant::now()
}
";
    let d = lint(LIB, src);
    // determinism-time (and both lines' std-time mentions) still fire;
    // the marker is unused, hence flagged. Sorted by line: std-time on
    // line 1, the marker on line 2, std-time + time on line 3.
    assert_eq!(
        fired(&d),
        [
            "determinism-std-time",
            MARKER_RULE,
            "determinism-std-time",
            "determinism-time",
        ]
    );
}

// ------------------------------------------------------- rule toggling

#[test]
fn only_selected_rules_run() {
    let src = "\
pub fn f(o: Option<u32>) -> u32 { o.unwrap() }
pub fn g() -> std::time::Instant { std::time::Instant::now() }
";
    let cfg = LintConfig::only(["determinism-time"]).unwrap();
    let d = lint_file(LIB, src, &cfg);
    assert_eq!(fired(&d), ["determinism-time"]);
}

#[test]
fn disabled_rule_does_not_fire() {
    let src = "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let mut cfg = LintConfig::all();
    cfg.disable("panic-freedom").unwrap();
    assert!(lint_file(LIB, src, &cfg).is_empty());
}

#[test]
fn unknown_rule_names_rejected_by_config() {
    assert!(LintConfig::only(["no-such-rule"]).is_err());
    assert!(LintConfig::all().disable("no-such-rule").is_err());
}

#[test]
fn every_declared_rule_is_exercised_by_these_fixtures() {
    // Meta-check: the fixture set above demonstrates each rule firing at
    // least once, so no rule can silently go dead.
    let fixtures: &[(&str, &str)] = &[
        (LIB, "pub fn f(p: *mut u8) { unsafe { *p = 0; } }\n"),
        (LIB, "use std::collections::HashMap;\n"),
        (LIB, "pub fn f() -> std::time::Instant { std::time::Instant::now() }\n"),
        (LIB, "pub fn f() -> bool { std::env::var(\"X\").is_ok() }\n"),
        (
            LIB,
            "pub fn f() -> usize { std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1) }\n",
        ),
        (LIB, "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n"),
        ("crates/tensor/src/fixture.rs", "pub fn undocd() {}\n"),
    ];
    let mut seen: std::collections::BTreeSet<String> = Default::default();
    for (path, src) in fixtures {
        for d in lint(path, src) {
            seen.insert(d.rule);
        }
    }
    for rule in ALL_RULES {
        assert!(seen.contains(*rule), "rule '{rule}' never fired");
    }
}

// ------------------------------------------------------ whole workspace

#[test]
fn real_workspace_is_clean() {
    // The repo must satisfy its own gates: zero diagnostics end to end.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf();
    let diags = lint_workspace(&root, &LintConfig::all()).expect("workspace read");
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
