//! Synthetic convex testbed for the convergence-rate check (Theorem 6.1).
//!
//! Each client `i` owns a diagonal quadratic
//! `f_i(x) = ½ Σ_j a_{ij}(x_j − b_{ij})²` with stochastic gradients
//! `∇f_i(x) + σξ`. The global objective is the client average — smooth
//! (L = max a) and heterogeneous (distinct minimisers b_i), matching
//! Assumptions 1–2 exactly. Running the FedCM/FedWCM update rule here lets
//! the analysis crate verify the `O(1/√(NKR)) + O(1/R)` rate empirically.

use fedwcm_stats::dist::Normal;
use fedwcm_stats::rng::{Rng, Xoshiro256pp};

/// A federated diagonal-quadratic problem instance.
pub struct QuadraticProblem {
    /// Per-client curvature vectors `a_i` (all positive).
    pub curvatures: Vec<Vec<f64>>,
    /// Per-client minimisers `b_i`.
    pub minimisers: Vec<Vec<f64>>,
    /// Gradient-noise std σ.
    pub sigma: f64,
}

impl QuadraticProblem {
    /// Random heterogeneous instance: curvatures in `[0.5, 1.5]`,
    /// minimisers `N(0, heterogeneity²)` per client.
    pub fn random(clients: usize, dim: usize, heterogeneity: f64, sigma: f64, seed: u64) -> Self {
        assert!(clients >= 1 && dim >= 1);
        let mut rng = Xoshiro256pp::stream(seed, &[0x9A0D]);
        let mut normal = Normal::new(0.0, heterogeneity);
        let curvatures = (0..clients)
            .map(|_| (0..dim).map(|_| 0.5 + rng.next_f64()).collect())
            .collect();
        let minimisers = (0..clients)
            .map(|_| (0..dim).map(|_| normal.sample(&mut rng)).collect())
            .collect();
        QuadraticProblem {
            curvatures,
            minimisers,
            sigma,
        }
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.curvatures.len()
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.curvatures[0].len()
    }

    /// Exact gradient of client `i` at `x`.
    pub fn grad_i(&self, i: usize, x: &[f64], out: &mut [f64]) {
        for ((o, (&a, &b)), &xj) in out
            .iter_mut()
            .zip(self.curvatures[i].iter().zip(&self.minimisers[i]))
            .zip(x)
        {
            *o = a * (xj - b);
        }
    }

    /// Exact global gradient (client average) at `x`.
    pub fn global_grad(&self, x: &[f64], out: &mut [f64]) {
        out.fill(0.0);
        let n = self.clients() as f64;
        let mut tmp = vec![0.0; x.len()];
        for i in 0..self.clients() {
            self.grad_i(i, x, &mut tmp);
            for (o, t) in out.iter_mut().zip(&tmp) {
                *o += t / n;
            }
        }
    }

    /// Squared norm of the global gradient at `x`.
    pub fn global_grad_norm_sq(&self, x: &[f64]) -> f64 {
        let mut g = vec![0.0; x.len()];
        self.global_grad(x, &mut g);
        g.iter().map(|v| v * v).sum()
    }

    /// The unique global minimiser (weighted average of client targets).
    pub fn global_minimiser(&self) -> Vec<f64> {
        let dim = self.dim();
        let mut num = vec![0.0; dim];
        let mut den = vec![0.0; dim];
        for i in 0..self.clients() {
            for j in 0..dim {
                num[j] += self.curvatures[i][j] * self.minimisers[i][j];
                den[j] += self.curvatures[i][j];
            }
        }
        num.iter().zip(&den).map(|(n, d)| n / d).collect()
    }
}

/// Configuration of a momentum-FL run on the quadratic testbed.
#[derive(Clone, Copy, Debug)]
pub struct QuadRunConfig {
    /// Local steps per round `K`.
    pub local_steps: usize,
    /// Rounds `R`.
    pub rounds: usize,
    /// Local learning rate `η`.
    pub local_lr: f64,
    /// Momentum value `α` (1.0 disables momentum → local SGD/FedAvg).
    pub alpha: f64,
    /// Seed.
    pub seed: u64,
}

/// Run the FedCM update rule (full participation) on a quadratic problem.
///
/// Returns `‖∇f(x_r)‖²` per round — the quantity bounded by Theorem 6.1.
pub fn run_quadratic_fedcm(problem: &QuadraticProblem, cfg: &QuadRunConfig) -> Vec<f64> {
    assert!(cfg.local_steps >= 1 && cfg.rounds >= 1);
    assert!((0.0..=1.0).contains(&cfg.alpha));
    let dim = problem.dim();
    let clients = problem.clients();
    let mut x = vec![0.0f64; dim];
    let mut momentum = vec![0.0f64; dim];
    let mut noise = Normal::new(0.0, problem.sigma);
    let mut rng = Xoshiro256pp::stream(cfg.seed, &[0x40AD]);
    let mut grad_norms = Vec::with_capacity(cfg.rounds);

    let mut grad = vec![0.0f64; dim];
    let mut v = vec![0.0f64; dim];
    for _round in 0..cfg.rounds {
        grad_norms.push(problem.global_grad_norm_sq(&x));
        let mut delta_sum = vec![0.0f64; dim];
        for i in 0..clients {
            let mut xi = x.clone();
            for _ in 0..cfg.local_steps {
                problem.grad_i(i, &xi, &mut grad);
                for g in grad.iter_mut() {
                    *g += noise.sample(&mut rng);
                }
                for j in 0..dim {
                    v[j] = cfg.alpha * grad[j] + (1.0 - cfg.alpha) * momentum[j];
                    xi[j] -= cfg.local_lr * v[j];
                }
            }
            // Gradient-scale delta (same convention as the NN engine).
            let scale = 1.0 / (cfg.local_lr * cfg.local_steps as f64);
            for j in 0..dim {
                delta_sum[j] += (x[j] - xi[j]) * scale;
            }
        }
        for j in 0..dim {
            momentum[j] = delta_sum[j] / clients as f64;
            x[j] -= cfg.local_lr * cfg.local_steps as f64 * momentum[j];
        }
    }
    grad_norms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_minimiser_zeroes_gradient() {
        let p = QuadraticProblem::random(5, 8, 2.0, 0.0, 1);
        let xstar = p.global_minimiser();
        assert!(p.global_grad_norm_sq(&xstar) < 1e-20);
    }

    #[test]
    fn noiseless_fedcm_converges() {
        let p = QuadraticProblem::random(4, 6, 1.0, 0.0, 2);
        let cfg = QuadRunConfig {
            local_steps: 5,
            rounds: 200,
            local_lr: 0.05,
            alpha: 0.1,
            seed: 3,
        };
        let norms = run_quadratic_fedcm(&p, &cfg);
        assert!(norms[0] > 1e-3);
        assert!(
            norms.last().unwrap() < &(norms[0] * 1e-4),
            "‖∇f‖² {} -> {}",
            norms[0],
            norms.last().unwrap()
        );
    }

    #[test]
    fn noisy_run_reaches_noise_floor() {
        let p = QuadraticProblem::random(8, 6, 1.0, 0.1, 4);
        let cfg = QuadRunConfig {
            local_steps: 5,
            rounds: 100,
            local_lr: 0.05,
            alpha: 0.2,
            seed: 5,
        };
        let norms = run_quadratic_fedcm(&p, &cfg);
        let early: f64 = norms[..10].iter().sum::<f64>() / 10.0;
        let late: f64 = norms[norms.len() - 10..].iter().sum::<f64>() / 10.0;
        assert!(late < early * 0.1, "early {early} late {late}");
    }

    #[test]
    fn more_rounds_smaller_average_grad() {
        // The Theorem 6.1 quantity (average ‖∇f‖² over rounds) must shrink
        // as R grows.
        let p = QuadraticProblem::random(6, 6, 1.5, 0.2, 6);
        let avg = |rounds: usize| {
            let cfg = QuadRunConfig {
                local_steps: 4,
                rounds,
                local_lr: 0.05,
                alpha: 0.2,
                seed: 7,
            };
            let norms = run_quadratic_fedcm(&p, &cfg);
            norms.iter().sum::<f64>() / norms.len() as f64
        };
        let short = avg(10);
        let long = avg(200);
        assert!(long < short * 0.5, "short {short} long {long}");
    }

    #[test]
    fn deterministic_runs() {
        let p = QuadraticProblem::random(3, 4, 1.0, 0.3, 8);
        let cfg = QuadRunConfig {
            local_steps: 3,
            rounds: 10,
            local_lr: 0.05,
            alpha: 0.5,
            seed: 9,
        };
        assert_eq!(run_quadratic_fedcm(&p, &cfg), run_quadratic_fedcm(&p, &cfg));
    }
}
