//! The persistent worker pool behind every parallel primitive.
//!
//! One process-wide pool of long-lived worker threads executes *indexed
//! jobs*: a job is "apply this task to every index in `0..n`". Indices
//! are claimed from an atomic counter, so heterogeneous per-item costs
//! balance dynamically, and each index is claimed by **exactly one**
//! participant — which is what lets callers hand out disjoint mutable
//! state per index without any lock.
//!
//! The pool replaces the per-call `std::thread::scope` spawning the seed
//! used: submitting a job is a queue push + condvar wake instead of N
//! `clone(2)` calls, which matters when the engine dispatches a job per
//! round and each client dispatches nested GEMM jobs per layer.
//!
//! # Nesting
//!
//! Jobs may be submitted from inside pool workers (client-level training
//! submits intra-client GEMM jobs). The submitting participant always
//! works through its own job's indices before blocking, so a job can
//! always finish on the thread that submitted it; idle workers join in
//! opportunistically. There is therefore no deadlock regardless of pool
//! size, and [`crate::ThreadBudget`] keeps total concurrency at or below
//! the configured thread count.
//!
//! # Determinism
//!
//! The pool schedules *which thread* runs an index, never *what* an
//! index computes or *where results land* — callers key all writes by
//! index. Every primitive built on the pool is therefore bitwise
//! deterministic across thread counts and scheduling orders.

use crate::sync::{lock_recover, wait_recover};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on spawned pool workers (a runaway-config backstop; real
/// budgets come from `FEDWCM_THREADS` / `FlConfig::threads`).
const MAX_POOL_WORKERS: usize = 256;

// Lifetime pool counters, exposed through [`pool_stats`]. These observe
// scheduling (which is intentionally nondeterministic) and are never
// read by anything that feeds back into computation.
static JOBS_SUBMITTED: AtomicU64 = AtomicU64::new(0);
static MAX_QUEUE_DEPTH: AtomicU64 = AtomicU64::new(0);
static ITEMS_EXECUTED: AtomicU64 = AtomicU64::new(0);
/// Items executed per participant slot: slot 0 aggregates all submitting
/// callers, slot `1 + id` is pool worker `id`.
static PER_WORKER_ITEMS: [AtomicU64; MAX_POOL_WORKERS + 1] =
    [const { AtomicU64::new(0) }; MAX_POOL_WORKERS + 1];

std::thread_local! {
    /// This thread's participant slot in [`PER_WORKER_ITEMS`].
    static WORKER_SLOT: Cell<usize> = const { Cell::new(0) };
}

/// Participant slot of the current thread: `0` for submitting callers,
/// `1 + id` for pool worker `id`. The `race_check` shadow tables use
/// this as the writer identity in their panic reports, matching the
/// slot numbering of [`PoolStats::per_worker_items`].
pub(crate) fn participant_slot() -> usize {
    WORKER_SLOT.with(Cell::get)
}

/// Point-in-time snapshot of the pool's lifetime scheduling counters —
/// queue pressure and per-worker load balance for benches and reports.
/// Values observe OS scheduling, so they are *not* deterministic (unlike
/// everything the pool computes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Indexed jobs submitted via the pool so far.
    pub jobs_submitted: u64,
    /// High-water mark of the pending-job queue length.
    pub max_queue_depth: u64,
    /// Worker threads spawned (excludes submitting callers).
    pub workers_spawned: usize,
    /// Total items executed across all jobs and participants.
    pub items_executed: u64,
    /// Items executed per participant: index 0 aggregates submitting
    /// callers, index `1 + id` is pool worker `id`.
    pub per_worker_items: Vec<u64>,
}

/// Snapshot the pool's lifetime scheduling counters.
pub fn pool_stats() -> PoolStats {
    let workers = Pool::global().shared.workers.load(Ordering::Relaxed);
    PoolStats {
        jobs_submitted: JOBS_SUBMITTED.load(Ordering::Relaxed),
        max_queue_depth: MAX_QUEUE_DEPTH.load(Ordering::Relaxed),
        workers_spawned: workers,
        items_executed: ITEMS_EXECUTED.load(Ordering::Relaxed),
        per_worker_items: PER_WORKER_ITEMS[..=workers.min(MAX_POOL_WORKERS)]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
    }
}

/// One indexed job: apply the erased task to every index in `0..n`.
struct Job {
    /// Next unclaimed index; values `>= n` mean the job is drained.
    next: AtomicUsize,
    /// Item count.
    n: usize,
    /// Maximum pool workers that may attach (the submitting caller
    /// always participates on top of these).
    max_workers: usize,
    /// Pool workers that have attached so far (guarded by the queue
    /// lock, which serialises all attach decisions).
    attached: AtomicUsize,
    /// Live participants: attached workers plus the submitting caller.
    active: AtomicUsize,
    /// Guards completion signalling (pairs with `done_cv`).
    done_lock: Mutex<()>,
    /// Signalled when `active` reaches zero.
    done_cv: Condvar,
    /// The erased task. Only valid until the submitting caller returns:
    /// the caller removes the job from the queue and waits for
    /// `active == 0` before its frame (and the task's real referent)
    /// can die, so no participant observes a dangling task.
    task: &'static (dyn Fn(usize) + Sync),
    /// First panic payload raised by any participant, re-raised on the
    /// submitting caller after the job quiesces.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Shadow exactly-once table over this job's index claims: the
    /// atomic counter above must hand each index out once, and under
    /// `race_check` every claim is recorded so a double execution
    /// panics at its source (see [`crate::shadow::ClaimTable`]).
    #[cfg(feature = "race_check")]
    claims: crate::shadow::ClaimTable,
}

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    /// Pending jobs. A job stays queued until drained (or until its
    /// caller removes it); workers scan for the first job they may
    /// still attach to, so FIFO submission order is respected.
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Wakes idle workers when a job is pushed.
    work_cv: Condvar,
    /// Worker threads spawned so far.
    workers: AtomicUsize,
    /// Serialises worker spawning.
    spawn_lock: Mutex<()>,
}

/// The process-wide worker pool. Workers are spawned lazily, up to the
/// largest thread budget any job has requested, and persist for the
/// lifetime of the process (they park on a condvar when idle).
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// The process-wide pool.
    pub(crate) fn global() -> &'static Pool {
        POOL.get_or_init(|| Pool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                work_cv: Condvar::new(),
                workers: AtomicUsize::new(0),
                spawn_lock: Mutex::new(()),
            }),
        })
    }

    /// Spawn workers until at least `want` exist (capped).
    fn ensure_workers(&self, want: usize) {
        let want = want.min(MAX_POOL_WORKERS);
        if self.shared.workers.load(Ordering::Relaxed) >= want {
            return;
        }
        let _guard = lock_recover(&self.shared.spawn_lock);
        while self.shared.workers.load(Ordering::Relaxed) < want {
            let id = self.shared.workers.load(Ordering::Relaxed);
            let shared = Arc::clone(&self.shared);
            let spawned = std::thread::Builder::new()
                .name(format!("fedwcm-worker-{id}"))
                .spawn(move || {
                    WORKER_SLOT.with(|s| s.set(1 + id));
                    worker_loop(&shared)
                });
            if spawned.is_err() {
                // Out of OS threads: degrade gracefully. The submitting
                // caller always participates in its own job, so every
                // job still completes — just with fewer helpers.
                break;
            }
            self.shared.workers.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Run `task(i)` for every `i in 0..n` using up to `threads`
/// participants (the calling thread plus `threads - 1` pool workers).
///
/// Blocks until every claimed index has finished and no participant can
/// still observe `task`; re-raises the first panic any participant hit.
pub(crate) fn run_indexed(n: usize, threads: usize, task: &(dyn Fn(usize) + Sync)) {
    debug_assert!(
        n >= 2 && threads >= 2,
        "inline fast path belongs to the caller"
    );
    let pool = Pool::global();
    pool.ensure_workers(threads - 1);

    // SAFETY: the `'static` here is a promise about *this frame's*
    // lifetime, not the closure's: `task` stays borrowed by the caller
    // for the whole call, and before this function returns the job is
    // (1) removed from the queue — after which no worker can attach,
    // because attaching happens only under the queue lock for queued
    // jobs — and (2) quiesced: the caller blocks until it observes
    // `active == 0` under `done_lock`, which every participant
    // decrements only after its last use of `task`. So no participant
    // can observe `task` after the real borrow ends; the transmute only
    // erases a lifetime the join makes true. Under `race_check` the
    // join's happens-before obligation is asserted right after the wait
    // loop below, and the disjointness of everything `task` writes is
    // checked by `crate::shadow`.
    let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let job = Arc::new(Job {
        next: AtomicUsize::new(0),
        n,
        max_workers: threads - 1,
        attached: AtomicUsize::new(0),
        active: AtomicUsize::new(1), // the caller
        done_lock: Mutex::new(()),
        done_cv: Condvar::new(),
        task,
        panic: Mutex::new(None),
        #[cfg(feature = "race_check")]
        claims: crate::shadow::ClaimTable::new(n),
    });

    {
        let mut queue = lock_recover(&pool.shared.queue);
        queue.push_back(Arc::clone(&job));
        JOBS_SUBMITTED.fetch_add(1, Ordering::Relaxed);
        MAX_QUEUE_DEPTH.fetch_max(queue.len() as u64, Ordering::Relaxed);
    }
    pool.shared.work_cv.notify_all();

    // The caller is a full participant: it drains indices like any
    // worker, which also guarantees nested jobs always make progress.
    run_items(&job);

    // No new workers may attach once the job leaves the queue (attaching
    // happens only under the queue lock, only for queued jobs).
    {
        let mut queue = lock_recover(&pool.shared.queue);
        if let Some(pos) = queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
            queue.remove(pos);
        }
    }
    finish_participation(&job);

    // Wait for attached workers to finish their in-flight items. The
    // `done_lock` handoff also publishes their slot writes to us.
    {
        let mut guard = lock_recover(&job.done_lock);
        while job.active.load(Ordering::Acquire) != 0 {
            guard = wait_recover(&job.done_cv, guard);
        }
    }

    // The wait above is the join: every participant decremented `active`
    // under `done_lock` after its last use of the task, so observing
    // zero is the happens-before edge publishing all slot/chunk writes
    // to this thread. Assert the edge actually held before any caller
    // reads results through it.
    #[cfg(feature = "race_check")]
    {
        assert!(
            job.next.load(Ordering::Relaxed) >= job.n,
            "race_check: job released with unclaimed indices"
        );
        assert_eq!(
            job.active.load(Ordering::Acquire),
            0,
            "race_check: job released before quiescence (join happens-before violated)"
        );
    }

    let payload = lock_recover(&job.panic).take();
    if let Some(payload) = payload {
        resume_unwind(payload);
    }
}

/// Claim and execute indices until the job is drained.
fn run_items(job: &Job) {
    let mut executed = 0u64;
    loop {
        let i = job.next.fetch_add(1, Ordering::Relaxed);
        if i >= job.n {
            break;
        }
        #[cfg(feature = "race_check")]
        job.claims.record(i);
        executed += 1;
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (job.task)(i))) {
            // Stop further claims and record the first failure; the
            // submitting caller re-raises it after quiescence.
            job.next.fetch_max(job.n, Ordering::Relaxed);
            lock_recover(&job.panic).get_or_insert(payload);
        }
    }
    // One batched update per participation keeps stats off the per-item
    // hot path.
    if executed > 0 {
        ITEMS_EXECUTED.fetch_add(executed, Ordering::Relaxed);
        let slot = participant_slot();
        PER_WORKER_ITEMS[slot.min(MAX_POOL_WORKERS)].fetch_add(executed, Ordering::Relaxed);
    }
}

/// Drop out of a job, signalling the caller when the job quiesces.
fn finish_participation(job: &Job) {
    let _guard = lock_recover(&job.done_lock);
    if job.active.fetch_sub(1, Ordering::AcqRel) == 1 {
        job.done_cv.notify_all();
    }
}

/// Body of every pool worker thread: pick an eligible job, help drain
/// it, repeat; park on the condvar when the queue is empty.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = lock_recover(&shared.queue);
            loop {
                let mut picked = None;
                let mut idx = 0;
                while idx < queue.len() {
                    let candidate = &queue[idx];
                    if candidate.next.load(Ordering::Relaxed) >= candidate.n {
                        // Drained; drop it from the queue.
                        queue.remove(idx);
                        continue;
                    }
                    if candidate.attached.load(Ordering::Relaxed) < candidate.max_workers {
                        picked = Some(Arc::clone(candidate));
                        break;
                    }
                    idx += 1;
                }
                match picked {
                    Some(job) => {
                        // Attach decisions are serialised by the queue
                        // lock, so the max_workers bound is exact.
                        job.attached.fetch_add(1, Ordering::Relaxed);
                        job.active.fetch_add(1, Ordering::Relaxed);
                        break job;
                    }
                    None => queue = wait_recover(&shared.work_cv, queue),
                }
            }
        };
        run_items(&job);
        finish_participation(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_reflect_submitted_work() {
        let before = pool_stats();
        crate::parallel_for_each(64, 4, |_| {});
        let after = pool_stats();
        // Other tests share the global pool, so assert monotone growth
        // rather than exact values.
        assert!(after.jobs_submitted > before.jobs_submitted);
        assert!(after.items_executed >= before.items_executed + 64);
        assert!(after.max_queue_depth >= 1);
        assert_eq!(after.per_worker_items.len(), after.workers_spawned + 1);
        assert!(after.per_worker_items.iter().sum::<u64>() <= after.items_executed);
    }
}
