//! Property tests for `chunk_ranges`: the partition every disjoint-write
//! argument in the crate rests on must be pairwise-disjoint and exactly
//! covering for *arbitrary* `(len, n_chunks)` — including the degenerate
//! shapes `len < n_chunks` and `len == 0` the unit tests only spot-check.

use fedwcm_parallel::chunk_ranges;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn chunks_pairwise_disjoint_and_exactly_covering(
        len in 0usize..5000, parts in 1usize..128,
    ) {
        let ranges = chunk_ranges(len, parts);

        // Exactly covering: the union of half-open ranges is 0..len.
        let covered: usize = ranges.iter().map(|(s, e)| e - s).sum();
        prop_assert_eq!(covered, len);
        let mut seen = vec![false; len];
        for &(s, e) in &ranges {
            prop_assert!(s <= e && e <= len, "range ({}, {}) out of bounds", s, e);
            for cell in &mut seen[s..e] {
                // Pairwise-disjoint: no element may be claimed twice.
                prop_assert!(!*cell, "element covered by two chunks");
                *cell = true;
            }
        }
        prop_assert!(seen.iter().all(|&c| c), "element covered by no chunk");

        // Explicit O(n²) pairwise-overlap check, independent of the
        // bitmap above (two half-open ranges overlap iff s1 < e2 && s2 < e1).
        for (i, &(s1, e1)) in ranges.iter().enumerate() {
            for &(s2, e2) in &ranges[i + 1..] {
                prop_assert!(!(s1 < e2 && s2 < e1), "chunks overlap");
            }
        }
    }

    #[test]
    fn chunk_count_and_balance(len in 0usize..5000, parts in 1usize..128) {
        let ranges = chunk_ranges(len, parts);
        if len == 0 {
            prop_assert!(ranges.is_empty());
        } else {
            // Never empty chunks, so with len < parts there are len chunks.
            prop_assert_eq!(ranges.len(), parts.min(len));
            prop_assert!(ranges.iter().all(|(s, e)| e > s));
            let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
            let min = sizes.iter().min().copied().unwrap_or(0);
            let max = sizes.iter().max().copied().unwrap_or(0);
            prop_assert!(max - min <= 1, "chunks not balanced within one");
        }
    }

    #[test]
    fn degenerate_shapes_are_exact(parts in 1usize..128) {
        // len == 0: no chunks at all (never a zero-length chunk).
        prop_assert!(chunk_ranges(0, parts).is_empty());
        // len < n_chunks: one singleton chunk per element, in order.
        let len = parts / 2;
        let ranges = chunk_ranges(len, parts);
        let expect: Vec<(usize, usize)> = (0..len).map(|i| (i, i + 1)).collect();
        prop_assert_eq!(ranges, expect);
    }
}
