//! The rule engine: file context, suppression markers, test-region
//! masking, and the workspace walk.
//!
//! # Suppression markers
//!
//! A diagnostic is suppressed by a scoped marker comment:
//!
//! ```text
//! // lint:allow(panic-freedom) reaching here without prepare() is a bug
//! .expect("FedWCM used before prepare/aggregate")
//! ```
//!
//! The marker names exactly one rule and **must** carry a reason (at
//! least two words after the closing parenthesis). It applies to its
//! own line when it trails code, otherwise to the next line containing
//! code. Markers with a missing reason, an unknown rule name, or no
//! suppressed diagnostic on their target line are themselves hard
//! errors (`lint-marker`) that cannot be suppressed — CI therefore
//! fails on any new reasonless marker automatically.

use crate::ast::FileAst;
use crate::lexer::{lex, Tok, TokKind};
use crate::parser::parse_file;
use crate::rules;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Every rule the engine knows, in reporting order.
pub const ALL_RULES: &[&str] = &[
    "unsafe-safety",
    "determinism-collections",
    "determinism-time",
    "determinism-std-time",
    "determinism-env",
    "determinism-threads",
    "panic-freedom",
    "doc-coverage",
    "float-reduction-order",
    "rng-stream-hygiene",
    "lock-order",
    "cast-soundness",
    "checkpoint-symmetry",
    "discount-once",
    "metrics-registry",
    "parallel-escape-capture",
    "parallel-escape-index",
    "parallel-escape-send-sync",
];

/// One row of the rule taxonomy printed by `fedwcm-lint --rules`.
#[derive(Debug)]
pub struct RuleInfo {
    /// Rule id (kebab-case, an [`ALL_RULES`] entry).
    pub id: &'static str,
    /// Family: `safety`, `determinism`, `robustness`, `docs`,
    /// `protocol` (the v3 dataflow analyses), or `concurrency` (the
    /// static half of the `race_check` soundness story).
    pub family: &'static str,
    /// Severity — every family is a hard CI gate today.
    pub severity: &'static str,
    /// The legitimate escape hatch, if any.
    pub escape: &'static str,
}

/// The taxonomy, one row per [`ALL_RULES`] entry in the same order
/// (tested in the fixtures crate, and synced against DESIGN.md §9 and
/// the README rule table by the doc-sync test).
pub const RULE_INFO: &[RuleInfo] = &[
    RuleInfo {
        id: "unsafe-safety",
        family: "safety",
        severity: "error",
        escape: "write the `// SAFETY:` comment the rule asks for",
    },
    RuleInfo {
        id: "determinism-collections",
        family: "determinism",
        severity: "error",
        escape: "lint:allow(determinism-collections) <reason>",
    },
    RuleInfo {
        id: "determinism-time",
        family: "determinism",
        severity: "error",
        escape: "lint:allow(determinism-time) <reason>",
    },
    RuleInfo {
        id: "determinism-std-time",
        family: "determinism",
        severity: "error",
        escape: "blessed-file table in rules::BLESSINGS",
    },
    RuleInfo {
        id: "determinism-env",
        family: "determinism",
        severity: "error",
        escape: "blessed-file table in rules::BLESSINGS",
    },
    RuleInfo {
        id: "determinism-threads",
        family: "determinism",
        severity: "error",
        escape: "only the `parallel` crate may probe parallelism",
    },
    RuleInfo {
        id: "panic-freedom",
        family: "robustness",
        severity: "error",
        escape: "lint:allow(panic-freedom) <reason>",
    },
    RuleInfo {
        id: "doc-coverage",
        family: "docs",
        severity: "error",
        escape: "document the item (no suppression in DOC_CRATES)",
    },
    RuleInfo {
        id: "float-reduction-order",
        family: "determinism",
        severity: "error",
        escape: "use the index-ordered reducers in `parallel`/`stats`",
    },
    RuleInfo {
        id: "rng-stream-hygiene",
        family: "determinism",
        severity: "error",
        escape: "lint:allow(rng-stream-hygiene) <reason>",
    },
    RuleInfo {
        id: "lock-order",
        family: "robustness",
        severity: "error",
        escape: "lint:allow(lock-order) <reason>",
    },
    RuleInfo {
        id: "cast-soundness",
        family: "robustness",
        severity: "error",
        escape: "lint:allow(cast-soundness) <reason>",
    },
    RuleInfo {
        id: "checkpoint-symmetry",
        family: "protocol",
        severity: "error",
        escape: "lint:allow(checkpoint-symmetry) <reason>",
    },
    RuleInfo {
        id: "discount-once",
        family: "protocol",
        severity: "error",
        escape: "lint:allow(discount-once) <reason>",
    },
    RuleInfo {
        id: "metrics-registry",
        family: "protocol",
        severity: "error",
        escape: "add the constant to crates/trace/src/names.rs",
    },
    RuleInfo {
        id: "parallel-escape-capture",
        family: "concurrency",
        severity: "error",
        escape: "return per-index values; `parallel`/`stats` are exempt",
    },
    RuleInfo {
        id: "parallel-escape-index",
        family: "concurrency",
        severity: "error",
        escape: "derive the index from the closure's own parameter",
    },
    RuleInfo {
        id: "parallel-escape-send-sync",
        family: "concurrency",
        severity: "error",
        escape: "state the disjointness argument in the `// SAFETY:` comment",
    },
];

/// Pseudo-rule for invalid suppression markers; never suppressible.
pub const MARKER_RULE: &str = "lint-marker";

/// Library crates (by `crates/<dir>` name) holding deterministic,
/// panic-free simulation code. The determinism and panic-freedom
/// families apply only here — binaries, benches, and dev tools
/// (`experiments`, `bench`, the shims, this linter) are exempt.
pub const LIB_CRATES: &[&str] = &[
    "tensor",
    "nn",
    "fl",
    "core",
    "algos",
    "data",
    "he",
    "longtail",
    "stats",
    "parallel",
    "analysis",
    "faults",
    "trace",
    "transport",
    "obs",
];

/// Crates whose public items must carry rustdoc.
pub const DOC_CRATES: &[&str] = &[
    "tensor",
    "fl",
    "core",
    "parallel",
    "faults",
    "trace",
    "transport",
    "obs",
];

/// Crate allowed to call `thread::available_parallelism`.
pub const THREADS_BLESSED_CRATE: &str = "parallel";

/// One finding, pointing at a workspace-relative path and 1-based line.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path (`crates/fl/src/engine.rs`).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (kebab-case, from [`ALL_RULES`] or [`MARKER_RULE`]).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Which rules run. Defaults to all of them.
#[derive(Clone, Debug)]
pub struct LintConfig {
    enabled: BTreeSet<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            enabled: ALL_RULES.iter().map(|r| r.to_string()).collect(),
        }
    }
}

impl LintConfig {
    /// All rules enabled.
    pub fn all() -> Self {
        Self::default()
    }

    /// Only the named rules enabled. Unknown names are rejected.
    pub fn only<'a>(rules: impl IntoIterator<Item = &'a str>) -> Result<Self, String> {
        let mut cfg = LintConfig {
            enabled: BTreeSet::new(),
        };
        for r in rules {
            if !ALL_RULES.contains(&r) {
                return Err(format!("unknown rule '{r}'"));
            }
            cfg.enabled.insert(r.to_string());
        }
        Ok(cfg)
    }

    /// Disable one rule. Unknown names are rejected.
    pub fn disable(&mut self, rule: &str) -> Result<(), String> {
        if !ALL_RULES.contains(&rule) {
            return Err(format!("unknown rule '{rule}'"));
        }
        self.enabled.remove(rule);
        Ok(())
    }

    /// Is `rule` enabled?
    pub fn is_enabled(&self, rule: &str) -> bool {
        self.enabled.contains(rule)
    }
}

/// Per-line facts derived from the token stream.
#[derive(Clone, Debug, Default)]
pub struct LineInfo {
    /// Line holds at least one non-comment token.
    pub has_code: bool,
    /// Line holds (part of) a comment.
    pub has_comment: bool,
    /// Concatenated text of comments touching this line.
    pub comment_text: String,
    /// First non-comment token on the line is `#` (attribute line).
    pub starts_attr: bool,
}

/// A parsed suppression marker.
#[derive(Clone, Debug)]
struct Suppression {
    rule: String,
    /// Line whose diagnostics it suppresses.
    target_line: usize,
    /// Line the marker comment itself sits on.
    marker_line: usize,
    used: bool,
}

/// Everything the rules need to know about one source file.
pub struct FileCtx {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// `crates/<name>/…` directory name, when the file is in a crate.
    pub crate_name: Option<String>,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens (pattern matching runs
    /// over these so comments never split a match).
    pub code: Vec<usize>,
    /// Per-line facts, 1-based (`lines[0]` unused).
    pub lines: Vec<LineInfo>,
    /// `true` for every line inside `#[cfg(test)]` / `#[test]` items.
    pub test_lines: Vec<bool>,
    /// The parsed item/expression tree (shared by the syntax-aware
    /// rules and the workspace pass; built once per file per run).
    pub ast: FileAst,
    suppressions: Vec<Suppression>,
    marker_errors: Vec<Diagnostic>,
}

impl FileCtx {
    /// Lex and analyse one file given as in-memory text.
    pub fn new(path: &str, src: &str) -> Self {
        let toks = lex(src);
        let nlines = src.lines().count().max(1);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();

        let mut lines = vec![LineInfo::default(); nlines + 2];
        for t in &toks {
            let span = &mut lines[t.line..=t.end_line.min(nlines)];
            if t.is_comment() {
                for info in span {
                    info.has_comment = true;
                    info.comment_text.push_str(&t.text);
                    info.comment_text.push(' ');
                }
            } else {
                for info in span {
                    if !info.has_code {
                        info.starts_attr = t.is_punct('#');
                    }
                    info.has_code = true;
                }
            }
        }

        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(|s| s.to_string());

        let test_lines = test_line_mask(&toks, &code, nlines);
        let (suppressions, marker_errors) = parse_suppressions(path, &toks, &lines, nlines);
        let ast = parse_file(&toks, &code);

        FileCtx {
            path: path.to_string(),
            crate_name,
            toks,
            code,
            lines,
            test_lines,
            ast,
            suppressions,
            marker_errors,
        }
    }

    /// True when the file belongs to the named crate directory.
    pub fn in_crate(&self, name: &str) -> bool {
        self.crate_name.as_deref() == Some(name)
    }

    /// True when the file belongs to one of the library crates.
    pub fn is_lib_crate(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| LIB_CRATES.contains(&c))
    }

    /// True when `line` is inside test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// Build a diagnostic against this file.
    pub fn diag(&self, rule: &str, line: usize, message: String) -> Diagnostic {
        Diagnostic {
            path: self.path.clone(),
            line,
            rule: rule.to_string(),
            message,
        }
    }
}

/// Mark every line covered by a `#[cfg(test)]` or `#[test]` item.
fn test_line_mask(toks: &[Tok], code: &[usize], nlines: usize) -> Vec<bool> {
    let mut mask = vec![false; nlines + 2];
    let mut k = 0;
    while k + 1 < code.len() {
        let t = &toks[code[k]];
        if t.is_punct('#') && toks[code[k + 1]].is_punct('[') {
            // Collect the attribute's identifiers up to the matching `]`.
            let mut depth = 1usize;
            let mut j = k + 2;
            let mut idents: Vec<&str> = Vec::new();
            while j < code.len() && depth > 0 {
                let tj = &toks[code[j]];
                match tj.kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => depth -= 1,
                    TokKind::Ident => idents.push(&tj.text),
                    _ => {}
                }
                j += 1;
            }
            let is_test_attr = idents.as_slice() == ["test"]
                || (idents.first() == Some(&"cfg")
                    && idents.contains(&"test")
                    && !idents.contains(&"not"));
            if is_test_attr {
                // Skip further attributes/doc comments, then span the item:
                // from the attribute line to the item's closing `}` (or `;`).
                let start_line = t.line;
                let mut m = j;
                while m + 1 < code.len()
                    && toks[code[m]].is_punct('#')
                    && toks[code[m + 1]].is_punct('[')
                {
                    let mut d = 1usize;
                    let mut n = m + 2;
                    while n < code.len() && d > 0 {
                        match toks[code[n]].kind {
                            TokKind::Punct('[') => d += 1,
                            TokKind::Punct(']') => d -= 1,
                            _ => {}
                        }
                        n += 1;
                    }
                    m = n;
                }
                // Find the body's `{` (or a `;` ending a braceless item).
                let mut end_line = start_line;
                while m < code.len() {
                    let tm = &toks[code[m]];
                    if tm.is_punct(';') {
                        end_line = tm.line;
                        break;
                    }
                    if tm.is_punct('{') {
                        let mut d = 1usize;
                        let mut n = m + 1;
                        while n < code.len() && d > 0 {
                            match toks[code[n]].kind {
                                TokKind::Punct('{') => d += 1,
                                TokKind::Punct('}') => d -= 1,
                                _ => {}
                            }
                            if d == 0 {
                                end_line = toks[code[n]].end_line;
                            }
                            n += 1;
                        }
                        if d > 0 {
                            end_line = nlines;
                        }
                        break;
                    }
                    end_line = tm.end_line;
                    m += 1;
                }
                mask[start_line..=end_line.min(nlines)].fill(true);
            }
        }
        k += 1;
    }
    mask
}

/// Extract suppression markers from plain (non-doc) comment tokens.
/// Doc comments are prose *about* the marker syntax, never markers
/// themselves — the linter's own documentation depends on this.
fn parse_suppressions(
    path: &str,
    toks: &[Tok],
    lines: &[LineInfo],
    nlines: usize,
) -> (Vec<Suppression>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut errors = Vec::new();
    for t in toks {
        if !t.is_comment() || t.is_doc_comment() {
            continue;
        }
        let Some(pos) = t.text.find("lint:allow") else {
            continue;
        };
        let after = &t.text[pos + "lint:allow".len()..];
        let mut err = |msg: String| {
            errors.push(Diagnostic {
                path: path.to_string(),
                line: t.line,
                rule: MARKER_RULE.to_string(),
                message: msg,
            });
        };
        let Some(rest) = after.strip_prefix('(') else {
            err("malformed suppression: expected 'lint:allow(<rule>) reason…'".to_string());
            continue;
        };
        let Some(close) = rest.find(')') else {
            err("malformed suppression: missing ')' after rule name".to_string());
            continue;
        };
        let rule = rest[..close].trim();
        let reason = rest[close + 1..].trim();
        if !ALL_RULES.contains(&rule) {
            err(format!(
                "suppression names unknown rule '{rule}' (known: {})",
                ALL_RULES.join(", ")
            ));
            continue;
        }
        if reason.split_whitespace().count() < 2 {
            err(format!(
                "suppression of '{rule}' lacks a reason — markers must read \
                 'lint:allow({rule}) <why this is sound>'"
            ));
            continue;
        }
        // Scope: the marker's own line when it trails code, otherwise the
        // next line that contains code.
        let target_line = if lines[t.line].has_code {
            t.line
        } else {
            let mut ln = t.end_line + 1;
            while ln <= nlines && !lines[ln].has_code {
                ln += 1;
            }
            ln
        };
        sups.push(Suppression {
            rule: rule.to_string(),
            target_line,
            marker_line: t.line,
            used: false,
        });
    }
    (sups, errors)
}

/// Lint a set of in-memory sources as one workspace: every file is
/// lexed and parsed exactly once, the per-file rules run over each
/// [`FileCtx`], the cross-file pass (call graph, RNG taint, lock
/// order) runs over all of them together, and suppressions apply
/// uniformly to both kinds of findings.
pub fn lint_sources(sources: &[(String, String)], cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut ctxs: Vec<FileCtx> = sources
        .iter()
        .map(|(path, src)| FileCtx::new(path, src))
        .collect();
    let mut diags: Vec<Diagnostic> = Vec::new();
    for ctx in &ctxs {
        rules::run_all(ctx, cfg, &mut diags);
    }
    rules::run_workspace(&ctxs, cfg, &mut diags);

    // Apply suppressions; track which markers actually fired.
    let by_path: std::collections::BTreeMap<String, usize> = ctxs
        .iter()
        .enumerate()
        .map(|(i, c)| (c.path.clone(), i))
        .collect();
    let mut kept = Vec::with_capacity(diags.len());
    for d in diags {
        let mut suppressed = false;
        if let Some(&i) = by_path.get(&d.path) {
            for s in ctxs[i].suppressions.iter_mut() {
                if s.rule == d.rule && s.target_line == d.line {
                    s.used = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }
    // Markers that suppressed nothing are dead weight and likely typos —
    // but only when their rule actually ran this pass.
    for ctx in &mut ctxs {
        for s in &ctx.suppressions {
            if !s.used && cfg.is_enabled(&s.rule) {
                kept.push(Diagnostic {
                    path: ctx.path.clone(),
                    line: s.marker_line,
                    rule: MARKER_RULE.to_string(),
                    message: format!(
                        "suppression of '{}' matches no diagnostic on line {} — remove it",
                        s.rule, s.target_line
                    ),
                });
            }
        }
        kept.append(&mut ctx.marker_errors);
    }
    kept.sort();
    kept
}

/// Lint a single file given as in-memory text. `path` is the
/// workspace-relative path used for crate attribution and reporting.
/// The cross-file rules still run, scoped to this one file.
pub fn lint_file(path: &str, src: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    lint_sources(&[(path.to_string(), src.to_string())], cfg)
}

/// Recursively collect `*.rs` files under `dir`, sorted for
/// deterministic output.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The result of a full-workspace lint run.
pub struct LintRun {
    /// Diagnostics sorted by path, line, rule.
    pub diags: Vec<Diagnostic>,
    /// Number of `.rs` files visited (each lexed and parsed once).
    pub files: usize,
}

/// Lint every `crates/*/src/**/*.rs` under the workspace `root` —
/// one directory walk, one lex and one parse per file, shared by all
/// rules and the cross-file pass.
pub fn lint_workspace(root: &Path, cfg: &LintConfig) -> std::io::Result<LintRun> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }

    let mut sources = Vec::with_capacity(files.len());
    for f in &files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, std::fs::read_to_string(f)?));
    }
    Ok(LintRun {
        diags: lint_sources(&sources, cfg),
        files: sources.len(),
    })
}
