//! Property test: the lexer, parser, and full rule pipeline never
//! panic and always terminate on mutated Rust source.
//!
//! The parser is *recovering* by design — unparseable constructs
//! degrade to opaque nodes, never errors — and every rule consumes its
//! output, so "arbitrary byte garbage in, diagnostics (possibly none)
//! out" is part of its contract. Each case takes a real workspace
//! source file and applies a burst of byte-level mutations (replace /
//! insert / delete / truncate, all UTF-8-boundary-safe so the input
//! stays a valid `&str`), then runs the complete pipeline via
//! [`lint_file`]. The shim's generator is deterministically seeded, so
//! a failing case reproduces without a persistence file.

use fedwcm_lint::{lint_file, LintConfig};
use proptest::prelude::*;

/// Real sources to mutate: the parser's own grammar corner cases live
/// in the lint crate, and the fl files exercise the v3 rules' hot
/// paths (serializer pairs, discount dataflow, metric call sites).
const SOURCES: &[&str] = &[
    "crates/lint/src/lexer.rs",
    "crates/lint/src/parser.rs",
    "crates/fl/src/checkpoint.rs",
    "crates/fl/src/cadence.rs",
    "crates/trace/src/tracer.rs",
];

fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

/// Largest char-boundary index ≤ `i`.
fn floor_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// Apply one boundary-safe mutation chosen by `(kind, pos, byte)`.
fn mutate(src: &mut String, kind: u8, pos: usize, byte: u8) {
    if src.is_empty() {
        return;
    }
    let at = floor_boundary(src, pos % (src.len() + 1));
    // Printable ASCII plus the lexer's trickiest delimiters.
    let tricky = b"\"'#{}()[]<>/*!r b\n\\";
    let ch = if byte.is_multiple_of(3) {
        tricky[(byte as usize / 3) % tricky.len()] as char
    } else {
        (0x20 + byte % 0x5f) as char
    };
    match kind % 4 {
        0 => {
            // Replace the char at `at` (if any) with `ch`.
            if let Some(c) = src[at..].chars().next() {
                src.replace_range(at..at + c.len_utf8(), &ch.to_string());
            }
        }
        1 => src.insert(at, ch),
        2 => {
            if let Some(c) = src[at..].chars().next() {
                src.replace_range(at..at + c.len_utf8(), "");
            }
        }
        _ => src.truncate(at),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pipeline_never_panics_on_mutated_sources(
        file in 0usize..5,
        muts in prop::collection::vec((any::<u8>(), any::<usize>(), any::<u8>()), 1..24),
    ) {
        let root = workspace_root();
        let path = SOURCES[file];
        let mut src = std::fs::read_to_string(root.join(path)).expect("source readable");
        for (kind, pos, byte) in muts {
            mutate(&mut src, kind, pos, byte);
        }
        // Panics fail the test; non-termination trips the suite's
        // timeout. Diagnostics (any number, including none) are fine.
        let _ = lint_file(path, &src, &LintConfig::all());
    }
}
