//! Opt-in per-layer profiling hooks for the neural-net hot path.
//!
//! Library code (`fedwcm-nn`) guards its timing with the `#[inline]`
//! [`active`] check — a single relaxed atomic load when profiling is
//! off, so the hot path pays nothing by default. A binary or bench
//! opts in once via [`install`], providing the clock (normally
//! [`crate::WallClock`]) and the registry that receives the
//! `nn.<dir>.<layer>` histograms. The profiling registry is kept
//! separate from a run's deterministic metrics registry on purpose:
//! wall timings must never leak into state that checkpoint round-trip
//! or determinism tests compare.

use crate::clock::Clock;
use crate::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// Nanosecond bucket bounds for layer timings: 1 µs … 1 s.
const LAYER_BOUNDS: [f64; 7] = [1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9];

struct LayerProf {
    clock: Box<dyn Clock>,
    registry: Arc<MetricsRegistry>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PROF: OnceLock<LayerProf> = OnceLock::new();

/// True once a profiler has been installed. `#[inline]` + a relaxed
/// load keeps the disabled-path cost to a single branch.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Install the process-wide layer profiler. Returns `false` (and
/// changes nothing) if one was already installed — the hooks are
/// process-global, so first caller wins.
pub fn install(clock: Box<dyn Clock>, registry: Arc<MetricsRegistry>) -> bool {
    let installed = PROF.set(LayerProf { clock, registry }).is_ok();
    if installed {
        ACTIVE.store(true, Ordering::Release);
    }
    installed
}

/// Current profiler tick, or 0 when no profiler is installed. Pair two
/// reads around the timed region and hand the difference to [`record`].
pub fn now() -> u64 {
    match PROF.get() {
        Some(p) => p.clock.tick(),
        None => 0,
    }
}

/// Record an elapsed-ticks observation into the histogram
/// `nn.<dir>.<layer>` (e.g. `nn.fwd.dense`, `nn.bwd.conv`).
pub fn record(dir: &'static str, layer: &'static str, ticks: u64) {
    if let Some(p) = PROF.get() {
        let name = format!("nn.{dir}.{layer}");
        p.registry.observe(&name, &LAYER_BOUNDS, ticks as f64);
    }
}

/// Snapshot of the profiling registry, or `None` when no profiler is
/// installed.
pub fn snapshot() -> Option<crate::metrics::MetricsSnapshot> {
    PROF.get().map(|p| p.registry.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::metrics::MetricValue;

    // All assertions live in one test: install() is process-global and
    // OnceLock cannot be reset, so ordering across tests would race.
    #[test]
    fn install_record_snapshot() {
        assert!(!active());
        assert_eq!(now(), 0);
        record("fwd", "dense", 123); // no-op before install

        let reg = Arc::new(MetricsRegistry::new());
        assert!(install(Box::new(LogicalClock::new()), reg.clone()));
        assert!(active());
        assert!(!install(
            Box::new(LogicalClock::new()),
            Arc::new(MetricsRegistry::new())
        ));

        let t0 = now();
        let t1 = now();
        assert!(t1 > t0);
        record("fwd", "dense", t1 - t0);
        let snap = snapshot().unwrap();
        match snap.get("nn.fwd.dense") {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.total, 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
