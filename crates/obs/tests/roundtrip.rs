//! Property test: the obs parser round-trips anything the real
//! `fedwcm-trace` encoder can write.
//!
//! Events with arbitrary kinds, taxonomy names, and field values —
//! including negative integers, non-finite floats (encoded as `null`),
//! bit-pattern floats exercising shortest-roundtrip `Display`, and
//! strings full of escapes — are pushed through a real `JsonlSink`
//! into a shared buffer; the obs parser must accept the bytes, and
//! re-encoding every record must reproduce the sink's output exactly.

use fedwcm_obs::{parse_trace, TraceValue};
use fedwcm_trace::{Event, EventKind, JsonlSink, SharedBuf, Sink, Value};
use proptest::prelude::*;

/// Names the sink can write: `Event::name` is `&'static str` drawn
/// from the fixed taxonomy, never arbitrary text.
const NAMES: &[&str] = &[
    "round",
    "client_update",
    "local_epoch",
    "aggregate",
    "buffer_flush",
    "async_apply",
    "evaluate",
    "checkpoint",
    "fault_inject",
    "send_frame",
    "fault",
    "info",
    "retry",
    "ack",
];

/// Field keys seen in real traces (also `&'static str` at the encoder).
const KEYS: &[&str] = &[
    "round", "client", "batches", "loss", "kind", "msg", "ok", "lt", "attempt", "bytes",
];

/// Strings that exercise every escape path in the encoder: named
/// escapes, `\u00XX` control characters, multi-byte UTF-8, and an
/// astral-plane character (surrogate pair territory in `\u` terms).
const STRINGS: &[&str] = &[
    "",
    "plain",
    "with \"quotes\" and \\backslash\\",
    "line\nbreak\ttab\rret",
    "ctrl\u{1}\u{1f}chars",
    "héllo — ツ",
    "😀 astral",
    "dropout",
];

fn value_strategy() -> impl Strategy<Value = Value> {
    (0u8..6, any::<u64>(), 0usize..STRINGS.len()).prop_map(|(tag, raw, si)| match tag {
        0 => Value::U64(raw),
        // Cast is exact: same 64 bits reinterpreted.
        1 => Value::I64(raw as i64),
        // Bit-pattern floats cover subnormals, NaN, and infinities.
        2 => Value::F64(f64::from_bits(raw)),
        // Small "ordinary" floats exercise the `.0` suffix rule.
        3 => Value::F64((raw % 2048) as f64 / 16.0),
        4 => Value::Bool(raw & 1 == 1),
        _ => Value::Str(STRINGS[si].to_string()),
    })
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (
        any::<u64>(),
        0u8..3,
        0usize..NAMES.len(),
        prop::collection::vec((0usize..KEYS.len(), value_strategy()), 0..5),
    )
        .prop_map(|(t, kind, ni, fields)| Event {
            t,
            kind: match kind {
                0 => EventKind::Start,
                1 => EventKind::End,
                _ => EventKind::Point,
            },
            name: NAMES[ni],
            fields: fields.into_iter().map(|(ki, v)| (KEYS[ki], v)).collect(),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parser_round_trips_any_sink_written_trace(
        events in prop::collection::vec(event_strategy(), 0..40),
    ) {
        let buf = SharedBuf::new();
        let sink = JsonlSink::new(buf.clone());
        for e in &events {
            sink.record(e);
        }
        sink.flush();
        let bytes = buf.contents();
        let text = std::str::from_utf8(&bytes).expect("sink output is UTF-8");

        let records = parse_trace(text).expect("parser accepts sink output");
        prop_assert_eq!(records.len(), events.len());

        // Byte-level identity: re-encoding each record reproduces the
        // sink's line exactly.
        let reencoded: String = records
            .iter()
            .map(|r| format!("{}\n", r.to_json_line()))
            .collect();
        prop_assert_eq!(reencoded.as_str(), text);

        // Structural fidelity: header fields survive, and field values
        // match up to the encoder's documented normalizations
        // (non-finite floats -> null, non-negative i64 -> u64).
        for (e, r) in events.iter().zip(&records) {
            prop_assert_eq!(r.t, e.t);
            prop_assert_eq!(r.kind.tag(), e.kind.tag());
            prop_assert_eq!(r.name.as_str(), e.name);
            prop_assert_eq!(r.fields.len(), e.fields.len());
            for ((ek, ev), (rk, rv)) in e.fields.iter().zip(&r.fields) {
                prop_assert_eq!(rk.as_str(), *ek);
                match ev {
                    Value::U64(x) => prop_assert_eq!(rv, &TraceValue::U64(*x)),
                    Value::I64(x) if *x < 0 => prop_assert_eq!(rv, &TraceValue::I64(*x)),
                    Value::I64(x) => prop_assert_eq!(rv, &TraceValue::U64(*x as u64)),
                    Value::F64(x) if x.is_finite() => {
                        prop_assert_eq!(rv, &TraceValue::F64(*x));
                    }
                    Value::F64(_) => prop_assert_eq!(rv, &TraceValue::Null),
                    Value::Bool(b) => prop_assert_eq!(rv, &TraceValue::Bool(*b)),
                    Value::Str(s) => prop_assert_eq!(rv, &TraceValue::Str(s.clone())),
                }
            }
        }
    }
}

/// The tracer's own probe output — a realistic nested trace — parses,
/// builds a forest, and profiles without error. (Kept here rather than
/// in the lib tests so it exercises the public API surface only.)
#[test]
fn sink_output_with_spans_profiles_end_to_end() {
    let buf = SharedBuf::new();
    let sink = JsonlSink::new(buf.clone());
    let lines = [
        Event {
            t: 1,
            kind: EventKind::Start,
            name: "round",
            fields: vec![("round", Value::U64(0)), ("sampled", Value::U64(2))],
        },
        Event {
            t: 2,
            kind: EventKind::Start,
            name: "client_update",
            fields: vec![("client", Value::U64(0)), ("loss", Value::F64(2.5))],
        },
        Event {
            t: 5,
            kind: EventKind::End,
            name: "client_update",
            fields: vec![],
        },
        Event {
            t: 6,
            kind: EventKind::Point,
            name: "fault",
            fields: vec![("kind", Value::Str("dropout".into()))],
        },
        Event {
            t: 7,
            kind: EventKind::End,
            name: "round",
            fields: vec![],
        },
    ];
    for e in &lines {
        sink.record(e);
    }
    let bytes = buf.contents();
    let text = std::str::from_utf8(&bytes).expect("utf8");
    let records = parse_trace(text).expect("parses");
    let forest = fedwcm_obs::build_forest(&records).expect("well-formed");
    let profile = fedwcm_obs::analyze(&forest);
    assert_eq!(profile.rounds.len(), 1);
    assert_eq!(profile.rounds[0].fault_points, 1);
    assert_eq!(profile.rounds[0].critical_path, "round;client_update");
}
