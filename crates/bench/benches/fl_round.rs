//! Per-round federated costs: one client's local training, server
//! aggregation, and FedWCM's parameter computation.

use criterion::{criterion_group, criterion_main, Criterion};
use fedwcm_bench::bench_dataset;
use fedwcm_core::{aggregation_weights, client_scores, global_distribution, temperature};
use fedwcm_data::partition::paper_partition;
use fedwcm_fl::algorithm::uniform_average;
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_fl::FlConfig;
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;
use std::hint::black_box;

fn factory() -> fedwcm_nn::model::Model {
    let mut rng = Xoshiro256pp::seed_from(4242);
    mlp(64, &[64], 10, &mut rng)
}

fn bench_local_train(c: &mut Criterion) {
    let (train, _) = bench_dataset(0.1);
    let views = paper_partition(&train, 8, 0.3, 1).views(&train);
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 8;
    cfg.batch_size = 20;
    cfg.local_epochs = 2;
    let model = factory();
    let global = model.params().to_vec();

    c.bench_function("client_local_sgd_2epochs", |b| {
        b.iter(|| {
            let env = ClientEnv {
                id: 0,
                round: 0,
                dataset: &train,
                view: &views[0],
                cfg: &cfg,
                factory: &factory,
            };
            let spec = LocalSgdSpec {
                loss: &CrossEntropy,
                balanced_sampler: false,
                lr: 0.1,
                epochs: 2,
            };
            black_box(run_local_sgd(&env, black_box(&global), &spec, |_, _, _| {}))
        });
    });
}

fn bench_aggregation(c: &mut Criterion) {
    let dim = 50_000usize;
    let updates: Vec<ClientUpdate> = (0..10)
        .map(|k| ClientUpdate {
            client: k,
            delta: (0..dim).map(|i| ((i + k) as f32).sin()).collect(),
            num_samples: 100,
            num_batches: 10,
            avg_loss: 1.0,
            extra: None,
        })
        .collect();
    c.bench_function("uniform_average_10x50k", |b| {
        b.iter(|| {
            let mut out = vec![0.0f32; dim];
            uniform_average(black_box(&updates), &mut out);
            black_box(out)
        });
    });
}

fn bench_fedwcm_params(c: &mut Criterion) {
    let (train, _) = bench_dataset(0.1);
    let views = paper_partition(&train, 50, 0.1, 2).views(&train);
    c.bench_function("fedwcm_scores_weights_50clients", |b| {
        b.iter(|| {
            let dist = global_distribution(black_box(&views), 10);
            let target = vec![0.1f64; 10];
            let scores = client_scores(&views, &dist, &target);
            let t = temperature(&dist, &target);
            black_box(aggregation_weights(&scores[..10], t))
        });
    });
}

criterion_group!(
    name = fl_round;
    config = Criterion::default().sample_size(20);
    targets = bench_local_train, bench_aggregation, bench_fedwcm_params
);
criterion_main!(fl_round);
