//! Round-by-round histories, fault accounting, and summary statistics.

use fedwcm_trace::MetricsSnapshot;
use fedwcm_transport::NetCounters;

/// Per-round tally of injected faults and their handling (all zero on a
/// fault-free run; see `fedwcm-faults` for the taxonomy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoundFaults {
    /// Uploads lost to injected dropout.
    pub dropouts: u32,
    /// Uploads delayed this round (buffered for a later round).
    pub stragglers: u32,
    /// Buffered late uploads merged into this round (with their
    /// staleness discount applied).
    pub late_merged: u32,
    /// Late uploads that arrived on a round which skipped aggregation
    /// (empty or quorum-failed) and were re-queued — undiscounted, with
    /// their staleness bumped — instead of being discarded. Each
    /// re-queue also retracts the round's `late_merged` count for that
    /// upload, so a given arrival is tallied as merged *or* re-queued,
    /// never both.
    pub late_requeued: u32,
    /// Uploads corrupted in transit this round.
    pub corruptions: u32,
    /// Uploads replaced by a stale replayed duplicate this round.
    pub replays: u32,
    /// True if fewer than `quorum_frac` of the sampled clients reported a
    /// healthy update, so the round skipped aggregation.
    pub quorum_failed: bool,
}

impl RoundFaults {
    /// Total faults injected this round (late merges are the *handling*
    /// of an earlier straggler injection, so they are not re-counted).
    pub fn injected(&self) -> u32 {
        self.dropouts + self.stragglers + self.corruptions + self.replays
    }
}

/// One round's record.
#[derive(Clone, Debug)]
pub struct RoundRecord {
    /// Round index.
    pub round: usize,
    /// Mean local training loss across the clients that reported this
    /// round; `None` when no client reported (fully dropped round).
    pub train_loss: Option<f64>,
    /// L2 norm of the applied server direction.
    pub update_norm: f64,
    /// Test accuracy, if this round was evaluated.
    pub test_acc: Option<f64>,
    /// Momentum value α used (momentum methods only).
    pub alpha: Option<f64>,
    /// Aggregation events applied to the global model this round: 0 or 1
    /// under the sync cadence, one per buffer flush under buffered-K, and
    /// one per individual staleness-weighted apply under async.
    pub aggregations: u32,
    /// Client updates discarded this round by the containment filter
    /// (non-finite values or a norm past `max_update_norm`; see `engine`).
    pub dropped_updates: usize,
    /// Injected-fault tally for this round.
    pub faults: RoundFaults,
    /// Transport activity for this round: frames sent, retries, rejected
    /// frames, and deliveries degraded to dropout. All zero when no
    /// network plan (or a zero-rate plan) is attached.
    pub net: NetCounters,
}

/// A full training trajectory for one algorithm run.
#[derive(Clone, Debug)]
pub struct History {
    /// Algorithm display name.
    pub name: String,
    /// Per-round records.
    pub records: Vec<RoundRecord>,
    /// Snapshot of the run's metrics registry (empty unless a registry
    /// was attached via `Simulation::with_metrics`). Checkpoints carry
    /// it, so a resumed run's counters continue where they left off.
    pub metrics: MetricsSnapshot,
}

impl History {
    /// New empty history.
    pub fn new(name: impl Into<String>) -> Self {
        History {
            name: name.into(),
            records: Vec::new(),
            metrics: MetricsSnapshot::default(),
        }
    }

    /// All `(round, accuracy)` evaluation points.
    pub fn accuracy_series(&self) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter_map(|r| r.test_acc.map(|a| (r.round, a)))
            .collect()
    }

    /// Mean accuracy over the last `window` evaluations (the reported
    /// "final accuracy"; robust to single-round noise).
    pub fn final_accuracy(&self, window: usize) -> f64 {
        let series = self.accuracy_series();
        if series.is_empty() {
            return 0.0;
        }
        let take = window.max(1).min(series.len());
        let tail = &series[series.len() - take..];
        tail.iter().map(|&(_, a)| a).sum::<f64>() / take as f64
    }

    /// Best accuracy observed at any evaluation.
    pub fn best_accuracy(&self) -> f64 {
        self.accuracy_series()
            .iter()
            .map(|&(_, a)| a)
            .fold(0.0, f64::max)
    }

    /// First round at which accuracy reached `threshold`, if ever.
    pub fn rounds_to_reach(&self, threshold: f64) -> Option<usize> {
        self.accuracy_series()
            .iter()
            .find(|&&(_, a)| a >= threshold)
            .map(|&(r, _)| r)
    }

    /// Mean training loss over the rounds that observed one. Rounds where
    /// every upload was lost carry `train_loss: None` and are skipped, so
    /// the mean can never silently absorb a NaN sentinel. Returns `None`
    /// if no round observed a loss.
    pub fn mean_train_loss(&self) -> Option<f64> {
        let observed: Vec<f64> = self.records.iter().filter_map(|r| r.train_loss).collect();
        if observed.is_empty() {
            return None;
        }
        Some(observed.iter().sum::<f64>() / observed.len() as f64)
    }

    /// Summarize this run's injected faults and, against an optional
    /// fault-free baseline, the accuracy cost they exacted.
    pub fn resilience_report(&self, baseline: Option<&History>) -> ResilienceReport {
        let mut totals = RoundFaults::default();
        let mut quorum_failures = 0usize;
        let mut contained = 0usize;
        for r in &self.records {
            totals.dropouts += r.faults.dropouts;
            totals.stragglers += r.faults.stragglers;
            totals.late_merged += r.faults.late_merged;
            totals.late_requeued += r.faults.late_requeued;
            totals.corruptions += r.faults.corruptions;
            totals.replays += r.faults.replays;
            if r.faults.quorum_failed {
                quorum_failures += 1;
            }
            contained += r.dropped_updates;
        }
        let final_accuracy = self.final_accuracy(1);
        ResilienceReport {
            rounds: self.records.len(),
            totals,
            net: self.net_totals(),
            quorum_failures,
            contained_updates: contained,
            final_accuracy,
            baseline_accuracy: baseline.map(|b| b.final_accuracy(1)),
            accuracy_delta: baseline.map(|b| final_accuracy - b.final_accuracy(1)),
        }
    }

    /// Transport counters summed over every round (all zero when no
    /// network plan was attached).
    pub fn net_totals(&self) -> NetCounters {
        let mut totals = NetCounters::default();
        for r in &self.records {
            totals.merge(&r.net);
        }
        totals
    }

    /// Standard deviation of accuracy over the last `window` evaluations —
    /// large values indicate the oscillation/non-convergence signature the
    /// paper reports for FedCM under long tails.
    pub fn tail_accuracy_std(&self, window: usize) -> f64 {
        let series = self.accuracy_series();
        if series.len() < 2 {
            return 0.0;
        }
        let take = window.max(2).min(series.len());
        let tail: Vec<f64> = series[series.len() - take..]
            .iter()
            .map(|&(_, a)| a)
            .collect();
        fedwcm_stats::describe::stddev(&tail)
    }
}

/// Whole-run fault summary produced by [`History::resilience_report`]:
/// what was injected, how the server coped, and (against a fault-free
/// baseline) what the faults cost in accuracy.
#[derive(Clone, Debug, PartialEq)]
pub struct ResilienceReport {
    /// Rounds in the run.
    pub rounds: usize,
    /// Per-fault-type totals over all rounds.
    pub totals: RoundFaults,
    /// Transport totals over all rounds: retries attempted, frames
    /// rejected, deliveries degraded to dropout (zero without a plan).
    pub net: NetCounters,
    /// Rounds that failed quorum and skipped aggregation.
    pub quorum_failures: usize,
    /// Updates discarded by the containment filter (includes the
    /// corrupted uploads it absorbed).
    pub contained_updates: usize,
    /// Final accuracy of this (faulted) run.
    pub final_accuracy: f64,
    /// Final accuracy of the baseline run, when one was supplied.
    pub baseline_accuracy: Option<f64>,
    /// `final_accuracy − baseline_accuracy`, when a baseline was supplied.
    pub accuracy_delta: Option<f64>,
}

impl core::fmt::Display for ResilienceReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "resilience report over {} rounds", self.rounds)?;
        writeln!(
            f,
            "  injected: {} dropouts, {} stragglers ({} merged late, {} re-queued), {} corruptions, {} replays",
            self.totals.dropouts,
            self.totals.stragglers,
            self.totals.late_merged,
            self.totals.late_requeued,
            self.totals.corruptions,
            self.totals.replays
        )?;
        writeln!(
            f,
            "  handled:  {} quorum failures, {} updates contained",
            self.quorum_failures, self.contained_updates
        )?;
        if !self.net.is_zero() {
            writeln!(
                f,
                "  network:  {} frames sent, {} retries, {} rejected, {} duplicates, {} delayed, {} degraded to dropout",
                self.net.frames_sent,
                self.net.retries,
                self.net.rejected_frames,
                self.net.duplicates,
                self.net.delayed,
                self.net.degraded
            )?;
        }
        write!(f, "  final accuracy: {:.4}", self.final_accuracy)?;
        if let (Some(base), Some(delta)) = (self.baseline_accuracy, self.accuracy_delta) {
            write!(f, " (baseline {base:.4}, delta {delta:+.4})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history_with(accs: &[(usize, f64)]) -> History {
        let mut h = History::new("test");
        for &(round, acc) in accs {
            h.records.push(RoundRecord {
                round,
                train_loss: Some(1.0),
                update_norm: 0.5,
                test_acc: Some(acc),
                alpha: None,
                aggregations: 1,
                dropped_updates: 0,
                faults: RoundFaults::default(),
                net: NetCounters::default(),
            });
        }
        h
    }

    #[test]
    fn final_accuracy_averages_tail() {
        let h = history_with(&[(0, 0.1), (5, 0.5), (10, 0.7), (15, 0.9)]);
        assert!((h.final_accuracy(2) - 0.8).abs() < 1e-12);
        assert!((h.final_accuracy(100) - 0.55).abs() < 1e-12);
        assert_eq!(History::new("x").final_accuracy(3), 0.0);
    }

    #[test]
    fn best_and_threshold() {
        let h = history_with(&[(0, 0.2), (5, 0.8), (10, 0.6)]);
        assert_eq!(h.best_accuracy(), 0.8);
        assert_eq!(h.rounds_to_reach(0.7), Some(5));
        assert_eq!(h.rounds_to_reach(0.9), None);
    }

    #[test]
    fn tail_std_detects_oscillation() {
        let stable = history_with(&[(0, 0.70), (1, 0.71), (2, 0.70), (3, 0.71)]);
        let unstable = history_with(&[(0, 0.1), (1, 0.6), (2, 0.15), (3, 0.5)]);
        assert!(unstable.tail_accuracy_std(4) > stable.tail_accuracy_std(4) * 5.0);
    }

    #[test]
    fn unevaluated_rounds_skipped() {
        let mut h = History::new("x");
        h.records.push(RoundRecord {
            round: 0,
            train_loss: Some(1.0),
            update_norm: 0.1,
            test_acc: None,
            alpha: None,
            aggregations: 1,
            dropped_updates: 0,
            faults: RoundFaults::default(),
            net: NetCounters::default(),
        });
        assert!(h.accuracy_series().is_empty());
    }

    #[test]
    fn mean_train_loss_skips_dropped_rounds() {
        // A fully-dropped round records no loss; the mean must skip it
        // rather than propagate a NaN sentinel (regression for the old
        // `train_loss: f64::NAN` encoding).
        let mut h = history_with(&[(0, 0.5), (1, 0.6)]);
        h.records[0].train_loss = Some(2.0);
        h.records[1].train_loss = Some(4.0);
        h.records.push(RoundRecord {
            round: 2,
            train_loss: None,
            update_norm: 0.0,
            test_acc: None,
            alpha: None,
            aggregations: 0,
            dropped_updates: 1,
            faults: RoundFaults::default(),
            net: NetCounters::default(),
        });
        let mean = h.mean_train_loss().expect("two observed losses");
        assert_eq!(mean, 3.0);
        assert!(mean.is_finite(), "NaN leaked into the mean");
        assert_eq!(History::new("empty").mean_train_loss(), None);
    }

    #[test]
    fn resilience_report_totals_and_delta() {
        let mut faulted = history_with(&[(0, 0.4), (1, 0.6)]);
        faulted.records[0].faults = RoundFaults {
            dropouts: 2,
            stragglers: 1,
            late_merged: 0,
            late_requeued: 1,
            corruptions: 1,
            replays: 0,
            quorum_failed: true,
        };
        faulted.records[1].faults = RoundFaults {
            dropouts: 1,
            stragglers: 0,
            late_merged: 1,
            late_requeued: 0,
            corruptions: 0,
            replays: 1,
            quorum_failed: false,
        };
        faulted.records[1].dropped_updates = 1;
        let baseline = history_with(&[(0, 0.5), (1, 0.7)]);
        let rep = faulted.resilience_report(Some(&baseline));
        assert_eq!(rep.totals.dropouts, 3);
        assert_eq!(rep.totals.stragglers, 1);
        assert_eq!(rep.totals.late_merged, 1);
        assert_eq!(rep.totals.late_requeued, 1);
        assert_eq!(rep.totals.corruptions, 1);
        assert_eq!(rep.totals.replays, 1);
        assert_eq!(rep.totals.injected(), 6);
        assert_eq!(rep.quorum_failures, 1);
        assert_eq!(rep.contained_updates, 1);
        assert!((rep.accuracy_delta.expect("baseline given") + 0.1).abs() < 1e-12);
        // Display formatting shouldn't panic and mentions the counts.
        let text = rep.to_string();
        assert!(text.contains("3 dropouts"));
        assert!(text.contains("1 quorum failures"));
        assert!(
            !text.contains("network:"),
            "no transport activity, no network line"
        );
    }

    #[test]
    fn resilience_report_surfaces_transport_outcomes() {
        let mut h = history_with(&[(0, 0.4), (1, 0.6)]);
        h.records[0].net = NetCounters {
            frames_sent: 12,
            retries: 3,
            rejected_frames: 2,
            rejected_bytes: 96,
            retransmitted_bytes: 144,
            ..NetCounters::default()
        };
        h.records[1].net = NetCounters {
            frames_sent: 10,
            degraded: 1,
            delayed: 1,
            duplicates: 1,
            ..NetCounters::default()
        };
        let rep = h.resilience_report(None);
        assert_eq!(rep.net.frames_sent, 22);
        assert_eq!(rep.net.retries, 3);
        assert_eq!(rep.net.rejected_frames, 2);
        assert_eq!(rep.net.degraded, 1);
        assert_eq!(rep.net, h.net_totals());
        let text = rep.to_string();
        assert!(text.contains("22 frames sent"));
        assert!(text.contains("3 retries"));
        assert!(text.contains("1 degraded to dropout"));
    }
}
