//! Minimal CLI parsing shared by the experiment binaries (no external
//! argument-parsing dependency).

use fedwcm_fl::{Cadence, NetConfig};
use fedwcm_trace::{ConsoleSink, Tracer, WallClock};
use std::sync::Arc;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds per run: CI / smoke-testing.
    Smoke,
    /// Minutes per experiment: the default used for EXPERIMENTS.md.
    Quick,
    /// The paper's sizes (100 clients, 500 rounds, …).
    Paper,
}

/// Parsed command-line options.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Run scale.
    pub scale: Scale,
    /// Base seed.
    pub seed: u64,
    /// Number of seeds to average (the paper uses 3).
    pub trials: usize,
    /// Optional dataset filter (matches preset names, e.g. "cifar-10").
    pub dataset: Option<String>,
    /// Optional round-count override.
    pub rounds: Option<usize>,
    /// Server aggregation cadence (`--cadence sync|buffered:K|async:N`).
    pub cadence: Cadence,
    /// Network-fault plan for the wire transport
    /// (`--net drop:0.1,delay:2`); `None` runs without a transport.
    pub net: Option<NetConfig>,
    /// Console verbosity: 0 (`--quiet`) silences progress, 1 (default)
    /// prints progress lines, 2 (`--verbose`) echoes every trace event.
    pub verbosity: u8,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: Scale::Quick,
            seed: 42,
            trials: 1,
            dataset: None,
            rounds: None,
            cadence: Cadence::Sync,
            net: None,
            verbosity: 1,
        }
    }
}

impl Cli {
    /// The single console for experiment progress: a wall-clock tracer
    /// writing to stderr through [`ConsoleSink`], or a disabled tracer
    /// under `--quiet`. Binaries report progress with `.info(...)` so
    /// verbosity is decided in one place; artifact rows (tables, CSV)
    /// stay on stdout untouched.
    pub fn console(&self) -> Tracer {
        if self.verbosity == 0 {
            Tracer::disabled()
        } else {
            Tracer::new(
                Box::new(WallClock::new()),
                Arc::new(ConsoleSink::new(self.verbosity)),
            )
        }
    }
}

/// Parse `std::env::args`-style strings. Unknown flags abort with usage.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Cli {
    let mut cli = Cli::default();
    let mut it = args.into_iter();
    let _bin = it.next();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => cli.scale = Scale::Smoke,
            "--quick" => cli.scale = Scale::Quick,
            "--paper-scale" => cli.scale = Scale::Paper,
            "--seed" => {
                cli.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--trials" => {
                cli.trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--trials needs an integer"));
            }
            "--rounds" => {
                cli.rounds = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--rounds needs an integer")),
                );
            }
            "--dataset" => {
                cli.dataset = Some(it.next().unwrap_or_else(|| usage("--dataset needs a name")));
            }
            "--cadence" => {
                cli.cadence = it
                    .next()
                    .as_deref()
                    .and_then(Cadence::parse)
                    .unwrap_or_else(|| usage("--cadence needs sync, buffered:K, or async:N"));
            }
            "--net" => {
                let spec = it.next().unwrap_or_else(|| usage("--net needs a spec"));
                cli.net =
                    Some(NetConfig::parse(&spec).unwrap_or_else(|e| usage(&format!("--net: {e}"))));
            }
            "--quiet" | "-q" => cli.verbosity = 0,
            "--verbose" | "-v" => cli.verbosity = 2,
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other}")),
        }
    }
    assert!(cli.trials >= 1, "trials must be ≥ 1");
    cli
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <experiment> [--smoke|--quick|--paper-scale] [--seed N] \
         [--trials N] [--rounds N] [--dataset NAME] \
         [--cadence sync|buffered:K|async:N] \
         [--net drop:F,corrupt:F,dup:F,reorder:F,delayp:F,delay:N,seed:N] \
         [--quiet|-q] [--verbose|-v]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        let mut v = vec!["bin".to_string()];
        v.extend(args.iter().map(|s| s.to_string()));
        parse_args(v)
    }

    #[test]
    fn defaults() {
        let c = parse(&[]);
        assert_eq!(c.scale, Scale::Quick);
        assert_eq!(c.seed, 42);
        assert_eq!(c.trials, 1);
        assert!(c.dataset.is_none());
    }

    #[test]
    fn all_flags() {
        let c = parse(&[
            "--smoke",
            "--seed",
            "7",
            "--trials",
            "3",
            "--dataset",
            "cifar-10",
            "--rounds",
            "99",
        ]);
        assert_eq!(c.scale, Scale::Smoke);
        assert_eq!(c.seed, 7);
        assert_eq!(c.trials, 3);
        assert_eq!(c.dataset.as_deref(), Some("cifar-10"));
        assert_eq!(c.rounds, Some(99));
    }

    #[test]
    fn paper_scale_flag() {
        assert_eq!(parse(&["--paper-scale"]).scale, Scale::Paper);
    }

    #[test]
    fn cadence_flag() {
        assert_eq!(parse(&[]).cadence, Cadence::Sync);
        assert_eq!(parse(&["--cadence", "sync"]).cadence, Cadence::Sync);
        assert_eq!(
            parse(&["--cadence", "buffered:3"]).cadence,
            Cadence::BufferedK { k: 3 }
        );
        assert_eq!(
            parse(&["--cadence", "async:2"]).cadence,
            Cadence::Async { max_in_flight: 2 }
        );
    }

    #[test]
    fn net_flag() {
        assert!(parse(&[]).net.is_none());
        let cfg = parse(&["--net", "drop:0.1,delay:2"]).net.expect("parsed");
        assert_eq!(cfg.drop, 0.1);
        assert_eq!(cfg.max_delay_rounds, 2);
        assert!(cfg.delay > 0.0, "delay:N implies a default delay rate");
    }

    #[test]
    fn verbosity_flags() {
        assert_eq!(parse(&[]).verbosity, 1);
        assert_eq!(parse(&["--quiet"]).verbosity, 0);
        assert_eq!(parse(&["-q"]).verbosity, 0);
        assert_eq!(parse(&["--verbose"]).verbosity, 2);
        assert_eq!(parse(&["-v"]).verbosity, 2);
    }

    #[test]
    fn quiet_console_is_disabled() {
        assert!(!parse(&["--quiet"]).console().enabled());
        assert!(parse(&[]).console().enabled());
    }
}
