//! Deterministic race sanitizer for the pool's disjoint-write contract.
//!
//! Every `unsafe` block in this crate leans on one discipline: the pool
//! hands each index of a job to **exactly one** participant, that
//! participant is the **only** writer of the index-owned state (a
//! [`crate::parallel_map`] slot or a [`crate::parallel_over_rows`]
//! chunk), and the caller reads results only **after** the job's join
//! (`active == 0` observed under `done_lock`), which is the
//! happens-before edge publishing the writes. This module turns that
//! prose into machine-checked shadow state behind the `race_check`
//! cargo feature.
//!
//! # Shadow state
//!
//! Each sanitized job owns a shadow table with one atomic cell per
//! index. A cell starts at `0` (unwritten) and is claimed by a single
//! compare-and-swap that packs `(epoch, writer)` — the job's globally
//! unique epoch and the participant slot of the writing thread
//! (`0` = submitting caller, `1 + id` = pool worker `id`, mirroring
//! [`crate::pool_stats`]). A second writer's CAS fails and panics with
//! the index, both writer slots, and the epoch. Chunk partitions are
//! additionally checked for bounds, pairwise overlap, and exact
//! coverage before any worker touches them.
//!
//! # Happens-before
//!
//! [`ShadowSlots::seal`] runs on the submitting caller *after*
//! `pool::run_indexed` returns — i.e. after the join — so observing an
//! unwritten cell there proves a non-covering execution, and
//! [`ShadowSlots::assert_readable`] proves no result is read before
//! its write epoch completed. The sanitizer never synchronises on the
//! caller's behalf: it only *observes* through the same join the real
//! code relies on, so a missing happens-before edge surfaces as a
//! stale shadow cell rather than being masked.
//!
//! # Cost
//!
//! With the feature off, [`ENABLED`] is `false`: every entry point
//! returns immediately, constructors allocate nothing, and the
//! branches fold away at compile time — the same zero-cost discipline
//! as `debug_invariants` (`fedwcm-tensor`'s `invariants` module).
//! Detection panics are deterministic in *what* they report (index,
//! epoch, bound), though *which* racing participant loses the CAS is
//! scheduling-dependent — exactly one of them always panics.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// `true` when the crate is compiled with the `race_check` feature.
/// Every check in this module starts with `if !ENABLED { return; }`,
/// so release builds without the feature pay nothing.
pub const ENABLED: bool = cfg!(feature = "race_check");

/// Bits of a shadow cell reserved for the writer slot. The pool caps
/// workers at 256 (`MAX_POOL_WORKERS`), so `1 + slot` always fits.
const WRITER_BITS: u32 = 12;
const WRITER_MASK: u64 = (1 << WRITER_BITS) - 1;

/// Monotone source of job epochs; `0` is reserved for "disabled".
static EPOCH: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Pack a job epoch and a writer slot into one shadow-cell word.
fn pack(epoch: u64, writer: usize) -> u64 {
    (epoch << WRITER_BITS) | (1 + writer as u64)
}

/// Writer slot recorded in a shadow-cell word (see [`crate::PoolStats::per_worker_items`]
/// for the slot numbering: `0` = submitting caller, `1 + id` = worker `id`).
fn writer_of(cell: u64) -> u64 {
    (cell & WRITER_MASK) - 1
}

/// Job epoch recorded in a shadow-cell word.
fn epoch_of(cell: u64) -> u64 {
    cell >> WRITER_BITS
}

/// Shadow table for index-owned result slots ([`crate::parallel_map`]).
///
/// One cell per slot records `(epoch, writer)` on first write; the
/// table is *sealed* after the job's join, and reads assert the seal —
/// so a double write, a never-written slot, and a read racing the
/// write epoch each panic with a named index and worker.
pub struct ShadowSlots {
    epoch: u64,
    cells: Vec<AtomicU64>,
    sealed: AtomicBool,
}

impl ShadowSlots {
    /// Shadow table for `n` slots. Allocates nothing when the
    /// `race_check` feature is off.
    pub fn new(n: usize) -> Self {
        if !ENABLED {
            return ShadowSlots {
                epoch: 0,
                cells: Vec::new(),
                sealed: AtomicBool::new(false),
            };
        }
        ShadowSlots {
            epoch: next_epoch(),
            cells: (0..n).map(|_| AtomicU64::new(0)).collect(),
            sealed: AtomicBool::new(false),
        }
    }

    /// Record the current participant as the writer of slot `i`.
    /// Call immediately **before** the real write: on a double write
    /// the loser panics before the aliasing store can land.
    pub fn record_write(&self, i: usize) {
        if !ENABLED {
            return;
        }
        let me = crate::pool::participant_slot();
        if i >= self.cells.len() {
            // lint:allow(panic-freedom) the sanitizer's whole job is to
            // crash loudly on a broken aliasing invariant.
            panic!(
                "race_check: out-of-bounds write to slot {i} by participant {me} \
                 (epoch {}, {} slots)",
                self.epoch,
                self.cells.len()
            );
        }
        let tag = pack(self.epoch, me);
        if let Err(prev) =
            self.cells[i].compare_exchange(0, tag, Ordering::AcqRel, Ordering::Acquire)
        {
            // lint:allow(panic-freedom) double write detected — this is
            // the data race the feature exists to surface.
            panic!(
                "race_check: double write to slot {i} in epoch {}: participant {} \
                 wrote it first, participant {me} wrote it again",
                epoch_of(prev),
                writer_of(prev),
            );
        }
    }

    /// Seal the table after the job's join. Must run on the submitting
    /// caller **after** `pool::run_indexed` returned — the join is the
    /// happens-before edge that makes every cell's final value visible
    /// here. Panics if any slot was never written (non-covering job).
    pub fn seal(&self) {
        if !ENABLED {
            return;
        }
        for (i, cell) in self.cells.iter().enumerate() {
            if cell.load(Ordering::Acquire) == 0 {
                // lint:allow(panic-freedom) a hole in the partition means
                // some result slot holds garbage; crashing beats reading it.
                panic!(
                    "race_check: non-covering job in epoch {}: slot {i} was never \
                     written before the join",
                    self.epoch
                );
            }
        }
        self.sealed.store(true, Ordering::Release);
    }

    /// Assert slot `i` may be read: its write epoch completed (the
    /// table was sealed after the join) and the slot was written.
    pub fn assert_readable(&self, i: usize) {
        if !ENABLED {
            return;
        }
        if !self.sealed.load(Ordering::Acquire) {
            // lint:allow(panic-freedom) reading a slot before the join is
            // exactly the use-before-publication race being sanitized.
            panic!(
                "race_check: slot {i} read before its write epoch ({}) completed \
                 (table not sealed — reader raced the job's join)",
                self.epoch
            );
        }
        if i < self.cells.len() && self.cells[i].load(Ordering::Acquire) == 0 {
            // lint:allow(panic-freedom) seal() already guards this; kept as
            // a direct check for shadow tables sealed by foreign code.
            panic!(
                "race_check: slot {i} read but never written (epoch {})",
                self.epoch
            );
        }
    }
}

/// Shadow table for a chunked partition of one buffer
/// ([`crate::parallel_over_rows`]).
///
/// Chunks are registered sequentially at partition time (bounds and
/// pairwise-overlap checked as they arrive), coverage is asserted
/// before the job is submitted, and each chunk is *claimed* by the
/// participant that turns its raw region into a `&mut` — a second
/// claim panics with both worker slots.
pub struct ShadowChunks {
    epoch: u64,
    /// Total element count of the partitioned buffer.
    total: usize,
    /// Registered `(start, end)` element ranges, in registration order.
    bounds: Vec<(usize, usize)>,
    /// One claim cell per chunk, packed like [`ShadowSlots`] cells.
    claims: Vec<AtomicU64>,
}

impl ShadowChunks {
    /// Shadow table for a buffer of `total` elements split into at most
    /// `chunks` regions. Allocates nothing when `race_check` is off.
    pub fn new(total: usize, chunks: usize) -> Self {
        if !ENABLED {
            return ShadowChunks {
                epoch: 0,
                total,
                bounds: Vec::new(),
                claims: Vec::new(),
            };
        }
        ShadowChunks {
            epoch: next_epoch(),
            total,
            bounds: Vec::with_capacity(chunks),
            claims: (0..chunks).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Register chunk `ci` covering elements `[start, start + len)`.
    /// Runs on the partitioning thread before the job is submitted.
    /// Panics when the chunk leaves the buffer or overlaps a
    /// previously registered chunk.
    pub fn register(&mut self, ci: usize, start: usize, len: usize) {
        if !ENABLED {
            return;
        }
        let end = start.saturating_add(len);
        if end > self.total || start.checked_add(len).is_none() {
            // lint:allow(panic-freedom) an out-of-bounds chunk would hand a
            // worker a &mut past the buffer — crash before it can.
            panic!(
                "race_check: out-of-bounds chunk {ci} in epoch {}: [{start}, {end}) \
                 outside buffer of {} elements",
                self.epoch, self.total
            );
        }
        for (pi, &(ps, pe)) in self.bounds.iter().enumerate() {
            if start < pe && ps < end {
                // lint:allow(panic-freedom) overlapping chunks are two live
                // &mut over the same elements — the race being sanitized.
                panic!(
                    "race_check: chunk {ci} [{start}, {end}) overlaps chunk {pi} \
                     [{ps}, {pe}) in epoch {}",
                    self.epoch
                );
            }
        }
        self.bounds.push((start, end));
    }

    /// Assert the registered chunks exactly cover `[0, total)`.
    /// Runs after registration, before the job is submitted.
    pub fn assert_covering(&self) {
        if !ENABLED {
            return;
        }
        let covered: usize = self.bounds.iter().map(|&(s, e)| e - s).sum();
        if covered != self.total {
            // lint:allow(panic-freedom) a hole in the partition leaves
            // elements no worker owns — results would silently go stale.
            panic!(
                "race_check: non-covering partition in epoch {}: chunks cover \
                 {covered} of {} elements",
                self.epoch, self.total
            );
        }
    }

    /// Record the current participant as the claimant of chunk `ci`,
    /// immediately before it materialises the chunk's `&mut`. A second
    /// claim of the same chunk panics with both participant slots.
    pub fn claim(&self, ci: usize) {
        if !ENABLED {
            return;
        }
        let me = crate::pool::participant_slot();
        if ci >= self.claims.len() {
            // lint:allow(panic-freedom) claiming a chunk that was never
            // registered means the partition and the job disagree on n.
            panic!(
                "race_check: claim of unregistered chunk {ci} by participant {me} \
                 (epoch {}, {} chunks)",
                self.epoch,
                self.claims.len()
            );
        }
        let tag = pack(self.epoch, me);
        if let Err(prev) =
            self.claims[ci].compare_exchange(0, tag, Ordering::AcqRel, Ordering::Acquire)
        {
            // lint:allow(panic-freedom) two claimants of one chunk are two
            // live &mut over the same region — the race being sanitized.
            panic!(
                "race_check: double claim of chunk {ci} in epoch {}: participant {} \
                 claimed it first, participant {me} claimed it again",
                epoch_of(prev),
                writer_of(prev),
            );
        }
    }
}

/// Shadow exactly-once table for the pool's index claims. Embedded in
/// every `pool::Job` under `race_check`: the atomic claim counter is
/// supposed to hand each index out once, and this table proves it at
/// the source — a double execution panics inside the pool before any
/// caller-visible state can alias.
pub struct ClaimTable {
    epoch: u64,
    cells: Vec<AtomicU64>,
}

impl ClaimTable {
    /// Claim table for a job of `n` indices.
    pub fn new(n: usize) -> Self {
        if !ENABLED {
            return ClaimTable {
                epoch: 0,
                cells: Vec::new(),
            };
        }
        ClaimTable {
            epoch: next_epoch(),
            cells: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record that the current participant claimed index `i`.
    pub fn record(&self, i: usize) {
        if !ENABLED || i >= self.cells.len() {
            return;
        }
        let me = crate::pool::participant_slot();
        let tag = pack(self.epoch, me);
        if let Err(prev) =
            self.cells[i].compare_exchange(0, tag, Ordering::AcqRel, Ordering::Acquire)
        {
            // lint:allow(panic-freedom) the fetch_add counter handed one
            // index to two participants — the root invariant is broken.
            panic!(
                "race_check: index {i} claimed twice in epoch {}: participant {} \
                 claimed it first, participant {me} claimed it again",
                epoch_of(prev),
                writer_of(prev),
            );
        }
    }
}
