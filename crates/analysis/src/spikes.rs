//! Abrupt-change detection in time series.
//!
//! §4 describes FedCM's concentration series under long tails as showing
//! "abrupt spikes … at certain critical points", synchronised with
//! accuracy crashes. This detector flags points whose first difference
//! exceeds `k` standard deviations of the series' differences.

/// Indices `i` where `|x[i] − x[i−1]|` exceeds `k·σ(diff)` and also a
/// minimum absolute jump `min_jump` (guards near-constant series).
pub fn detect_spikes(series: &[f64], k: f64, min_jump: f64) -> Vec<usize> {
    assert!(k > 0.0 && min_jump >= 0.0);
    if series.len() < 3 {
        return Vec::new();
    }
    let diffs: Vec<f64> = series.windows(2).map(|w| w[1] - w[0]).collect();
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let sigma = fedwcm_stats::describe::stddev(&abs).max(1e-12);
    let mean = fedwcm_stats::describe::mean(&abs);
    diffs
        .iter()
        .enumerate()
        .filter(|(_, d)| d.abs() > mean + k * sigma && d.abs() >= min_jump)
        .map(|(i, _)| i + 1)
        .collect()
}

/// Count of spikes per unit length — the "frequency and violence" summary
/// the motivation section compares across IF settings.
pub fn spike_rate(series: &[f64], k: f64, min_jump: f64) -> f64 {
    if series.len() < 3 {
        return 0.0;
    }
    detect_spikes(series, k, min_jump).len() as f64 / series.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_series_no_spikes() {
        let series: Vec<f64> = (0..100).map(|i| i as f64 * 0.01).collect();
        assert!(detect_spikes(&series, 3.0, 0.05).is_empty());
    }

    #[test]
    fn single_jump_detected() {
        let mut series: Vec<f64> = (0..50).map(|i| 0.3 + (i as f64) * 1e-4).collect();
        series[25] = 0.9;
        let spikes = detect_spikes(&series, 3.0, 0.1);
        assert!(spikes.contains(&25), "spikes {spikes:?}");
    }

    #[test]
    fn noisy_but_bounded_series_not_flagged_with_min_jump() {
        // Small oscillations below min_jump are ignored even if they are
        // statistically "large" for the series.
        let series: Vec<f64> = (0..100)
            .map(|i| 0.5 + if i % 2 == 0 { 0.001 } else { -0.001 })
            .collect();
        assert!(detect_spikes(&series, 2.0, 0.05).is_empty());
    }

    #[test]
    fn spike_rate_orders_series() {
        let calm: Vec<f64> = (0..60).map(|i| 0.4 + (i as f64) * 1e-3).collect();
        let mut violent = calm.clone();
        for i in (10..60).step_by(10) {
            violent[i] += 0.3;
        }
        assert!(spike_rate(&violent, 2.0, 0.1) > spike_rate(&calm, 2.0, 0.1));
    }

    #[test]
    fn short_series_safe() {
        assert!(detect_spikes(&[1.0, 2.0], 2.0, 0.0).is_empty());
        assert_eq!(spike_rate(&[], 2.0, 0.0), 0.0);
    }
}
