//! Reproducible parallel-scaling harness (ISSUE 1 acceptance artifact).
//!
//! Measures, at 1/2/4/8 threads:
//!
//! * **round latency** — one full federated round (local training on the
//!   sampled clients + aggregation + eval);
//! * **GEMM throughput** — the row-parallel `matmul_into` on a
//!   training-shaped product;
//! * **eval throughput** — `evaluate_accuracy_threads` over the test set.
//!
//! Results go to `BENCH_parallel.json` (pass a path argument to override).
//! Every measurement is the median of `SAMPLES` timed repetitions on
//! fixed, seeded fixtures, so reruns on the same host are comparable.
//! `host_cores` is recorded because speedups are physically bounded by
//! it: on a single-core container all thread counts measure the same
//! work plus scheduling overhead, and no speedup is expected.

use std::fmt::Write as _;
use std::time::Instant;

use fedwcm_bench::bench_dataset;
use fedwcm_data::partition::paper_partition;
use fedwcm_fl::{evaluate_accuracy_threads, FlConfig, Simulation};
use fedwcm_parallel::with_intra_threads;
use fedwcm_stats::Xoshiro256pp;
use fedwcm_tensor::matmul::matmul_into;
use fedwcm_tensor::Tensor;

/// Thread counts the acceptance criteria ask for.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Timed repetitions per measurement (median reported).
const SAMPLES: usize = 5;

/// Median wall-clock seconds of `SAMPLES` runs of `f`.
fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn gemm_secs(threads: usize) -> f64 {
    let (m, k, n) = (192usize, 256usize, 160usize);
    let mut rng = Xoshiro256pp::seed_from(42);
    let a = Tensor::randn(&[m, k], 1.0, &mut rng);
    let b = Tensor::randn(&[k, n], 1.0, &mut rng);
    let mut c = vec![0.0f32; m * n];
    median_secs(|| {
        with_intra_threads(threads, || {
            for _ in 0..8 {
                matmul_into(a.as_slice(), b.as_slice(), &mut c, m, k, n);
            }
        })
    })
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".into());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("parallel_bench: host_cores={host_cores}, samples={SAMPLES}");

    let (train, test) = bench_dataset(0.5);
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 8;
    cfg.participation = 0.5;
    cfg.rounds = 1;
    cfg.eval_every = 1;
    cfg.local_epochs = 1;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"samples_per_point\": {SAMPLES},");
    let _ = writeln!(json, "  \"measurements\": {{");

    for (section, describe) in [
        ("round_latency_s", "one federated round"),
        ("gemm_192x256x160_x8_s", "8 row-parallel GEMMs"),
        ("eval_accuracy_s", "full test-set evaluation"),
    ] {
        let _ = writeln!(json, "    \"{section}\": {{");
        for (ti, &threads) in THREADS.iter().enumerate() {
            let secs = match section {
                "round_latency_s" => {
                    let mut c = cfg.clone();
                    c.threads = threads;
                    let part = paper_partition(&train, c.clients, 0.5, c.seed);
                    let views = part.views(&train);
                    let sim = Simulation::new(
                        c,
                        &train,
                        &test,
                        views,
                        Box::new(|| {
                            let mut rng = Xoshiro256pp::seed_from(1234);
                            fedwcm_nn::models::mlp(64, &[64, 32], 10, &mut rng)
                        }),
                    );
                    median_secs(|| {
                        let mut algo = fedwcm_algos::fedavg::FedAvg::default();
                        let _ = sim.run(&mut algo);
                    })
                }
                "gemm_192x256x160_x8_s" => gemm_secs(threads),
                _ => {
                    let mut rng = Xoshiro256pp::seed_from(9);
                    let mut model = fedwcm_nn::models::mlp(64, &[64, 32], 10, &mut rng);
                    median_secs(|| {
                        let _ = evaluate_accuracy_threads(&mut model, &test, threads);
                    })
                }
            };
            eprintln!("  {section} ({describe}) @ {threads} threads: {secs:.6} s");
            let comma = if ti + 1 < THREADS.len() { "," } else { "" };
            let _ = writeln!(json, "      \"threads_{threads}\": {secs:.6}{comma}");
        }
        let comma = if section == "eval_accuracy_s" {
            ""
        } else {
            ","
        };
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("failed to write benchmark JSON");
    eprintln!("wrote {out_path}");
}
