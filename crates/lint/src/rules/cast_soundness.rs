//! `cast-soundness` — lossy casts and unchecked counter arithmetic in
//! the serializing crates.
//!
//! `fl`, `he`, `trace`, `transport`, and `obs` write (or re-encode)
//! bytes that other processes (and future versions) read back:
//! checkpoints, wire reports, trace streams, profile documents. A
//! silently truncating `as` cast or a wrapping multiply on a byte
//! counter corrupts those artifacts without a panic. This rule flags,
//! in those crates only:
//!
//! 1. **lossy `as` casts** where the source type is syntactically
//!    evident (a typed local/parameter, literal suffix, `.len()`, or
//!    prior cast): narrowing integers, sign-discarding
//!    unsigned↔signed casts, `f64 as f32`, and float→int truncation.
//!    `usize`/`isize` are treated as 64-bit (the workspace's only
//!    supported targets — DESIGN §9). Integer→float casts are *not*
//!    flagged: metrics code averages counters deliberately.
//! 2. **unchecked `+`/`-`/`*` (and compound forms) on byte counters**
//!    — operands whose place name contains `byte`. Use
//!    `checked_*`/`saturating_*` or justify with
//!    `// lint:allow(cast-soundness) <reason>`.
//!
//! Casts whose source type cannot be determined are never flagged —
//! the rule under-approximates rather than guesses. Test code is
//! exempt.

use crate::ast::{scalar_of, Expr, TypeEnv};
use crate::engine::{Diagnostic, FileCtx};

const RULE: &str = "cast-soundness";

/// Crates that serialize state and are held to checked arithmetic.
const SERIALIZING_CRATES: &[&str] = &["fl", "he", "trace", "transport", "obs"];

/// Run the rule over one file.
pub fn check_cast_soundness(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if !ctx
        .crate_name
        .as_deref()
        .is_some_and(|c| SERIALIZING_CRATES.contains(&c))
    {
        return;
    }
    for f in &ctx.ast.fns {
        if ctx.is_test_line(f.line) {
            continue;
        }
        let env = TypeEnv::of(f);
        f.body.walk(&mut |e| match e {
            Expr::Cast { expr, ty, line } => {
                if ctx.is_test_line(*line) {
                    return;
                }
                let Some(dst) = scalar_of(ty) else { return };
                let Some(src_ty) = env.type_of(expr) else {
                    return;
                };
                let Some(src) = scalar_of(&src_ty).map(str::to_string) else {
                    return;
                };
                if let Some(why) = lossy(&src, dst) {
                    diags.push(ctx.diag(
                        RULE,
                        *line,
                        format!(
                            "lossy cast `{src} as {dst}` ({why}) in a serializing crate — use \
                             `try_from`/`try_into` (or a checked helper) so truncation fails \
                             loudly instead of corrupting serialized state"
                        ),
                    ));
                }
            }
            Expr::Binary { op, lhs, rhs, line } if matches!(op.as_str(), "+" | "-" | "*") => {
                check_counter_arith(ctx, &env, op, &[lhs, rhs], *line, diags);
            }
            Expr::Assign {
                op,
                target,
                value,
                line,
            } if matches!(op.as_str(), "+=" | "-=" | "*=") => {
                check_counter_arith(ctx, &env, op, &[target, value], *line, diags);
            }
            _ => {}
        });
    }
}

/// Flag unchecked arithmetic when an operand is a byte-counter place.
fn check_counter_arith(
    ctx: &FileCtx,
    env: &TypeEnv,
    op: &str,
    operands: &[&Expr],
    line: usize,
    diags: &mut Vec<Diagnostic>,
) {
    if ctx.is_test_line(line) {
        return;
    }
    for e in operands {
        let Some(place) = e.place_text() else {
            continue;
        };
        let Some(last) = place.rsplit('.').next() else {
            continue;
        };
        if !last.to_ascii_lowercase().contains("byte") {
            continue;
        }
        // A float-typed "byte rate" is not a counter.
        if e.base_ident()
            .and_then(|b| env.get(b))
            .is_some_and(|t| matches!(scalar_of(t), Some("f32" | "f64")))
        {
            continue;
        }
        let safe = match op.trim_end_matches('=') {
            "+" => "saturating_add / checked_add",
            "-" => "saturating_sub / checked_sub",
            _ => "saturating_mul / checked_mul",
        };
        diags.push(ctx.diag(
            RULE,
            line,
            format!(
                "unchecked `{op}` on byte counter `{place}` — overflow wraps silently into \
                 serialized reports; use {safe} (or justify with a lint:allow marker)"
            ),
        ));
        return;
    }
}

/// Why `src as dst` can lose information, or `None` when it cannot.
/// `usize`/`isize` are modelled as 64-bit.
fn lossy(src: &str, dst: &str) -> Option<&'static str> {
    if src == dst {
        return None;
    }
    let float = |t: &str| matches!(t, "f32" | "f64");
    match (float(src), float(dst)) {
        (true, true) => {
            return if src == "f64" && dst == "f32" {
                Some("f64 halves its mantissa in f32")
            } else {
                None
            };
        }
        (true, false) => return Some("float→int truncates and saturates"),
        // Deliberate: int→float is how metrics code averages counters.
        (false, true) => return None,
        (false, false) => {}
    }
    let bits = |t: &str| -> u32 {
        match t {
            "u8" | "i8" => 8,
            "u16" | "i16" => 16,
            "u32" | "i32" => 32,
            "u64" | "i64" | "usize" | "isize" => 64,
            _ => 128,
        }
    };
    let signed = |t: &str| t.starts_with('i');
    let (sb, db) = (bits(src), bits(dst));
    if db < sb {
        return Some("target type is narrower");
    }
    match (signed(src), signed(dst)) {
        (false, true) if db <= sb => Some("top bit of the unsigned source flips the sign"),
        (true, false) => Some("negative values wrap to huge unsigned values"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::lossy;

    #[test]
    fn lossy_table() {
        assert!(lossy("u64", "u32").is_some());
        assert!(lossy("usize", "u32").is_some());
        assert!(lossy("u64", "i64").is_some());
        assert!(lossy("i64", "u64").is_some());
        assert!(lossy("f64", "f32").is_some());
        assert!(lossy("f64", "i64").is_some());
        assert!(lossy("u32", "u64").is_none());
        assert!(lossy("u64", "usize").is_none(), "usize is 64-bit here");
        assert!(lossy("u32", "f64").is_none(), "int→float is deliberate");
        assert!(lossy("f32", "f64").is_none());
        assert!(lossy("u32", "i64").is_none());
    }
}
