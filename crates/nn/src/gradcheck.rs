//! Finite-difference gradient validation.
//!
//! The reproduction has no autograd framework to trust, so this module is
//! the safety net: it compares a model's analytic gradients against central
//! finite differences on a strided subset of parameters. Used both in unit
//! tests and as a standalone check from integration tests.

use crate::loss::Loss;
use crate::model::Model;
use fedwcm_tensor::Tensor;

/// Result of a gradient check.
#[derive(Clone, Copy, Debug)]
pub struct GradCheckReport {
    /// Parameters actually compared.
    pub checked: usize,
    /// Largest absolute deviation |fd − analytic|.
    pub max_abs_err: f32,
    /// Largest relative deviation (denominator floored at 1e-3).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True if both error measures are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Compare analytic vs finite-difference gradients on every `stride`-th
/// parameter, for the given batch and loss.
pub fn check_model_gradients(
    model: &mut Model,
    x: &Tensor,
    y: &[usize],
    loss: &dyn Loss,
    stride: usize,
    eps: f32,
) -> GradCheckReport {
    assert!(stride >= 1 && eps > 0.0);
    let mut grads = vec![0.0f32; model.param_len()];
    let _ = model.loss_grad(x, y, loss, &mut grads);
    let base = model.params().to_vec();

    let mut report = GradCheckReport {
        checked: 0,
        max_abs_err: 0.0,
        max_rel_err: 0.0,
    };
    for i in (0..base.len()).step_by(stride) {
        let mut p = base.clone();
        p[i] += eps;
        model.set_params(&p);
        let up = loss.loss_and_grad(&model.forward(x, false), y).0;
        p[i] -= 2.0 * eps;
        model.set_params(&p);
        let down = loss.loss_and_grad(&model.forward(x, false), y).0;
        let fd = (up - down) / (2.0 * eps);
        let abs = (fd - grads[i]).abs();
        let rel = abs / fd.abs().max(grads[i].abs()).max(1e-3);
        report.checked += 1;
        report.max_abs_err = report.max_abs_err.max(abs);
        report.max_rel_err = report.max_rel_err.max(rel);
    }
    model.set_params(&base);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{BalancedSoftmax, CrossEntropy, FocalLoss};
    use crate::models::mlp;
    use fedwcm_stats::Xoshiro256pp;

    #[test]
    fn mlp_passes_gradcheck_for_all_losses() {
        let mut rng = Xoshiro256pp::seed_from(21);
        let mut model = mlp(6, &[10], 4, &mut rng);
        let x = Tensor::randn(&[3, 6], 1.0, &mut rng);
        let y = [0usize, 3, 1];
        let losses: Vec<Box<dyn Loss>> = vec![
            Box::new(CrossEntropy),
            Box::new(FocalLoss { gamma: 2.0 }),
            Box::new(BalancedSoftmax::from_counts(&[40, 30, 20, 10])),
        ];
        for loss in &losses {
            let report = check_model_gradients(&mut model, &x, &y, loss.as_ref(), 3, 1e-3);
            assert!(report.checked > 10);
            assert!(report.passes(0.05), "report {report:?}");
        }
    }

    #[test]
    fn gradcheck_detects_broken_gradients() {
        // Sanity: a deliberately wrong "loss gradient" must fail.
        struct BrokenLoss;
        impl Loss for BrokenLoss {
            fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
                let (l, mut g) = CrossEntropy.loss_and_grad(logits, labels);
                for x in g.as_mut_slice() {
                    *x *= 3.0; // wrong scale
                }
                (l, g)
            }
        }
        let mut rng = Xoshiro256pp::seed_from(22);
        let mut model = mlp(4, &[8], 3, &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let y = [0usize, 2];
        let report = check_model_gradients(&mut model, &x, &y, &BrokenLoss, 2, 1e-3);
        assert!(
            !report.passes(0.05),
            "broken gradient slipped through: {report:?}"
        );
    }
}
