//! Integration tests for the fault-tolerant wire transport:
//!
//! * an absent and a zero-rate network plan are bitwise identical —
//!   records, network counters, and FWCK checkpoint bytes — at 1 and 4
//!   threads;
//! * a lossy run is itself bitwise deterministic across thread counts
//!   and actually recovers deliveries through retries;
//! * total loss exhausts every retry budget and degrades into the
//!   dropout machinery without panicking;
//! * a run killed mid-retry (pending transport deliveries, advanced
//!   retry clock) resumes from FWCK v4 bytes bitwise identically.

use fedwcm_data::dataset::Dataset;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_faults::{FaultConfig, FaultPlan};
use fedwcm_fl::algorithm::{
    server_step, state_from_vec, state_to_vec, uniform_average, RoundInput, RoundLog, StateError,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_fl::{
    FederatedAlgorithm, FlConfig, History, NetConfig, NetPlan, ServerCheckpoint, Simulation,
};
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;

/// Momentum-carrying test algorithm (same shape as FedCM): a resume
/// that silently reset its state would diverge immediately.
struct MiniMomentum {
    beta: f32,
    momentum: Vec<f32>,
}

impl MiniMomentum {
    fn new() -> Self {
        MiniMomentum {
            beta: 0.7,
            momentum: Vec::new(),
        }
    }
}

impl FederatedAlgorithm for MiniMomentum {
    fn name(&self) -> String {
        "mini-momentum".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        run_local_sgd(env, global, &spec, |_, _, _| {})
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        if self.momentum.is_empty() {
            self.momentum = vec![0.0f32; global.len()];
        }
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        for (m, d) in self.momentum.iter_mut().zip(&dir) {
            *m = self.beta * *m + (1.0 - self.beta) * d;
        }
        let step = self.momentum.clone();
        server_step(global, &step, input.cfg, input.mean_batches());
        RoundLog::default()
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(state_from_vec(&self.momentum))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.momentum = state_to_vec(bytes)?;
        Ok(())
    }
}

fn make_data(seed: u64) -> (Dataset, Dataset) {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 60, 0.5);
    (spec.generate_train(&counts, seed), spec.generate_test(seed))
}

fn make_cfg(rounds: usize) -> FlConfig {
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 6;
    cfg.participation = 0.5;
    cfg.rounds = rounds;
    cfg.local_epochs = 1;
    cfg.batch_size = 20;
    cfg.eval_every = 2;
    cfg.seed = 78;
    cfg
}

fn build_sim<'a>(train: &'a Dataset, test: &'a Dataset, cfg: FlConfig) -> Simulation<'a> {
    let views = paper_partition(train, cfg.clients, 0.5, cfg.seed).views(train);
    Simulation::new(
        cfg,
        train,
        test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(4242);
            mlp(64, &[24], 10, &mut rng)
        }),
    )
}

fn lossy_cfg(seed: u64) -> NetConfig {
    NetConfig {
        drop: 0.2,
        corrupt: 0.15,
        duplicate: 0.05,
        reorder: 0.05,
        delay: 0.1,
        max_delay_rounds: 2,
        ..NetConfig::zero(seed)
    }
}

fn assert_bitwise_eq(a: &History, b: &History, label: &str) {
    assert_eq!(a.records.len(), b.records.len(), "{label}: round counts");
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.round, y.round, "{label}");
        assert_eq!(
            x.train_loss.map(f64::to_bits),
            y.train_loss.map(f64::to_bits),
            "{label}: round {} train_loss",
            x.round
        );
        assert_eq!(
            x.update_norm.to_bits(),
            y.update_norm.to_bits(),
            "{label}: round {} update_norm",
            x.round
        );
        assert_eq!(
            x.test_acc.map(f64::to_bits),
            y.test_acc.map(f64::to_bits),
            "{label}: round {} test_acc",
            x.round
        );
        assert_eq!(x.dropped_updates, y.dropped_updates, "{label}");
        assert_eq!(x.faults, y.faults, "{label}: round {} faults", x.round);
        assert_eq!(x.net, y.net, "{label}: round {} net counters", x.round);
    }
}

#[test]
fn absent_and_zero_rate_net_plans_are_bitwise_identical() {
    let (train, test) = make_data(201);
    for threads in [1usize, 4] {
        let mut cfg = make_cfg(6);
        cfg.threads = threads;
        let plain_sim = build_sim(&train, &test, cfg.clone());
        let plain_ckpt = plain_sim
            .run_until(&mut MiniMomentum::new(), 3)
            .expect("capture");
        let plain = plain_sim.run(&mut MiniMomentum::new());

        let zero_sim = build_sim(&train, &test, cfg).with_net_plan(NetPlan::zero(0x4E17));
        let zero_ckpt = zero_sim
            .run_until(&mut MiniMomentum::new(), 3)
            .expect("capture");
        let zeroed = zero_sim.run(&mut MiniMomentum::new());

        assert_bitwise_eq(&plain, &zeroed, &format!("threads={threads}"));
        assert!(
            zeroed.net_totals().is_zero(),
            "zero-rate plan must record no transport activity"
        );
        assert_eq!(
            plain_ckpt.to_bytes(),
            zero_ckpt.to_bytes(),
            "threads={threads}: FWCK bytes must be identical"
        );
    }
}

#[test]
fn lossy_run_is_deterministic_and_recovers_deliveries() {
    let (train, test) = make_data(202);
    let mut histories = Vec::new();
    for threads in [1usize, 4] {
        let mut cfg = make_cfg(8);
        cfg.threads = threads;
        let h = build_sim(&train, &test, cfg)
            .with_net_plan(NetPlan::new(lossy_cfg(0x1055)))
            .run(&mut MiniMomentum::new());
        histories.push(h);
    }
    assert_bitwise_eq(&histories[0], &histories[1], "threads 1 vs 4");
    let totals = histories[0].net_totals();
    assert!(totals.frames_sent > 0, "no frames crossed the wire");
    assert!(
        totals.retries > 0,
        "lossy plan never forced a retry — rates too low for this seed"
    );
    assert!(
        totals.rejected_frames > 0,
        "corruption never tripped the checksum"
    );
    assert!(
        totals.retries < totals.frames_sent,
        "retries are a strict subset of transmitted frames"
    );
    assert!(
        totals.retransmitted_bytes > 0 && totals.rejected_bytes > 0,
        "byte tallies must track their frame counts"
    );
    // Retries recovered real deliveries: the model still trains.
    assert!(histories[0].records.iter().any(|r| r.update_norm > 0.0));
}

#[test]
fn total_loss_degrades_into_dropout_machinery() {
    let (train, test) = make_data(203);
    let cfg = make_cfg(5);
    let h = build_sim(&train, &test, cfg.clone())
        .with_net_plan(NetPlan::new(NetConfig {
            drop: 1.0,
            ..NetConfig::zero(0xDEAD)
        }))
        .run(&mut MiniMomentum::new());
    assert_eq!(h.records.len(), cfg.rounds, "run must complete");
    let totals = h.net_totals();
    assert!(totals.degraded > 0, "exhaustions must be counted");
    // Every delivery burned its full budget: frames = degraded × max_attempts.
    let budget = u64::from(fedwcm_fl::RetryPolicy::default().max_attempts);
    assert_eq!(totals.frames_sent, totals.degraded * budget);
    for r in &h.records {
        assert_eq!(
            r.update_norm, 0.0,
            "no delivery survives total loss, so the model must not move"
        );
    }
    let report = h.resilience_report(None).to_string();
    assert!(report.contains("degraded to dropout"));
}

#[test]
fn kill_mid_retry_resume_is_bitwise_identical() {
    let (train, test) = make_data(204);
    let cfg = make_cfg(8);
    // Faults *and* a delay-heavy network plan: at the checkpoint round
    // the straggler buffer holds transport-delayed uploads (via_net) and
    // the courier clock is far from zero — exactly the state FWCK v4
    // exists to preserve.
    let faults = FaultPlan::new(FaultConfig {
        dropout: 0.2,
        straggler: 0.2,
        max_delay: 3,
        ..FaultConfig::zero(0xC405)
    });
    let net = NetPlan::new(NetConfig {
        drop: 0.2,
        corrupt: 0.1,
        delay: 0.4,
        max_delay_rounds: 3,
        ..NetConfig::zero(0x4E77)
    });
    let sim = build_sim(&train, &test, cfg)
        .with_fault_plan(faults)
        .with_net_plan(net);

    let mut full_params: Vec<f32> = Vec::new();
    let full = sim.run_with_observer(&mut MiniMomentum::new(), |_, g| {
        full_params.clear();
        full_params.extend_from_slice(g);
    });
    assert!(
        full.net_totals().delayed > 0,
        "plan never delayed a delivery — the resume test would be vacuous"
    );

    let ckpt = sim
        .run_until(&mut MiniMomentum::new(), 4)
        .expect("state capture");
    let bytes = ckpt.to_bytes();
    let restored = ServerCheckpoint::from_bytes(&bytes).expect("v4 parses");
    assert_eq!(restored.to_bytes(), bytes, "serialize is the identity");
    // The checkpoint carries real transport history, not zeros.
    assert!(restored.history().records.iter().any(|r| !r.net.is_zero()));

    let mut resumed_params: Vec<f32> = Vec::new();
    let resumed = sim
        .resume_with_observer(&mut MiniMomentum::new(), &restored, |_, g| {
            resumed_params.clear();
            resumed_params.extend_from_slice(g);
        })
        .expect("resume");

    assert_bitwise_eq(&full, &resumed, "full vs resumed");
    let full_bits: Vec<u32> = full_params.iter().map(|p| p.to_bits()).collect();
    let resumed_bits: Vec<u32> = resumed_params.iter().map(|p| p.to_bits()).collect();
    assert_eq!(full_bits, resumed_bits, "final global params");
}
