//! Performance budgets and run diffs.
//!
//! A [`Budget`] is a committed `fedwcm-prof-budget/v1` JSON document
//! giving ceilings for a profile: total ticks, record count, the
//! orchestration-overhead ratio, and per-phase total / self / p99
//! limits. [`Budget::check`] evaluates a [`Profile`] against those
//! ceilings and returns every violation as a sorted, human-readable
//! list — CI fails the build when the list is non-empty, which is what
//! turns the deterministic tick accounting into a regression gate.
//!
//! [`diff`] compares two profiles (typically a committed baseline and
//! the current run) phase by phase and emits a `fedwcm-prof-diff/v1`
//! report: sorted, timestamp-free, and byte-stable, so the report
//! itself can be committed or attached as a CI artifact. When a budget
//! supplies `growth_ratio_max`, phases whose total ticks grew beyond
//! that factor are listed as regressions and the report's `ok` flips
//! to `false`.

use crate::error::ObsError;
use crate::json::Json;
use crate::profile::{require_arr, require_str, Profile};

/// Schema tag for budget documents.
pub const BUDGET_SCHEMA: &str = "fedwcm-prof-budget/v1";
/// Schema tag for diff reports.
pub const DIFF_SCHEMA: &str = "fedwcm-prof-diff/v1";

/// Ceilings for one span name.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseBudget {
    /// Span name the ceilings apply to.
    pub name: String,
    /// Maximum summed duration across all spans of this name.
    pub total_max: Option<u64>,
    /// Maximum summed self time.
    pub self_max: Option<u64>,
    /// Maximum p99 single-span duration.
    pub p99_max: Option<u64>,
}

/// A parsed performance budget.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Budget {
    /// Ceiling on the profile's total ticks.
    pub total_ticks_max: Option<u64>,
    /// Ceiling on the number of trace records.
    pub events_max: Option<u64>,
    /// Ceiling on `overhead_ticks / total_ticks`.
    pub overhead_ratio_max: Option<f64>,
    /// Ceiling on per-phase growth in [`diff`]: current total ticks
    /// must not exceed baseline total ticks times this factor.
    pub growth_ratio_max: Option<f64>,
    /// Per-phase ceilings. A budgeted phase missing from the profile
    /// is itself a violation — a renamed span must not silently pass.
    pub phases: Vec<PhaseBudget>,
}

/// The outcome of [`Budget::check`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetReport {
    /// Every ceiling that was exceeded, sorted.
    pub violations: Vec<String>,
}

impl BudgetReport {
    /// Whether the profile stayed within every ceiling.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Serialize as `{"ok":…,"violations":[…]}`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("ok".into(), Json::Bool(self.ok())),
            (
                "violations".into(),
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| Json::Str(v.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn optional_u64(doc: &Json, key: &str) -> Result<Option<u64>, ObsError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ObsError::schema(format!("{key:?} must be a non-negative integer"))),
    }
}

fn optional_ratio(doc: &Json, key: &str) -> Result<Option<f64>, ObsError> {
    match doc.get(key) {
        None => Ok(None),
        Some(v) => match v.as_f64() {
            Some(x) if x.is_finite() && x >= 0.0 => Ok(Some(x)),
            _ => Err(ObsError::schema(format!(
                "{key:?} must be a finite non-negative number"
            ))),
        },
    }
}

impl Budget {
    /// Parse a `fedwcm-prof-budget/v1` document.
    pub fn from_json(doc: &Json) -> Result<Budget, ObsError> {
        let schema = require_str(doc, "schema")?;
        if schema != BUDGET_SCHEMA {
            return Err(ObsError::schema(format!(
                "expected schema {BUDGET_SCHEMA:?}, got {schema:?}"
            )));
        }
        let phases = match doc.get("phases") {
            None => Vec::new(),
            Some(_) => require_arr(doc, "phases")?
                .iter()
                .map(|p| {
                    Ok(PhaseBudget {
                        name: require_str(p, "name")?.to_string(),
                        total_max: optional_u64(p, "total_max")?,
                        self_max: optional_u64(p, "self_max")?,
                        p99_max: optional_u64(p, "p99_max")?,
                    })
                })
                .collect::<Result<Vec<_>, ObsError>>()?,
        };
        Ok(Budget {
            total_ticks_max: optional_u64(doc, "total_ticks_max")?,
            events_max: optional_u64(doc, "events_max")?,
            overhead_ratio_max: optional_ratio(doc, "overhead_ratio_max")?,
            growth_ratio_max: optional_ratio(doc, "growth_ratio_max")?,
            phases,
        })
    }

    /// Parse a budget from JSON text.
    pub fn parse(text: &str) -> Result<Budget, ObsError> {
        Budget::from_json(&crate::json::parse(text.trim_end(), 1)?)
    }

    /// Evaluate `profile` against every ceiling.
    pub fn check(&self, profile: &Profile) -> BudgetReport {
        let mut violations = Vec::new();
        if let Some(max) = self.total_ticks_max {
            if profile.total_ticks > max {
                violations.push(format!(
                    "total_ticks {} exceeds budget {max}",
                    profile.total_ticks
                ));
            }
        }
        if let Some(max) = self.events_max {
            if profile.records > max {
                violations.push(format!("records {} exceeds budget {max}", profile.records));
            }
        }
        if let Some(max) = self.overhead_ratio_max {
            if profile.total_ticks > 0 {
                let ratio = profile.attribution.overhead_ticks as f64 / profile.total_ticks as f64;
                if ratio > max {
                    violations.push(format!("overhead ratio {ratio:.4} exceeds budget {max}"));
                }
            }
        }
        for pb in &self.phases {
            let Some(stat) = profile.phase(&pb.name) else {
                violations.push(format!(
                    "budgeted phase \"{}\" absent from profile",
                    pb.name
                ));
                continue;
            };
            if let Some(max) = pb.total_max {
                if stat.total_ticks > max {
                    violations.push(format!(
                        "phase \"{}\" total_ticks {} exceeds budget {max}",
                        pb.name, stat.total_ticks
                    ));
                }
            }
            if let Some(max) = pb.self_max {
                if stat.self_ticks > max {
                    violations.push(format!(
                        "phase \"{}\" self_ticks {} exceeds budget {max}",
                        pb.name, stat.self_ticks
                    ));
                }
            }
            if let Some(max) = pb.p99_max {
                if stat.p99_ticks > max {
                    violations.push(format!(
                        "phase \"{}\" p99_ticks {} exceeds budget {max}",
                        pb.name, stat.p99_ticks
                    ));
                }
            }
        }
        violations.sort();
        BudgetReport { violations }
    }
}

/// One phase's baseline-versus-current comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseDiff {
    /// Span name.
    pub name: String,
    /// Baseline total ticks (0 when the phase is new).
    pub base_total_ticks: u64,
    /// Current total ticks (0 when the phase disappeared).
    pub cur_total_ticks: u64,
    /// Baseline p99 duration.
    pub base_p99_ticks: u64,
    /// Current p99 duration.
    pub cur_p99_ticks: u64,
}

impl PhaseDiff {
    /// Signed change in total ticks (saturating at the `i64` range).
    pub fn delta_ticks(&self) -> i64 {
        let delta = i128::from(self.cur_total_ticks) - i128::from(self.base_total_ticks);
        i64::try_from(delta).unwrap_or(if delta < 0 { i64::MIN } else { i64::MAX })
    }
}

/// A `fedwcm-prof-diff/v1` regression report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffReport {
    /// Baseline total ticks.
    pub base_total_ticks: u64,
    /// Current total ticks.
    pub cur_total_ticks: u64,
    /// Per-phase comparison over the union of phase names, sorted.
    pub phases: Vec<PhaseDiff>,
    /// Growth-ratio violations, sorted. Empty when no budget with
    /// `growth_ratio_max` was supplied.
    pub regressions: Vec<String>,
}

impl DiffReport {
    /// Whether the current run stayed within the allowed growth.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Serialize to the `fedwcm-prof-diff/v1` document.
    pub fn to_json(&self) -> Json {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(p.name.clone())),
                    ("base_total_ticks".into(), Json::U64(p.base_total_ticks)),
                    ("cur_total_ticks".into(), Json::U64(p.cur_total_ticks)),
                    ("delta_ticks".into(), delta_json(p.delta_ticks())),
                    ("base_p99_ticks".into(), Json::U64(p.base_p99_ticks)),
                    ("cur_p99_ticks".into(), Json::U64(p.cur_p99_ticks)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(DIFF_SCHEMA.into())),
            ("ok".into(), Json::Bool(self.ok())),
            ("base_total_ticks".into(), Json::U64(self.base_total_ticks)),
            ("cur_total_ticks".into(), Json::U64(self.cur_total_ticks)),
            ("phases".into(), Json::Arr(phases)),
            (
                "regressions".into(),
                Json::Arr(
                    self.regressions
                        .iter()
                        .map(|r| Json::Str(r.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn delta_json(delta: i64) -> Json {
    if delta >= 0 {
        // Non-negative deltas encode as unsigned so small positive
        // values print without a sign, matching the trace encoder's
        // integer split.
        match u64::try_from(delta) {
            Ok(x) => Json::U64(x),
            Err(_) => Json::I64(delta),
        }
    } else {
        Json::I64(delta)
    }
}

/// Compare `current` against `baseline`. With a budget carrying
/// `growth_ratio_max`, phases whose total ticks grew beyond
/// `baseline * ratio` (and phases that appeared from nothing) become
/// regressions.
pub fn diff(baseline: &Profile, current: &Profile, budget: Option<&Budget>) -> DiffReport {
    let mut names: Vec<&str> = baseline
        .phases
        .iter()
        .chain(current.phases.iter())
        .map(|p| p.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    let phases: Vec<PhaseDiff> = names
        .into_iter()
        .map(|name| {
            let base = baseline.phase(name);
            let cur = current.phase(name);
            PhaseDiff {
                name: name.to_string(),
                base_total_ticks: base.map_or(0, |p| p.total_ticks),
                cur_total_ticks: cur.map_or(0, |p| p.total_ticks),
                base_p99_ticks: base.map_or(0, |p| p.p99_ticks),
                cur_p99_ticks: cur.map_or(0, |p| p.p99_ticks),
            }
        })
        .collect();
    let mut regressions = Vec::new();
    if let Some(ratio) = budget.and_then(|b| b.growth_ratio_max) {
        for p in &phases {
            if p.base_total_ticks == 0 {
                if p.cur_total_ticks > 0 {
                    regressions.push(format!(
                        "phase \"{}\" appeared ({} ticks, no baseline)",
                        p.name, p.cur_total_ticks
                    ));
                }
            } else if p.cur_total_ticks as f64 > p.base_total_ticks as f64 * ratio {
                regressions.push(format!(
                    "phase \"{}\" grew {} -> {} ticks (allowed factor {ratio})",
                    p.name, p.base_total_ticks, p.cur_total_ticks
                ));
            }
        }
        if baseline.total_ticks > 0
            && current.total_ticks as f64 > baseline.total_ticks as f64 * ratio
        {
            regressions.push(format!(
                "total_ticks grew {} -> {} (allowed factor {ratio})",
                baseline.total_ticks, current.total_ticks
            ));
        }
        regressions.sort();
    }
    DiffReport {
        base_total_ticks: baseline.total_ticks,
        cur_total_ticks: current.total_ticks,
        phases,
        regressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::analyze;
    use crate::record::parse_trace;
    use crate::tree::build_forest;

    fn profile_of(lines: &[String]) -> Profile {
        let text: String = lines.iter().map(|l| format!("{l}\n")).collect();
        analyze(&build_forest(&parse_trace(&text).expect("parses")).expect("well-formed"))
    }

    fn round_trace(client_ticks: u64) -> Vec<String> {
        vec![
            "{\"t\":1,\"ev\":\"start\",\"name\":\"round\",\"round\":0}".to_string(),
            "{\"t\":2,\"ev\":\"start\",\"name\":\"client_update\"}".to_string(),
            format!(
                "{{\"t\":{},\"ev\":\"end\",\"name\":\"client_update\"}}",
                2 + client_ticks
            ),
            format!(
                "{{\"t\":{},\"ev\":\"end\",\"name\":\"round\"}}",
                3 + client_ticks
            ),
        ]
    }

    fn budget_doc(extra: &str) -> Budget {
        Budget::parse(&format!("{{\"schema\":\"fedwcm-prof-budget/v1\"{extra}}}"))
            .expect("valid budget")
    }

    #[test]
    fn budget_passes_within_ceilings() {
        let p = profile_of(&round_trace(4));
        let b = budget_doc(
            ",\"total_ticks_max\":100,\"events_max\":100,\"overhead_ratio_max\":0.9,\
             \"phases\":[{\"name\":\"client_update\",\"total_max\":10,\"p99_max\":10}]",
        );
        let report = b.check(&p);
        assert!(
            report.ok(),
            "unexpected violations: {:?}",
            report.violations
        );
    }

    #[test]
    fn budget_catches_every_ceiling() {
        let p = profile_of(&round_trace(50));
        let b = budget_doc(
            ",\"total_ticks_max\":10,\"events_max\":2,\"overhead_ratio_max\":0.001,\
             \"phases\":[{\"name\":\"client_update\",\"total_max\":5,\"self_max\":5,\
             \"p99_max\":5},{\"name\":\"evaluate\"}]",
        );
        let report = b.check(&p);
        assert_eq!(report.violations.len(), 7);
        assert!(!report.ok());
        // Sorted output: a renamed / absent phase is itself flagged.
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("\"evaluate\" absent")));
    }

    #[test]
    fn budget_rejects_bad_documents() {
        assert!(Budget::parse("{\"schema\":\"nope/v1\"}").is_err());
        assert!(
            Budget::parse("{\"schema\":\"fedwcm-prof-budget/v1\",\"total_ticks_max\":-1}").is_err()
        );
        assert!(Budget::parse(
            "{\"schema\":\"fedwcm-prof-budget/v1\",\"overhead_ratio_max\":\"x\"}"
        )
        .is_err());
    }

    #[test]
    fn diff_reports_growth_and_flags_regressions() {
        let base = profile_of(&round_trace(4));
        let cur = profile_of(&round_trace(40));
        let b = budget_doc(",\"growth_ratio_max\":1.5");
        let report = diff(&base, &cur, Some(&b));
        assert!(!report.ok());
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("client_update")));
        let cu = report
            .phases
            .iter()
            .find(|p| p.name == "client_update")
            .expect("phase diffed");
        assert_eq!((cu.base_total_ticks, cu.cur_total_ticks), (4, 40));
        assert_eq!(cu.delta_ticks(), 36);
    }

    #[test]
    fn diff_without_budget_never_regresses() {
        let base = profile_of(&round_trace(4));
        let cur = profile_of(&round_trace(400));
        let report = diff(&base, &cur, None);
        assert!(report.ok());
        assert!(report.regressions.is_empty());
    }

    #[test]
    fn diff_of_identical_profiles_is_clean_and_stable() {
        let p = profile_of(&round_trace(4));
        let report = diff(&p, &p, Some(&budget_doc(",\"growth_ratio_max\":1.0")));
        assert!(report.ok());
        let doc = report.to_json().to_json_string();
        assert_eq!(doc, diff(&p, &p, None).to_json().to_json_string());
        assert!(doc.contains("\"schema\":\"fedwcm-prof-diff/v1\""));
    }

    #[test]
    fn new_phases_count_as_regressions_under_a_growth_budget() {
        let base = profile_of(&round_trace(4));
        let mut lines = round_trace(4);
        lines.insert(
            3,
            "{\"t\":7,\"ev\":\"start\",\"name\":\"checkpoint\"}".to_string(),
        );
        lines.insert(
            4,
            "{\"t\":8,\"ev\":\"end\",\"name\":\"checkpoint\"}".to_string(),
        );
        // Fix round end tick ordering after insertion.
        lines[5] = "{\"t\":9,\"ev\":\"end\",\"name\":\"round\"}".to_string();
        let cur = profile_of(&lines);
        let report = diff(&base, &cur, Some(&budget_doc(",\"growth_ratio_max\":10.0")));
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("\"checkpoint\" appeared")));
    }
}
