//! Property-based tests for the HE substrate: correctness of the scheme
//! and the field/NTT layer under arbitrary inputs.

use fedwcm_he::ntt::{addp, invp, mulp, negacyclic_mul, negacyclic_mul_naive, powp, P};
use fedwcm_he::rlwe::{Ciphertext, RlweParams, SecretKey};
use fedwcm_stats::rng::Xoshiro256pp;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encrypt_decrypt_arbitrary_vectors(
        seed in any::<u64>(),
        values in prop::collection::vec(0u64..60_000, 1..100),
    ) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let key = SecretKey::generate(RlweParams::test_params(), &mut rng);
        let ct = key.encrypt(&values, &mut rng);
        prop_assert_eq!(key.decrypt(&ct, values.len()), values);
    }

    #[test]
    fn additive_homomorphism_chain(seed in any::<u64>(), parties in 2usize..30) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let key = SecretKey::generate(RlweParams::test_params(), &mut rng);
        let classes = 8usize;
        let mut expected = vec![0u64; classes];
        let mut acc: Option<Ciphertext> = None;
        for p in 0..parties {
            let vals: Vec<u64> = (0..classes).map(|c| ((p * 13 + c * 7) % 100) as u64).collect();
            for (e, &v) in expected.iter_mut().zip(&vals) {
                *e += v;
            }
            let ct = key.encrypt(&vals, &mut rng);
            match acc.as_mut() {
                None => acc = Some(ct),
                Some(a) => a.add_assign(&ct),
            }
        }
        prop_assert_eq!(key.decrypt(&acc.unwrap(), classes), expected);
    }

    #[test]
    fn serialization_total(seed in any::<u64>(), values in prop::collection::vec(0u64..1000, 1..50)) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let key = SecretKey::generate(RlweParams::test_params(), &mut rng);
        let ct = key.encrypt(&values, &mut rng);
        let bytes = ct.to_bytes();
        let back = Ciphertext::from_bytes(&bytes).expect("roundtrip");
        prop_assert_eq!(key.decrypt(&back, values.len()), values);
        // Mutating the header or truncating must not panic.
        let mut broken = bytes.clone();
        broken.truncate(bytes.len() / 2);
        let _ = Ciphertext::from_bytes(&broken);
    }

    #[test]
    fn field_inverse_and_power_laws(a in 1u64..u64::MAX) {
        let a = a % (P - 1) + 1; // nonzero mod p
        prop_assert_eq!(mulp(a, invp(a)), 1);
        prop_assert_eq!(powp(a, 2), mulp(a, a));
        prop_assert_eq!(addp(a, P - a), 0);
    }

    #[test]
    fn ntt_negacyclic_matches_naive(seed in any::<u64>(), logn in 3u32..7) {
        let n = 1usize << logn;
        let mut rng = Xoshiro256pp::seed_from(seed);
        use fedwcm_stats::rng::Rng;
        let a: Vec<u64> = (0..n).map(|_| rng.next_u64() % P).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.next_u64() % P).collect();
        prop_assert_eq!(negacyclic_mul(&a, &b), negacyclic_mul_naive(&a, &b));
    }
}
