//! Eq. (5): the adaptive momentum value `α_{r+1}`.

/// Bounds on the momentum value from the convergence analysis (§6):
/// `α ∈ [0.1, 1)`.
pub const ALPHA_MIN: f64 = 0.1;
/// Upper clamp (strictly below 1 per Theorem 6.1's constraint).
pub const ALPHA_MAX: f64 = 0.99;

/// Eq. (5), with the documented interpretation of the imbalance factor:
///
/// `α_{r+1} = 0.1 + 0.9 · (1 − e^{−D·C}) · q_r`, clamped to
/// `[ALPHA_MIN, ALPHA_MAX]`, where
///
/// * `D` — total-variation imbalance of the global distribution vs the
///   target (`imbalance_degree`),
/// * `C` — number of classes (keeps sensitivity comparable across
///   datasets, as the temperature paragraph of §5.2 prescribes),
/// * `q_r = ŝ_r / s̄` — the sampled clients' mean scarcity score relative
///   to the all-client mean; `q_r > 1` means this round's cohort
///   over-represents globally scarce classes.
///
/// Balanced data (`D = 0`) keeps `α = 0.1`: FedWCM degenerates to FedCM
/// exactly when momentum is safe. Heavy imbalance pushes `α` up, shrinking
/// the stale-momentum share `(1 − α)` so the biased direction cannot
/// compound — the failure mode of Fig. 3/4.
pub fn adaptive_alpha(imbalance_degree: f64, classes: usize, q_r: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&imbalance_degree),
        "D must be in [0,1]"
    );
    assert!(classes >= 1);
    assert!(q_r >= 0.0 && q_r.is_finite(), "q_r must be finite and ≥ 0");
    let saturation = 1.0 - (-imbalance_degree * classes as f64).exp();
    let alpha = ALPHA_MIN + 0.9 * saturation * q_r;
    alpha.clamp(ALPHA_MIN, ALPHA_MAX)
}

/// The per-round score ratio `q_r = ŝ_r / s̄`.
///
/// `sampled_scores` are the scores of this round's cohort; `mean_score` is
/// the average over **all** clients. Degenerate cases (no imbalance ⇒ all
/// scores zero) return 1, keeping `α` at its base through Eq. (5).
pub fn score_ratio(sampled_scores: &[f64], mean_score: f64) -> f64 {
    if sampled_scores.is_empty() || mean_score <= 1e-12 {
        return 1.0;
    }
    let sampled_mean: f64 = sampled_scores.iter().sum::<f64>() / sampled_scores.len() as f64;
    sampled_mean / mean_score
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_data_keeps_fedcm_base() {
        assert_eq!(adaptive_alpha(0.0, 10, 1.0), ALPHA_MIN);
        assert_eq!(adaptive_alpha(0.0, 10, 5.0), ALPHA_MIN);
    }

    #[test]
    fn heavy_imbalance_raises_alpha() {
        let a = adaptive_alpha(0.5, 10, 1.0);
        assert!(a > 0.9, "alpha {a}");
        let b = adaptive_alpha(0.05, 10, 1.0);
        assert!(b > ALPHA_MIN && b < a, "alpha {b}");
    }

    #[test]
    fn informative_rounds_raise_alpha_further() {
        let lo = adaptive_alpha(0.1, 10, 0.5);
        let hi = adaptive_alpha(0.1, 10, 1.5);
        assert!(hi > lo, "q_r ordering: {lo} vs {hi}");
    }

    #[test]
    fn alpha_respects_theorem_bounds() {
        for d in [0.0, 0.1, 0.5, 1.0] {
            for q in [0.0, 0.5, 1.0, 10.0] {
                let a = adaptive_alpha(d, 100, q);
                assert!((ALPHA_MIN..=ALPHA_MAX).contains(&a), "alpha {a}");
            }
        }
    }

    #[test]
    fn more_classes_saturate_faster() {
        let small = adaptive_alpha(0.05, 10, 1.0);
        let large = adaptive_alpha(0.05, 100, 1.0);
        assert!(large > small);
    }

    #[test]
    fn score_ratio_cases() {
        assert_eq!(score_ratio(&[], 1.0), 1.0);
        assert_eq!(score_ratio(&[0.5], 0.0), 1.0);
        assert!((score_ratio(&[0.2, 0.4], 0.2) - 1.5).abs() < 1e-12);
        assert!((score_ratio(&[0.1], 0.2) - 0.5).abs() < 1e-12);
    }
}
