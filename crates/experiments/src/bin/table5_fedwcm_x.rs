//! Table 5: FedAvg / FedCM / FedWCM-X under the FedGrab partition,
//! β = 0.1, IF ∈ {1, 0.4, 0.1, 0.06, 0.04, 0.01}.

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_table, run_cell};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let methods = [Method::FedAvg, Method::FedCm, Method::FedWcmX];
    let ifs = [1.0, 0.4, 0.1, 0.06, 0.04, 0.01];
    let headers: Vec<String> = ifs.iter().map(|v| format!("IF={v}")).collect();
    let mut rows = Vec::new();
    for m in methods {
        let values: Vec<f64> = ifs
            .iter()
            .map(|&imb| {
                let mut exp = ExpConfig::new(DatasetPreset::Cifar10, imb, 0.1, cli.scale, cli.seed);
                exp.fedgrab_partition = true;
                run_cell(&exp, m, &cli)
            })
            .collect();
        console.info(format!("[table5] {} done", m.label()));
        rows.push((m.label().to_string(), values));
    }
    print_table("Table 5 — FedGrab partition, beta=0.1", &headers, &rows);
    println!(
        "\nExpected shape (paper Table 5): FedWCM-X ≥ FedAvg at most IFs;\n\
         FedCM collapses for IF ≤ 0.1."
    );
}
