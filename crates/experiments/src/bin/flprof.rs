//! Trace profiler: analyze, flame, diff, and budget-gate FedWCM JSONL
//! traces.
//!
//! ```sh
//! cargo run --release -p fedwcm-experiments --bin flprof -- analyze trace.jsonl
//! cargo run --release -p fedwcm-experiments --bin flprof -- analyze trace.jsonl --format json
//! cargo run --release -p fedwcm-experiments --bin flprof -- flame trace.jsonl > folded.txt
//! cargo run --release -p fedwcm-experiments --bin flprof -- budget trace.jsonl --budget PROF_BUDGET.json
//! cargo run --release -p fedwcm-experiments --bin flprof -- diff base.json cur.json --budget PROF_BUDGET.json
//! ```
//!
//! Artifacts (profile JSON, flame stacks, diff reports) go to stdout
//! and are byte-stable; progress goes to stderr through the shared
//! experiment console (`--quiet` silences it). Exit codes: 0 on
//! success, 1 when a budget or diff gate fails, 2 on usage or input
//! errors.

use fedwcm_experiments::prof;
use fedwcm_experiments::Cli;

enum Format {
    Table,
    Json,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: flprof <command> [args] [--quiet|-q] [--verbose|-v]\n\
         \n\
         commands:\n\
         \x20 analyze TRACE [--format table|json]   profile a JSONL trace\n\
         \x20 flame TRACE                           folded flame stacks\n\
         \x20 budget TRACE --budget FILE            gate a trace against a budget\n\
         \x20 diff BASE CUR [--budget FILE]         compare two profile documents"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

fn read(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut command = None;
    let mut positional = Vec::new();
    let mut format = Format::Table;
    let mut budget_path = None;
    let mut cli = Cli::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                format = match args.next().as_deref() {
                    Some("table") => Format::Table,
                    Some("json") => Format::Json,
                    _ => usage("--format needs table or json"),
                };
            }
            "--budget" => {
                budget_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--budget needs a file")),
                );
            }
            "--quiet" | "-q" => cli.verbosity = 0,
            "--verbose" | "-v" => cli.verbosity = 2,
            "--help" | "-h" => usage(""),
            other if other.starts_with('-') => usage(&format!("unknown flag {other}")),
            other if command.is_none() => command = Some(other.to_string()),
            other => positional.push(other.to_string()),
        }
    }
    let console = cli.console();
    let fail = |e: &dyn std::fmt::Display| -> ! {
        eprintln!("error: {e}");
        std::process::exit(2);
    };

    match command.as_deref() {
        Some("analyze") | Some("flame") | Some("budget") => {
            let [trace_path] = positional.as_slice() else {
                usage("expected exactly one TRACE argument");
            };
            let text = read(trace_path);
            let (profile, forest) = match prof::analyze_trace_text(&text) {
                Ok(r) => r,
                Err(e) => fail(&e),
            };
            console.info(format!(
                "parsed {} records -> {} spans, {} rounds, {} total ticks",
                profile.records,
                profile.spans,
                profile.rounds.len(),
                profile.total_ticks
            ));
            match command.as_deref() {
                Some("analyze") => match format {
                    Format::Table => print!("{}", prof::profile_table(&profile)),
                    Format::Json => print!("{}", prof::profile_json(&profile)),
                },
                Some("flame") => print!("{}", prof::flame_text(&forest)),
                _ => {
                    let Some(budget_path) = budget_path else {
                        usage("budget needs --budget FILE");
                    };
                    let budget_text = read(&budget_path);
                    let (report, ok) = match prof::run_budget(&budget_text, &profile) {
                        Ok(r) => r,
                        Err(e) => fail(&e),
                    };
                    print!("{report}");
                    if !ok {
                        console.info("budget check FAILED");
                        std::process::exit(1);
                    }
                    console.info("budget check passed");
                }
            }
        }
        Some("diff") => {
            let [base_path, cur_path] = positional.as_slice() else {
                usage("diff needs BASE and CUR profile documents");
            };
            let budget_text = budget_path.as_deref().map(read);
            let (report, ok) =
                match prof::run_diff(&read(base_path), &read(cur_path), budget_text.as_deref()) {
                    Ok(r) => r,
                    Err(e) => fail(&e),
                };
            print!("{report}");
            if !ok {
                console.info("diff gate FAILED");
                std::process::exit(1);
            }
            console.info("diff gate passed");
        }
        Some(other) => usage(&format!("unknown command {other}")),
        None => usage("missing command"),
    }
}
