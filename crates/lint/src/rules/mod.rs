//! The rule families.
//!
//! Each rule walks a [`FileCtx`](crate::engine::FileCtx) token stream
//! and appends [`Diagnostic`](crate::engine::Diagnostic)s. Rules match
//! **token sequences over non-comment tokens**, so nothing ever fires
//! inside a comment, string, or char literal (the lexer guarantees it).

use crate::engine::{Diagnostic, FileCtx, LintConfig};

mod determinism;
mod doc_coverage;
mod panic_freedom;
mod unsafe_safety;

pub use determinism::check_determinism;
pub use doc_coverage::check_doc_coverage;
pub use panic_freedom::check_panic_freedom;
pub use unsafe_safety::check_unsafe_safety;

/// Run every enabled rule family over one file.
pub fn run_all(ctx: &FileCtx, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    if cfg.is_enabled("unsafe-safety") {
        check_unsafe_safety(ctx, diags);
    }
    check_determinism(ctx, cfg, diags);
    if cfg.is_enabled("panic-freedom") {
        check_panic_freedom(ctx, diags);
    }
    if cfg.is_enabled("doc-coverage") {
        check_doc_coverage(ctx, diags);
    }
}
