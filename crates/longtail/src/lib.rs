//! Long-tail-specific federated baselines.
//!
//! The methods the paper compares FedWCM against that specifically target
//! class imbalance:
//!
//! * [`balancefl::BalanceFl`] — balanced local update scheme (class-
//!   balanced resampling + knowledge inheritance for locally-absent
//!   classes), following Shuai et al. (IPSN 2022);
//! * [`fedgrab::FedGrab`] — self-adjusting gradient balancer + direct
//!   prior analysis, following Xiao et al. (NeurIPS 2024);
//! * [`creff::creff_retrain`] — CReFF-style classifier re-training on
//!   federated (per-class prototype) features, usable as a post-processing
//!   step for any trained global model;
//! * [`variants`] — the paper's FedCM+{Focal, Balance Loss, Balance
//!   Sampler} combinations, built on `fedwcm-algos`' FedCM chassis.
//!
//! The re-implementations keep each method's defining mechanism and are
//! documented where they simplify secondary machinery (DESIGN.md §1).

#![warn(missing_docs)]

pub mod balancefl;
pub mod creff;
pub mod fedgrab;
pub mod variants;

pub use balancefl::BalanceFl;
pub use creff::creff_retrain;
pub use fedgrab::FedGrab;
pub use variants::{fedcm_balance_loss, fedcm_balance_sampler, fedcm_focal};
