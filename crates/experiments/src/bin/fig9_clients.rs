//! Figure 9: test accuracy vs total client count for FedAvg / FedCM /
//! FedWCM on CIFAR-10 (β = 0.6, IF = 0.1). More clients = less data per
//! client at fixed total data.

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_table, run_cell};
use fedwcm_experiments::{parse_args, ExpConfig, Method, Scale};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let methods = [Method::FedAvg, Method::FedCm, Method::FedWcm];
    let headers: Vec<String> = methods.iter().map(|m| m.label().to_string()).collect();
    let client_counts: &[usize] = match cli.scale {
        Scale::Smoke => &[5, 10, 20],
        Scale::Quick => &[10, 20, 40, 60],
        Scale::Paper => &[20, 50, 100, 150, 200],
    };
    let mut rows = Vec::new();
    for &k in client_counts {
        let mut exp = ExpConfig::new(DatasetPreset::Cifar10, 0.1, 0.6, cli.scale, cli.seed);
        exp.clients = k;
        // Keep the sampled cohort size roughly constant (as the paper's
        // fixed 10% of 100 does) so only per-client data volume varies.
        exp.participation = (5.0 / k as f64).clamp(0.05, 1.0);
        let values: Vec<f64> = methods.iter().map(|&m| run_cell(&exp, m, &cli)).collect();
        console.info(format!("[fig9] clients={k} done"));
        rows.push((format!("K={k}"), values));
    }
    print_table("Fig.9 — accuracy vs total client count", &headers, &rows);
    println!(
        "\nExpected shape (paper Fig. 9): all methods degrade with more\n\
         clients (less data each); FedWCM declines slowest, FedCM is\n\
         unstable/non-convergent."
    );
}
