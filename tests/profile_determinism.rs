//! Profile determinism: because JSONL traces are bitwise identical
//! across worker-thread counts (see `trace_determinism.rs`), every
//! artifact `flprof` derives from them — the `fedwcm-prof/v1` profile
//! document, the folded flame stacks — must be byte-identical too.
//! This is the property that makes committed performance budgets
//! meaningful: a budget violation is a real behavioural change, never
//! scheduling noise.

use fedwcm_algos::fedavg::FedAvg;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::prof;
use fedwcm_fl::{FlConfig, Simulation};
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;
use fedwcm_trace::{JsonlSink, LogicalClock, MetricsRegistry, SharedBuf, Tracer};
use std::sync::Arc;

/// Run a small traced CIFAR-10-preset simulation and return the raw
/// JSONL trace text.
fn traced_cifar10_run(threads: usize) -> String {
    let spec = DatasetPreset::Cifar10.spec();
    let counts = longtail_counts(spec.classes, 24, 0.5);
    let train = spec.generate_train(&counts, 55);
    let test = spec.generate_test(55);

    let mut cfg = FlConfig::default_sim();
    cfg.clients = 5;
    cfg.participation = 0.6;
    cfg.rounds = 3;
    cfg.eval_every = 2;
    cfg.threads = threads;

    let part = paper_partition(&train, cfg.clients, 0.5, cfg.seed);
    let views = part.views(&train);

    let buf = SharedBuf::new();
    let tracer = Tracer::new(
        Box::new(LogicalClock::new()),
        Arc::new(JsonlSink::new(buf.clone())),
    );
    let dim = train.dim();
    let sim = Simulation::new(
        cfg,
        &train,
        &test,
        views,
        Box::new(move || {
            let mut rng = Xoshiro256pp::seed_from(9);
            mlp(dim, &[16], 10, &mut rng)
        }),
    )
    .with_tracer(tracer.clone())
    .with_metrics(Arc::new(MetricsRegistry::new()));

    let _history = sim.run(&mut FedAvg::new());
    tracer.flush();
    String::from_utf8(buf.contents()).expect("trace is UTF-8")
}

#[test]
fn cifar10_profiles_are_bitwise_identical_across_thread_counts() {
    let t1 = traced_cifar10_run(1);
    let t4 = traced_cifar10_run(4);
    assert_eq!(t1, t4, "traces must already be identical");

    let (p1, f1) = prof::analyze_trace_text(&t1).expect("1-thread trace analyzes");
    let (p4, f4) = prof::analyze_trace_text(&t4).expect("4-thread trace analyzes");

    // The profile documents and flame stacks are byte-identical.
    assert_eq!(prof::profile_json(&p1), prof::profile_json(&p4));
    assert_eq!(prof::flame_text(&f1), prof::flame_text(&f4));
    assert_eq!(prof::profile_table(&p1), prof::profile_table(&p4));
}

#[test]
fn cifar10_profile_has_the_expected_shape() {
    let text = traced_cifar10_run(1);
    let (profile, _) = prof::analyze_trace_text(&text).expect("trace analyzes");
    assert_eq!(profile.rounds.len(), 3, "one RoundProfile per round");
    assert!(profile.phase("round").is_some());
    assert!(profile.phase("client_update").is_some());
    // Every tick is attributed exactly once.
    let a = profile.attribution;
    assert_eq!(
        a.compute_ticks + a.fault_ticks + a.wire_ticks + a.overhead_ticks,
        profile.total_ticks
    );
    // Round-trip through the schema.
    let doc = profile.to_json();
    let back = fedwcm_obs::Profile::from_json(&doc).expect("schema round-trips");
    assert_eq!(back, profile);
}
