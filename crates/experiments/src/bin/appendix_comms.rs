//! Appendix-C companion: put the HE exchange in context of per-round
//! model traffic ("negligible compared to model transmission overhead").
//!
//! Prints per-round up/down volumes for each model preset at the paper's
//! configuration, next to the one-off HE distribution exchange.

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::{parse_args, ExpConfig};
use fedwcm_fl::comms::{communication_report, model_bytes};
use fedwcm_he::rlwe::RlweParams;

fn main() {
    let cli = parse_args(std::env::args());
    let he_bytes = RlweParams::default_params().ciphertext_bytes();
    println!("# Appendix C — HE exchange vs model traffic");
    println!(
        "\n| {:<16} | {:>10} | {:>14} | {:>14} | {:>12} |",
        "preset", "params", "round up (MB)", "round down (MB)", "HE share (%)"
    );
    for preset in DatasetPreset::all() {
        let exp = ExpConfig::new(preset, 0.1, 0.1, cli.scale, cli.seed);
        let task = exp.prepare();
        let params = (task.factory)().param_len();
        let report = communication_report(&task.fl, params, true);
        let he_total = he_bytes * task.fl.clients;
        let share = 100.0 * he_total as f64
            / (report.up_bytes_per_round + report.down_bytes_per_round) as f64;
        println!(
            "| {:<16} | {:>10} | {:>14.3} | {:>14.3} | {:>12.2} |",
            preset.spec().name,
            params,
            report.up_bytes_per_round as f64 / 1e6,
            report.down_bytes_per_round as f64 / 1e6,
            share,
        );
    }
    println!(
        "\n# one ciphertext: {} B; the HE exchange happens once, the model\n\
         # traffic every round — matching the paper's negligibility claim\n\
         # (at paper scale with ResNet-18's ~{} MB model the share is far\n\
         # smaller still).",
        he_bytes,
        model_bytes(11_000_000) / 1_000_000,
    );
}
