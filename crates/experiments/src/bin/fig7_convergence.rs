//! Figure 7: test-accuracy-vs-round curves for all Table-1 methods plus
//! FedWCM at β = 0.6, IF = 0.1 (the headline convergence plot).

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_series, run_history};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let exp = ExpConfig::new(DatasetPreset::Cifar10, 0.1, 0.6, cli.scale, cli.seed);
    let methods = [
        Method::FedAvg,
        Method::BalanceFl,
        Method::FedGrab,
        Method::FedCm,
        Method::FedCmFocal,
        Method::FedCmBalanceLoss,
        Method::FedCmBalanceSampler,
        Method::FedWcm,
    ];
    let mut histories = Vec::new();
    for m in methods {
        histories.push(run_history(&exp, m, &cli));
        console.info(format!("[fig7] {} done", m.label()));
    }
    print_series("Fig.7 accuracy curves (beta=0.6, IF=0.1)", &histories);
    println!("\n# rounds to reach 60% of best-method accuracy:");
    let target = histories
        .iter()
        .map(|h| h.best_accuracy())
        .fold(0.0f64, f64::max)
        * 0.85;
    for h in &histories {
        match h.rounds_to_reach(target) {
            Some(r) => println!("{}: round {r}", h.name),
            None => println!("{}: never reached {target:.3}", h.name),
        }
    }
    println!(
        "\nExpected shape (paper Fig. 7): FedWCM converges fastest and\n\
         highest; FedCM variants oscillate/fail; FedAvg/BalanceFL slower."
    );
}
