//! Property-based tests for the stats crate: distribution invariants that
//! must hold for arbitrary parameters, not just hand-picked ones.

use fedwcm_stats::describe::{gini, normalize, softmax_with_temperature, total_variation};
use fedwcm_stats::dist::{Categorical, Dirichlet, Gamma};
use fedwcm_stats::rng::{Rng, Xoshiro256pp};
use proptest::prelude::*;

proptest! {
    #[test]
    fn dirichlet_always_simplex(beta in 0.05f64..10.0, dim in 2usize..30, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let d = Dirichlet::symmetric(beta, dim);
        let p = d.sample(&mut rng);
        prop_assert_eq!(p.len(), dim);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn gamma_always_positive(alpha in 0.05f64..20.0, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let g = Gamma::new(alpha);
        for _ in 0..50 {
            let x = g.sample(&mut rng);
            prop_assert!(x > 0.0 && x.is_finite());
        }
    }

    #[test]
    fn categorical_in_range(n in 1usize..64, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let c = Categorical::new(&weights);
        for _ in 0..200 {
            prop_assert!(c.sample(&mut rng) < n);
        }
    }

    #[test]
    fn softmax_sums_to_one(xs in prop::collection::vec(-50.0f64..50.0, 1..40), t in 0.01f64..100.0) {
        let w = softmax_with_temperature(&xs, t);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-8);
        prop_assert!(w.iter().all(|&x| x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn softmax_preserves_order(xs in prop::collection::vec(-10.0f64..10.0, 2..20), t in 0.1f64..10.0) {
        let w = softmax_with_temperature(&xs, t);
        for i in 0..xs.len() {
            for j in 0..xs.len() {
                if xs[i] > xs[j] {
                    prop_assert!(w[i] >= w[j]);
                }
            }
        }
    }

    #[test]
    fn gini_bounded(xs in prop::collection::vec(0.0f64..100.0, 1..50)) {
        let g = gini(&xs);
        prop_assert!((-1e-9..1.0).contains(&g), "gini {}", g);
    }

    #[test]
    fn tv_is_metric_like(
        a in prop::collection::vec(0.01f64..10.0, 2..20),
        b in prop::collection::vec(0.01f64..10.0, 2..20),
    ) {
        let n = a.len().min(b.len());
        let p = normalize(&a[..n]);
        let q = normalize(&b[..n]);
        let d = total_variation(&p, &q);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d));
        prop_assert!((total_variation(&p, &q) - total_variation(&q, &p)).abs() < 1e-12);
        prop_assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn sample_indices_always_valid(n in 1usize..200, seed in any::<u64>()) {
        let mut rng = Xoshiro256pp::seed_from(seed);
        let k = (seed as usize % n) + 1;
        let k = k.min(n);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k);
        prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(s.iter().all(|&i| i < n));
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>(), labels in prop::collection::vec(any::<u64>(), 0..5)) {
        let mut a = Xoshiro256pp::stream(seed, &labels);
        let mut b = Xoshiro256pp::stream(seed, &labels);
        for _ in 0..20 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
