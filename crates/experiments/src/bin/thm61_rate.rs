//! Theorem 6.1 empirical rate check: on the convex quadratic testbed,
//! the averaged squared gradient norm `(1/R)Σ‖∇f(x_r)‖²` must decay like
//! `R^{-1/2}` (noise-dominated) to `R^{-1}` (noiseless), for both the
//! fixed-α FedCM rule and the adaptive-α schedule used by FedWCM.

use fedwcm_analysis::rate::{fit_power_law, mean_grad_norm};
use fedwcm_experiments::parse_args;
use fedwcm_fl::quadratic::{run_quadratic_fedcm, QuadRunConfig, QuadraticProblem};

fn sweep(
    problem: &QuadraticProblem,
    alpha: f64,
    rounds_grid: &[usize],
    seed: u64,
) -> (f64, Vec<(usize, f64)>) {
    let mut points = Vec::new();
    for &rounds in rounds_grid {
        let cfg = QuadRunConfig {
            local_steps: 4,
            rounds,
            local_lr: 0.03,
            alpha,
            seed,
        };
        let norms = run_quadratic_fedcm(problem, &cfg);
        points.push((rounds, mean_grad_norm(&norms)));
    }
    let xs: Vec<f64> = points.iter().map(|&(r, _)| r as f64).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
    let (b, _) = fit_power_law(&xs, &ys);
    (b, points)
}

fn main() {
    let cli = parse_args(std::env::args());
    let grid = [20usize, 40, 80, 160, 320, 640];
    println!("# Theorem 6.1 rate check on the quadratic testbed (N=8 clients, K=4 local steps)");
    for (label, sigma) in [("noiseless", 0.0), ("noisy (sigma=0.5)", 0.5)] {
        let problem = QuadraticProblem::random(8, 10, 1.5, sigma, cli.seed);
        for alpha in [0.1f64, 0.5] {
            let (b, points) = sweep(&problem, alpha, &grid, cli.seed);
            println!("\n## {label}, alpha={alpha} — fitted exponent b = {b:.3}");
            println!("R,avg_grad_norm_sq");
            for (r, v) in points {
                println!("{r},{v:.6e}");
            }
        }
    }
    println!(
        "\nExpected shape (Theorem 6.1): exponents in roughly [-1.6, -0.35],\n\
         i.e. between the O(1/R) optimisation term and the O(1/sqrt(R))\n\
         statistical term."
    );
}
