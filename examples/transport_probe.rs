//! Transport determinism probe for CI.
//!
//! Runs a small federated simulation through the fault-tolerant wire
//! transport under a lossy network plan (`cfg.threads = 0`, so the
//! `FEDWCM_THREADS` env var decides the worker count) and prints every
//! round metric *and* network counter at full bit precision. CI runs
//! this twice — `FEDWCM_THREADS=1` and `FEDWCM_THREADS=4` — and diffs
//! the output: any byte of difference means retries, backoff, or
//! frame-level fault injection stopped being bitwise deterministic.
//!
//! Before the lossy run, the probe self-checks the zero-rate identity:
//! a simulation with a zero-rate `NetPlan` must produce record-for-
//! record identical bits to one with no plan at all, because the engine
//! bypasses the transport when the plan cannot fire.

use fedwcm_algos::fedavg::FedAvg;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_fl::{FlConfig, History, NetConfig, NetPlan, Simulation};
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;

fn run(net: Option<NetPlan>) -> History {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 40, 0.5);
    let train = spec.generate_train(&counts, 31);
    let test = spec.generate_test(31);

    let mut cfg = FlConfig::default_sim();
    cfg.clients = 6;
    cfg.participation = 0.5;
    cfg.rounds = 6;
    cfg.eval_every = 3;
    cfg.threads = 0; // defer to FEDWCM_THREADS

    let part = paper_partition(&train, cfg.clients, 0.5, cfg.seed);
    let views = part.views(&train);
    let mut sim = Simulation::new(
        cfg,
        &train,
        &test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(1234);
            mlp(64, &[32], 10, &mut rng)
        }),
    );
    if let Some(plan) = net {
        sim = sim.with_net_plan(plan);
    }
    sim.run(&mut FedAvg::new())
}

fn record_bits(h: &History) -> Vec<String> {
    h.records
        .iter()
        .map(|r| {
            format!(
                "round={} loss_bits={} norm_bits={:#018x} acc_bits={} \
                 sent={} retries={} rejected={} dup={} delayed={} degraded={} \
                 retx_bytes={} rej_bytes={}",
                r.round,
                r.train_loss
                    .map(|l| format!("{:#018x}", l.to_bits()))
                    .unwrap_or_else(|| "-".into()),
                r.update_norm.to_bits(),
                r.test_acc
                    .map(|a| format!("{:#018x}", a.to_bits()))
                    .unwrap_or_else(|| "-".into()),
                r.net.frames_sent,
                r.net.retries,
                r.net.rejected_frames,
                r.net.duplicates,
                r.net.delayed,
                r.net.degraded,
                r.net.retransmitted_bytes,
                r.net.rejected_bytes,
            )
        })
        .collect()
}

fn main() {
    // Zero-rate identity: a plan that can never fire must be invisible.
    let plain = record_bits(&run(None));
    let zeroed = record_bits(&run(Some(NetPlan::zero(0x4E17))));
    assert_eq!(plain, zeroed, "zero-rate NetPlan changed the run");

    let lossy = NetConfig::parse("drop:0.1,corrupt:0.05,delay:2,seed:77").expect("valid spec");
    let history = run(Some(NetPlan::new(lossy)));
    let totals = history.net_totals();
    assert!(totals.frames_sent > 0, "lossy run sent no frames");
    assert!(
        totals.retries > 0 || totals.delayed > 0,
        "lossy plan never perturbed a delivery"
    );
    for line in record_bits(&history) {
        println!("{line}");
    }
    println!(
        "transport probe ok: {} frames, {} retries, {} rejected, {} delayed, {} degraded",
        totals.frames_sent, totals.retries, totals.rejected_frames, totals.delayed, totals.degraded
    );
}
