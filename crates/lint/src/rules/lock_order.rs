//! `lock-order` — static lock-acquisition ordering over
//! `lock_recover` / `wait_recover` call sites.
//!
//! The workspace's only blocking primitives are the poison-recovering
//! wrappers in `fedwcm-parallel::sync` and `fedwcm-trace`. This rule
//! builds the static acquisition graph: a directed edge `A → B` means
//! some function acquires lock `B` while (an over-approximation says)
//! it still holds `A` — either directly, or by calling (through the
//! cross-file call graph) a function that acquires `B`. A **cycle** in
//! that graph is a potential deadlock and is a hard error; so is
//! re-acquiring a lock already held (`std::sync::Mutex` self-deadlocks).
//!
//! Lock identity is syntactic: the argument place normalized so
//! `self.field` carries the impl type (`Pool.queue`) and a parameter
//! base is replaced by its type's head identifier. Guard lifetimes are
//! tracked per block — a `let`-bound guard is held to the end of its
//! block (or an explicit `drop(guard)`), a temporary
//! (`lock_recover(&m).push(x)`) only for its own statement. This
//! over-approximates holds, never invents lock identities, so a
//! reported cycle is always a real *ordering* inversion even when
//! runtime reachability makes it benign — suppress with
//! `// lint:allow(lock-order) <why the states are disjoint>`.

use crate::ast::{Block, Expr, FnDef, Stmt};
use crate::callgraph::{CallGraph, FnId};
use crate::engine::{Diagnostic, FileCtx};
use std::collections::{BTreeMap, BTreeSet};

const RULE: &str = "lock-order";

/// An acquisition edge `held → acquired` with its first witness site.
type Edges = BTreeMap<(String, String), (String, usize)>;

/// Run the rule over the parsed workspace.
pub fn check_lock_order(files: &[FileCtx], cg: &CallGraph<'_>, diags: &mut Vec<Diagnostic>) {
    // Fixpoint: the set of lock keys each function may acquire,
    // including transitively through resolved calls.
    let n = cg.fns.len();
    let mut acquired: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    for _ in 0..12 {
        let mut changed = false;
        for id in 0..n {
            let mut acc = acquired[id].clone();
            let (_, f) = cg.fns[id];
            f.body.walk(&mut |e| {
                if let Some(key) = lock_call_key(e, f) {
                    acc.insert(key);
                }
                if matches!(e, Expr::Call { .. } | Expr::MethodCall { .. }) {
                    if let Some(t) = cg.resolve(id, e) {
                        if t != id {
                            for k in acquired[t].clone() {
                                acc.insert(k);
                            }
                        }
                    }
                }
            });
            if acc.len() != acquired[id].len() {
                acquired[id] = acc;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Collect edges (and self-deadlocks) per function.
    let mut edges: Edges = BTreeMap::new();
    for (id, &(fi, f)) in cg.fns.iter().enumerate() {
        let ctx = &files[fi];
        if ctx.is_test_line(f.line) {
            continue;
        }
        let mut held: Vec<(String, String)> = Vec::new(); // (guard name, key)
        walk_holds(
            ctx, cg, id, f, &f.body, &mut held, &acquired, &mut edges, diags,
        );
    }

    // Cycle detection over the edge graph.
    report_cycles(&edges, diags);
}

/// `lock_recover(&place)` / `wait_recover(&cv, g)` → normalized key.
fn lock_call_key(e: &Expr, f: &FnDef) -> Option<String> {
    let Expr::Call { callee, args, .. } = e else {
        return None;
    };
    let name = callee.base_ident()?;
    if name != "lock_recover" && name != "wait_recover" {
        return None;
    }
    let arg = args.first()?;
    Some(normalize_place(arg, f))
}

/// Normalize a lock argument place: strip `&`, prefix `self` with the
/// impl type, and replace a parameter base with its type's head
/// identifier so `pool: &Pool` and `self` in `impl Pool` agree.
fn normalize_place(arg: &Expr, f: &FnDef) -> String {
    let inner = match arg {
        Expr::Unary { expr, .. } => expr,
        other => other,
    };
    let text = inner
        .place_text()
        .unwrap_or_else(|| format!("<expr@{}>", inner.line()));
    let mut segs: Vec<&str> = text.split(['.', ':']).filter(|s| !s.is_empty()).collect();
    if segs.is_empty() {
        return text;
    }
    if segs[0] == "self" {
        let ty = f.self_ty.as_deref().unwrap_or("Self").to_string();
        segs.remove(0);
        return std::iter::once(ty.as_str())
            .chain(segs)
            .collect::<Vec<_>>()
            .join(".");
    }
    if let Some(p) = f.params.iter().find(|p| p.name == segs[0]) {
        if let Some(head) = type_head(&p.ty) {
            segs[0] = head;
        }
    }
    segs.join(".")
}

/// Head type identifier of normalized type text: `&Arc<Shared>` →
/// `Arc`, `&mut Mutex<u64>` → `Mutex`.
fn type_head(ty: &str) -> Option<&str> {
    let t = ty.trim_start_matches(['&', ' ']);
    let t = t.strip_prefix("mut").map(str::trim_start).unwrap_or(t);
    let end = t
        .find(|c: char| !(c.is_alphanumeric() || c == '_'))
        .unwrap_or(t.len());
    if end == 0 {
        None
    } else {
        Some(&t[..end])
    }
}

/// Walk a block tracking guard lifetimes; record edges from every held
/// lock to every newly acquired one (directly or via callees).
#[allow(clippy::too_many_arguments)]
fn walk_holds(
    ctx: &FileCtx,
    cg: &CallGraph<'_>,
    id: FnId,
    f: &FnDef,
    block: &Block,
    held: &mut Vec<(String, String)>,
    acquired: &[BTreeSet<String>],
    edges: &mut Edges,
    diags: &mut Vec<Diagnostic>,
) {
    let held_at_entry = held.len();
    for s in &block.stmts {
        match s {
            Stmt::Let {
                name,
                init: Some(init),
                ..
            } => {
                // A guard bound by `let g = lock_recover(&m);` is held
                // until the end of this block.
                if let Some(key) = lock_call_key(init, f) {
                    record_acquire(ctx, init.line(), &key, held, edges, diags);
                    held.push((name.clone(), key));
                } else {
                    scan_expr(ctx, cg, id, f, init, held, acquired, edges, diags);
                }
            }
            Stmt::Let { init: None, .. } => {}
            Stmt::Expr(e) => {
                // `drop(g)` releases a named guard early.
                if let Expr::Call { callee, args, .. } = e {
                    if callee.base_ident() == Some("drop") && args.len() == 1 {
                        if let Some(g) = args[0].base_ident() {
                            held.retain(|(name, _)| name != g);
                            continue;
                        }
                    }
                }
                scan_expr(ctx, cg, id, f, e, held, acquired, edges, diags);
            }
        }
    }
    held.truncate(held_at_entry);
}

/// Scan one statement-level expression: temporary acquisitions live
/// only for this statement; nested blocks recurse with scoping.
#[allow(clippy::too_many_arguments)]
fn scan_expr(
    ctx: &FileCtx,
    cg: &CallGraph<'_>,
    id: FnId,
    f: &FnDef,
    e: &Expr,
    held: &mut Vec<(String, String)>,
    acquired: &[BTreeSet<String>],
    edges: &mut Edges,
    diags: &mut Vec<Diagnostic>,
) {
    match e {
        Expr::BlockExpr(b) => {
            walk_holds(ctx, cg, id, f, b, held, acquired, edges, diags);
        }
        Expr::If {
            cond, then, els, ..
        } => {
            scan_expr(ctx, cg, id, f, cond, held, acquired, edges, diags);
            walk_holds(ctx, cg, id, f, then, held, acquired, edges, diags);
            if let Some(els) = els {
                scan_expr(ctx, cg, id, f, els, held, acquired, edges, diags);
            }
        }
        Expr::Loop { head, body, .. } => {
            if let Some(h) = head {
                scan_expr(ctx, cg, id, f, h, held, acquired, edges, diags);
            }
            walk_holds(ctx, cg, id, f, body, held, acquired, edges, diags);
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            scan_expr(ctx, cg, id, f, scrutinee, held, acquired, edges, diags);
            for a in arms {
                scan_expr(ctx, cg, id, f, a, held, acquired, edges, diags);
            }
        }
        Expr::Closure { body, .. } => {
            // A closure body runs later (possibly on another thread):
            // analyse it with no inherited holds.
            let mut fresh = Vec::new();
            scan_expr(ctx, cg, id, f, body, &mut fresh, acquired, edges, diags);
        }
        _ => {
            // Flat walk for temporaries and resolved calls. A
            // `lock_recover` temporary here is released at the end of
            // the statement, so it creates edges from the held set but
            // is never pushed onto it.
            e.walk(&mut |sub| match sub {
                Expr::Call { .. } => {
                    if let Some(key) = lock_call_key(sub, f) {
                        record_acquire(ctx, sub.line(), &key, held, edges, diags);
                    } else if let Some(t) = cg.resolve(id, sub) {
                        record_callee(ctx, sub.line(), &acquired[t], held, edges);
                    }
                }
                Expr::MethodCall { .. } => {
                    if let Some(t) = cg.resolve(id, sub) {
                        record_callee(ctx, sub.line(), &acquired[t], held, edges);
                    }
                }
                _ => {}
            });
        }
    }
}

/// Record edges `held → key`, plus a self-deadlock diagnostic when the
/// same key is already held.
fn record_acquire(
    ctx: &FileCtx,
    line: usize,
    key: &str,
    held: &[(String, String)],
    edges: &mut Edges,
    diags: &mut Vec<Diagnostic>,
) {
    for (_, h) in held {
        if h == key {
            diags.push(ctx.diag(
                RULE,
                line,
                format!(
                    "lock `{key}` acquired while already held — `std::sync::Mutex` is not \
                     reentrant, this self-deadlocks"
                ),
            ));
            continue;
        }
        edges
            .entry((h.clone(), key.to_string()))
            .or_insert_with(|| (ctx.path.clone(), line));
    }
}

/// Record edges from every held lock to every lock a callee may take.
fn record_callee(
    ctx: &FileCtx,
    line: usize,
    callee_locks: &BTreeSet<String>,
    held: &[(String, String)],
    edges: &mut Edges,
) {
    for (_, h) in held {
        for k in callee_locks {
            if h != k {
                edges
                    .entry((h.clone(), k.clone()))
                    .or_insert_with(|| (ctx.path.clone(), line));
            }
        }
    }
}

/// Report every edge that closes a cycle in the acquisition graph.
fn report_cycles(edges: &Edges, diags: &mut Vec<Diagnostic>) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (u, v) in edges.keys() {
        adj.entry(u.as_str()).or_default().push(v.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            if seen.insert(x) {
                if let Some(next) = adj.get(x) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };
    for ((u, v), (path, line)) in edges {
        if reaches(v, u) {
            diags.push(Diagnostic {
                path: path.clone(),
                line: *line,
                rule: RULE.to_string(),
                message: format!(
                    "lock-order cycle: `{u}` is held while acquiring `{v}`, but another path \
                     acquires `{u}` while holding `{v}` — establish a single global order for \
                     these locks"
                ),
            });
        }
    }
}
