//! `discount-once` — every received update crosses the staleness
//! discount exactly once on its way to aggregation.
//!
//! FedWCM's momentum-weighted aggregation is unusually sensitive to "a
//! weight applied twice": the cadence PR's headline bug class was the
//! `1/(1+s)` staleness discount paid both at receive time *and* at
//! application time, silently shrinking every late update
//! quadratically. The protocol since then: the fault pipeline returns
//! **undiscounted** `ReceivedUpdate`s, buffers hold **undiscounted**
//! deltas, and the one discount is paid where the cadence applies the
//! update.
//!
//! This rule checks the protocol with a forward dataflow over
//! [`crate::dataflow`]: values of type `ReceivedUpdate`/`BufferedUpdate`
//! (and their `.update`/`.delta` projections) carry a *discount count* —
//! the set of times `staleness_discount` may have scaled them on some
//! path, saturating at 2. At every aggregation sink (a
//! `RoundInput { updates: … }` construction), the count must be exactly
//! `{1}`:
//!
//! * `0` reachable → "may reach aggregation undiscounted";
//! * `≥ 2` reachable → "may be discounted twice" (the regression class).
//!
//! # What counts as a discount
//!
//! * an assignment `… *= w` where `w` derives from a
//!   `staleness_discount(…)` call (through products and local `let`s) —
//!   including the canonical loop
//!   `for d in u.delta.iter_mut() { *d *= w; }`, which is recognised as
//!   **one** application to `u` (the loop runs per element, not per
//!   discount);
//! * a call to a function whose interprocedural summary says "discounts
//!   its parameter and returns it" (`into_discounted`), including
//!   `.map(into_discounted)` / `.map(|b| into_discounted(…))` over a
//!   collection of received updates.
//!
//! A guard of the shape `if staleness > 0 { discount }` counts as
//! discounting on *both* paths: the guard proves the skipped discount
//! is the identity (`staleness_discount(0) == 1`), so the else-path is
//! already "discounted by 1". Iterator plumbing
//! (`into_iter`/`drain`/`collect`/…) propagates counts unchanged, `for`
//! bindings inherit the iterated collection's count, and `Vec::push`
//! joins the pushed value's count into the collection. A local whose
//! annotation names a delta type (`let batch: Vec<BufferedUpdate> = …`)
//! is seeded undiscounted even when its initializer is opaque — that is
//! what makes the buffer drain paths visible. Consumption inside
//! algorithms (`aggregate(&input)`) is out of scope: the rule gates the
//! construction side, where the protocol lives.

use crate::ast::{Block, Expr, Stmt, TypeEnv};
use crate::callgraph::{CallGraph, FnId};
use crate::dataflow::{run_block, summary_fixpoint, BranchChoice, ForwardSemantics, JoinLattice};
use crate::engine::{Diagnostic, FileCtx};
use crate::lexer::TokKind;
use std::collections::{BTreeMap, BTreeSet};

const RULE: &str = "discount-once";

/// Type names whose values carry an (undiscounted-at-birth) delta.
const DELTA_TYPES: &[&str] = &["ReceivedUpdate", "BufferedUpdate"];

/// Field projections that follow the delta through its wrappers.
const DELTA_FIELDS: &[&str] = &["update", "delta"];

/// Methods that pass a value (or a collection's elements) through
/// unchanged.
const PROPAGATE_METHODS: &[&str] = &[
    "into_iter",
    "iter",
    "iter_mut",
    "drain",
    "collect",
    "clone",
    "to_vec",
    "take",
    "filter",
    "rev",
    "cloned",
    "copied",
];

/// A set of possible discount counts, saturating at 2 ("2 or more").
type Counts = BTreeSet<u8>;

fn once(c: u8) -> Counts {
    std::iter::once(c).collect()
}

fn bump(counts: &Counts, by: u8) -> Counts {
    counts
        .iter()
        .map(|&c| c.saturating_add(by).min(2))
        .collect()
}

/// Root local of a place/chain expression: `u.delta.iter_mut()` → `u`,
/// `state.pending` → `state`. Unlike [`Expr::base_ident`] this sees
/// through method calls, so loop heads resolve.
fn chain_root(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path { segs, .. } => segs.first().map(String::as_str),
        Expr::Field { base, .. } | Expr::Index { base, .. } => chain_root(base),
        Expr::MethodCall { recv, .. } => chain_root(recv),
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => chain_root(expr),
        _ => None,
    }
}

/// Per-variable abstract state inside one function.
#[derive(Clone, Default)]
struct State {
    /// Delta-carrying variables → possible discount counts.
    vars: BTreeMap<String, Counts>,
    /// Variables holding a discount *factor* (derived from
    /// `staleness_discount`).
    factors: BTreeSet<String>,
}

impl JoinLattice for State {
    fn join_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for (k, v) in &other.vars {
            let slot = self.vars.entry(k.clone()).or_default();
            let before = slot.len();
            slot.extend(v.iter().copied());
            changed |= slot.len() != before;
        }
        let before = self.factors.len();
        self.factors.extend(other.factors.iter().cloned());
        changed | (self.factors.len() != before)
    }
}

/// Interprocedural summary of one function's effect on delta values.
#[derive(Clone, Default, PartialEq)]
struct Summary {
    /// `Some((i, k))`: the function returns parameter `i`'s delta with
    /// `k` additional discounts applied (`into_discounted` → `(0, 1)`).
    adds: Option<(usize, u8)>,
    /// `Some(counts)`: the function returns a delta value born inside
    /// it with these counts (a fault pipeline returning fresh
    /// `ReceivedUpdate`s → `{0}`).
    ret: Option<Counts>,
}

/// The analysis for one function body.
struct Analysis<'a> {
    cg: &'a CallGraph<'a>,
    id: FnId,
    summaries: &'a [Summary],
    /// Flow-insensitive annotation types, for seeding locals whose
    /// initializer is opaque (`let batch: Vec<BufferedUpdate> = …`).
    env: TypeEnv,
    /// Origin parameter of delta-carrying locals, for summary
    /// derivation: `vars[name]` flowed from parameter `origins[name]`.
    origins: BTreeMap<String, usize>,
    /// Line → joined counts at every `RoundInput { updates: … }` sink.
    sinks: BTreeMap<usize, Counts>,
    /// Counts returned via tail expression / `return`.
    returned: Vec<(Counts, Option<usize>)>,
}

impl Analysis<'_> {
    /// Discount counts an expression evaluates to; empty set = not a
    /// delta value the analysis can see.
    fn eval(&mut self, e: &Expr, st: &State) -> Counts {
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => {
                if let Some(c) = st.vars.get(&segs[0]) {
                    return c.clone();
                }
                // Annotation fallback: a local declared with a delta
                // type is undiscounted until the flow says otherwise.
                if self
                    .env
                    .get(&segs[0])
                    .is_some_and(|t| DELTA_TYPES.iter().any(|d| t.contains(d)))
                {
                    return once(0);
                }
                Counts::new()
            }
            Expr::Field { base, name, .. } if DELTA_FIELDS.contains(&name.as_str()) => {
                self.eval(base, st)
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => self.eval(expr, st),
            Expr::Tuple { items, .. } if items.len() == 1 => self.eval(&items[0], st),
            Expr::Struct { segs, fields, .. }
                if segs
                    .last()
                    .is_some_and(|s| DELTA_TYPES.contains(&s.as_str())) =>
            {
                // A fresh wrapper is born undiscounted, but inherits any
                // discounts already applied to the delta placed in it.
                let inner = fields
                    .iter()
                    .find(|(n, _)| DELTA_FIELDS.contains(&n.as_str()))
                    .map(|(_, v)| self.eval(v, st))
                    .unwrap_or_default();
                if inner.is_empty() {
                    once(0)
                } else {
                    inner
                }
            }
            Expr::Call { args, .. } => {
                let Some(target) = self.cg.resolve(self.id, e) else {
                    return Counts::new();
                };
                let summary = self.summaries[target].clone();
                if let Some((i, k)) = summary.adds {
                    if let Some(arg) = args.get(i) {
                        let counts = self.eval(arg, st);
                        if !counts.is_empty() {
                            return bump(&counts, k);
                        }
                    }
                }
                summary.ret.unwrap_or_default()
            }
            Expr::MethodCall {
                recv, method, args, ..
            } => {
                if PROPAGATE_METHODS.contains(&method.as_str()) {
                    return self.eval(recv, st);
                }
                if method == "map" {
                    let elem = self.eval(recv, st);
                    if let Some(f) = args.first() {
                        return self.eval_mapper(f, elem, st);
                    }
                    return Counts::new();
                }
                if let Some(target) = self.cg.resolve(self.id, e) {
                    let summary = self.summaries[target].clone();
                    if let Some((_, k)) = summary.adds {
                        let counts = self.eval(recv, st);
                        if !counts.is_empty() {
                            return bump(&counts, k);
                        }
                    }
                    return summary.ret.unwrap_or_default();
                }
                Counts::new()
            }
            Expr::Macro { name, args, .. } if name == "vec" => {
                let mut out = Counts::new();
                for a in args {
                    out.extend(self.eval(a, st));
                }
                out
            }
            Expr::If { then, els, .. } => {
                let mut out = self.eval_block_tail(then, st);
                if let Some(els) = els {
                    out.extend(self.eval(els, st));
                }
                out
            }
            Expr::Match { arms, .. } => {
                let mut out = Counts::new();
                for a in arms {
                    out.extend(self.eval(a, st));
                }
                out
            }
            Expr::BlockExpr(b) => self.eval_block_tail(b, st),
            _ => Counts::new(),
        }
    }

    /// Counts of a block's tail expression (shallow — good enough for
    /// branch tails; full closure bodies go through the driver).
    fn eval_block_tail(&mut self, b: &Block, st: &State) -> Counts {
        match b.stmts.last() {
            Some(Stmt::Expr(e)) => self.eval(e, st),
            _ => Counts::new(),
        }
    }

    /// Result counts of `.map(f)` where the elements carry `elem`.
    fn eval_mapper(&mut self, f: &Expr, elem: Counts, st: &State) -> Counts {
        match f {
            // `.map(into_discounted)` — a function reference.
            Expr::Path { segs, .. } => {
                if let Some(target) = self.resolve_fn_value(segs) {
                    let summary = self.summaries[target].clone();
                    if let Some((_, k)) = summary.adds {
                        if !elem.is_empty() {
                            return bump(&elem, k);
                        }
                    }
                    return summary.ret.unwrap_or_default();
                }
                elem
            }
            // `.map(|b| …)` — interpret the closure body with the
            // parameter bound to the element counts.
            Expr::Closure { params, body, .. } => {
                let mut inner = st.clone();
                if let (Some(p), false) = (params.first(), elem.is_empty()) {
                    inner.vars.insert(p.name.clone(), elem.clone());
                }
                match &**body {
                    Expr::BlockExpr(b) => {
                        let mut sems = Driver { a: self };
                        run_block(b, &mut sems, &mut inner);
                        self.eval_block_tail(b, &inner)
                    }
                    e => self.eval(e, &inner),
                }
            }
            _ => elem,
        }
    }

    /// Resolve a bare path used as a function *value* (`map(f)`): the
    /// caller's file first, then unique-in-workspace — the same bias as
    /// [`CallGraph::resolve`].
    fn resolve_fn_value(&self, segs: &[String]) -> Option<FnId> {
        let name = segs.last()?;
        let caller_file = self.cg.fns[self.id].0;
        let mut same_file = Vec::new();
        let mut global = Vec::new();
        for (id, &(fi, f)) in self.cg.fns.iter().enumerate() {
            if f.name == *name {
                global.push(id);
                if fi == caller_file {
                    same_file.push(id);
                }
            }
        }
        match (same_file.as_slice(), global.as_slice()) {
            ([one], _) => Some(*one),
            ([], [one]) => Some(*one),
            _ => None,
        }
    }

    /// Is this expression a discount factor (derived from
    /// `staleness_discount`)?
    fn is_factor(&self, e: &Expr, st: &State) -> bool {
        match e {
            Expr::Call { callee, .. } => matches!(
                &**callee,
                Expr::Path { segs, .. }
                    if segs.last().is_some_and(|s| s == "staleness_discount")
            ),
            Expr::Path { segs, .. } if segs.len() == 1 => st.factors.contains(&segs[0]),
            Expr::Binary { lhs, rhs, .. } => self.is_factor(lhs, st) || self.is_factor(rhs, st),
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => self.is_factor(expr, st),
            Expr::Tuple { items, .. } if items.len() == 1 => self.is_factor(&items[0], st),
            _ => false,
        }
    }

    /// Record the sink when `e` is a `RoundInput { updates: … }`.
    fn check_sink(&mut self, e: &Expr, st: &State) {
        let Expr::Struct {
            segs, fields, line, ..
        } = e
        else {
            return;
        };
        if segs.last().map(String::as_str) != Some("RoundInput") {
            return;
        }
        let Some(v) = fields.iter().find(|(n, _)| n == "updates").map(|(_, v)| v) else {
            return;
        };
        let mut counts = self.eval(v, st);
        if counts.is_empty() {
            // Fall back to any tracked delta variable mentioned in the
            // field value (`&updates`, helper-wrapped, …).
            v.walk(&mut |sub| {
                if let Expr::Path { segs, .. } = sub {
                    if segs.len() == 1 {
                        if let Some(c) = st.vars.get(&segs[0]) {
                            counts.extend(c.iter().copied());
                        }
                    }
                }
            });
        }
        if !counts.is_empty() {
            self.sinks.entry(*line).or_default().extend(counts);
        }
    }
}

/// Driver adapter binding the dataflow framework to [`Analysis`]; used
/// both for function bodies and for `.map` closure bodies.
struct Driver<'a, 'b> {
    a: &'a mut Analysis<'b>,
}

impl ForwardSemantics for Driver<'_, '_> {
    type State = State;

    fn let_stmt(&mut self, name: &str, init: Option<&Expr>, state: &mut State) {
        let Some(init) = init else {
            return;
        };
        // The initializer may itself contain a sink or a side effect.
        self.expr_stmt(init, state);
        let counts = self.a.eval(init, state);
        if counts.is_empty() {
            // Strong update: a re-binding drops stale possibilities.
            state.vars.remove(name);
        } else {
            if let Some(base) = init.base_ident() {
                if let Some(&origin) = self.a.origins.get(base) {
                    self.a.origins.insert(name.to_string(), origin);
                }
            }
            state.vars.insert(name.to_string(), counts);
        }
        if self.a.is_factor(init, state) {
            state.factors.insert(name.to_string());
        } else {
            state.factors.remove(name);
        }
    }

    fn expr_stmt(&mut self, e: &Expr, state: &mut State) {
        // `u.delta[i] *= factor` outside a recognised loop.
        if let Expr::Assign {
            op, target, value, ..
        } = e
        {
            if op == "*=" && self.a.is_factor(value, state) {
                if let Some(root) = chain_root(target).map(str::to_string) {
                    if let Some(counts) = state.vars.get(&root).cloned() {
                        state.vars.insert(root, bump(&counts, 1));
                    }
                }
            }
        }
        // `out.push(ReceivedUpdate { … })` joins the element's count
        // into the collection (how the fault pipeline builds its vec).
        if let Expr::MethodCall {
            recv, method, args, ..
        } = e
        {
            if matches!(method.as_str(), "push" | "extend") {
                if let (Some(root), Some(arg)) = (chain_root(recv), args.first()) {
                    let root = root.to_string();
                    let counts = self.a.eval(arg, state);
                    if !counts.is_empty() {
                        state.vars.entry(root).or_default().extend(counts);
                    }
                }
            }
        }
        // Sinks and returns anywhere inside the expression.
        let mut structs: Vec<&Expr> = Vec::new();
        let mut rets: Vec<&Expr> = Vec::new();
        e.walk(&mut |sub| match sub {
            Expr::Struct { .. } => structs.push(sub),
            Expr::Jump { value: Some(v), .. } => rets.push(v),
            _ => {}
        });
        for s in structs {
            self.a.check_sink(s, state);
        }
        for r in rets {
            let counts = self.a.eval(r, state);
            if !counts.is_empty() {
                let origin = r.base_ident().and_then(|b| self.a.origins.get(b)).copied();
                self.a.returned.push((counts, origin));
            }
        }
    }

    fn branch_choice(&mut self, cond: &Expr) -> BranchChoice {
        // `if staleness > 0 { discount }` — the guard proves the
        // skipped discount is the identity; interpret the then-branch
        // as unconditional.
        let mut mentions = false;
        cond.walk(&mut |e| match e {
            Expr::Path { segs, .. } if segs.iter().any(|s| s.contains("staleness")) => {
                mentions = true;
            }
            Expr::Field { name, .. } if name.contains("staleness") => mentions = true,
            _ => {}
        });
        if mentions {
            BranchChoice::ThenOnly
        } else {
            BranchChoice::Join
        }
    }

    fn loop_as_atomic(
        &mut self,
        head: Option<&Expr>,
        binding: Option<&str>,
        body: &Block,
        state: &mut State,
    ) -> bool {
        let Some(head) = head else {
            return false;
        };
        let counts = self.a.eval(head, state);
        if counts.is_empty() {
            return false;
        }
        let Some(binding) = binding else {
            return false;
        };
        // The canonical element-wise discount,
        // `for d in u.delta.iter_mut() { *d *= w; }`, is ONE discount
        // applied to the whole collection — claim it atomically so the
        // zero-or-more loop join cannot report a spurious "maybe
        // undiscounted" path.
        let mut mults = 0u8;
        body.walk(&mut |e| {
            if let Expr::Assign {
                op, target, value, ..
            } = e
            {
                if op == "*="
                    && target.base_ident() == Some(binding)
                    && self.a.is_factor(value, state)
                {
                    mults = mults.saturating_add(1);
                }
            }
        });
        if mults > 0 {
            if let Some(root) = chain_root(head).map(str::to_string) {
                state.vars.insert(root, bump(&counts, mults));
                return true;
            }
        }
        // Otherwise: seed the `for` binding with the element counts and
        // let the driver interpret the loop structurally.
        state.vars.insert(binding.to_string(), counts);
        false
    }
}

/// Analyse one function: record sinks and derive return facts.
fn analyse<'a>(cg: &'a CallGraph<'a>, id: FnId, summaries: &'a [Summary]) -> Analysis<'a> {
    let f = cg.fns[id].1;
    let mut a = Analysis {
        cg,
        id,
        summaries,
        env: TypeEnv::of(f),
        origins: BTreeMap::new(),
        sinks: BTreeMap::new(),
        returned: Vec::new(),
    };
    let mut state = State::default();
    for (i, p) in f.params.iter().enumerate() {
        if DELTA_TYPES.iter().any(|t| p.ty.contains(t)) {
            state.vars.insert(p.name.clone(), once(0));
            a.origins.insert(p.name.clone(), i);
        }
    }
    {
        let mut sems = Driver { a: &mut a };
        run_block(&f.body, &mut sems, &mut state);
    }
    // Tail-expression return.
    if let Some(Stmt::Expr(tail)) = f.body.stmts.last() {
        let counts = a.eval(tail, &state);
        if !counts.is_empty() {
            let origin = tail.base_ident().and_then(|b| a.origins.get(b)).copied();
            a.returned.push((counts, origin));
        }
    }
    a
}

/// Derive the interprocedural summary from what a function returned.
fn summarize(a: &Analysis<'_>) -> Summary {
    let mut summary = Summary::default();
    for (counts, origin) in &a.returned {
        match origin {
            Some(i) => {
                // Returned a (projection of a) parameter: the added
                // discount is the largest count reached — parameters
                // start at 0, so that is exactly "discounts applied".
                let k = counts.iter().copied().max().unwrap_or(0);
                summary.adds = Some(match summary.adds {
                    Some((pi, pk)) if pi == *i => (pi, pk.max(k)),
                    Some(prev) => prev,
                    None => (*i, k),
                });
            }
            None => {
                summary
                    .ret
                    .get_or_insert_with(Counts::new)
                    .extend(counts.iter().copied());
            }
        }
    }
    summary
}

/// Quick token-level filter: only files mentioning the protocol's names
/// participate, keeping the workspace pass fast.
fn file_is_relevant(ctx: &FileCtx) -> bool {
    ctx.toks.iter().any(|t| {
        matches!(t.kind, TokKind::Ident)
            && matches!(
                t.text.as_str(),
                "staleness_discount" | "ReceivedUpdate" | "BufferedUpdate" | "RoundInput"
            )
    })
}

/// Run the rule over the parsed workspace.
pub fn check_discount_once(files: &[FileCtx], cg: &CallGraph<'_>, diags: &mut Vec<Diagnostic>) {
    let relevant: Vec<bool> = files.iter().map(file_is_relevant).collect();
    if !relevant.iter().any(|&r| r) {
        return;
    }

    // Interprocedural pass: summaries for every function in a relevant
    // file (others keep the empty summary).
    let summaries = summary_fixpoint(cg, Summary::default(), |id, table| {
        if relevant[cg.fns[id].0] {
            summarize(&analyse(cg, id, table))
        } else {
            Summary::default()
        }
    });

    // Reporting pass.
    for (id, &(fi, f)) in cg.fns.iter().enumerate() {
        let ctx = &files[fi];
        if !relevant[fi] || !ctx.is_lib_crate() || ctx.is_test_line(f.line) {
            continue;
        }
        let a = analyse(cg, id, &summaries);
        for (line, counts) in &a.sinks {
            if counts.contains(&0) {
                diags.push(ctx.diag(
                    RULE,
                    *line,
                    format!(
                        "updates may reach aggregation in `{}` without crossing \
                         `staleness_discount` (possible discount counts: {counts:?}) — every \
                         path from the fault pipeline to `RoundInput` must discount exactly once",
                        f.name
                    ),
                ));
            } else if counts.contains(&2) {
                diags.push(ctx.diag(
                    RULE,
                    *line,
                    format!(
                        "updates may cross `staleness_discount` more than once before \
                         aggregation in `{}` (possible discount counts: {counts:?}) — the \
                         discount is paid at application time only; receive/buffer paths must \
                         stay undiscounted",
                        f.name
                    ),
                ));
            }
        }
    }
}
